"""The asyncio transport: pipelined protocol v2 over real sockets.

Covers the tentpole semantics — out-of-order completion matched by id,
duplicate in-flight ids refused typed, backpressure pause/resume
observable through ``server.in_flight`` — plus transport parity with
the threaded server: truncated-frame drop, oversized-frame resync,
poison deadlines, graceful drain, and the chaos ``client_drop`` kind.
"""

import json
import signal
import socket
import threading
import time

import pytest

from repro.conceptbase import ConceptBase
from repro.errors import ConnectionLost, ServerError
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore
from repro.scenario.chaos import ChaosHarness
from repro.server.client import PipelinedTCPClient, RetryPolicy, TCPClient
from repro.server.protocol import MAX_FRAME, PROTOCOL_VERSION
from repro.server.service import GKBMSService
from repro.server.tcp import AsyncGKBMSServer
from repro.server.__main__ import _install_drain_handlers, main as server_main


@pytest.fixture
def server():
    service = GKBMSService(batch_window=0.002)
    tcp = AsyncGKBMSServer(("127.0.0.1", 0), service)
    tcp.serve_in_thread()
    yield tcp
    tcp.close()


def _handshake(handle, protocol=PROTOCOL_VERSION):
    """Raw v2 hello on an open socket file; returns (session, granted)."""
    handle.write(json.dumps({
        "id": 0, "op": "hello", "params": {"protocol": protocol},
    }).encode() + b"\n")
    handle.flush()
    response = json.loads(handle.readline())
    assert response["ok"] is True
    return response["result"]["session"], response["result"]["protocol"]


class TestAsyncTransport:
    def test_v1_client_keeps_lockstep(self, server):
        """An unmodified lockstep client works against the async
        server and is granted protocol 1."""
        client = TCPClient(server.host, server.port)
        client.tell("TELL Doc IN SimpleClass END")
        client.tell("TELL D1 IN Doc END")
        assert client.instances("Doc") == ["D1"]
        assert client.ping()["pong"] is True
        client.close()

    def test_hello_without_protocol_grants_v1(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            handle.write(b'{"id": 0, "op": "hello", "params": {}}\n')
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is True
            assert response["result"]["protocol"] == 1

    def test_pipelined_client_round_trip(self, server):
        client = PipelinedTCPClient(server.host, server.port)
        assert client.protocol == PROTOCOL_VERSION
        client.tell("TELL Doc IN SimpleClass END")
        client.tell("TELL D1 IN Doc END")
        replies = [client.submit("instances", {"cls": "Doc"})
                   for _ in range(8)]
        for reply in replies:
            assert reply.result(10.0)["instances"] == ["D1"]
        client.close()

    def test_two_sessions_share_the_base(self, server):
        a = PipelinedTCPClient(server.host, server.port)
        b = TCPClient(server.host, server.port)
        assert a.session != b.session
        a.tell("TELL Doc IN SimpleClass END")
        a.tell("TELL D1 IN Doc END")
        assert b.instances("Doc") == ["D1"]
        a.close()
        b.close()

    def test_transactions_over_the_wire(self, server):
        client = PipelinedTCPClient(server.host, server.port)
        client.tell("TELL Doc IN SimpleClass END")
        with client.transaction():
            client.tell("TELL D1 IN Doc END")
            client.tell("TELL D2 IN Doc END")
        assert client.instances("Doc") == ["D1", "D2"]
        client.close()


class TestPipeliningSemantics:
    def test_out_of_order_completion_matches_ids(self, server):
        """A slow request must not head-of-line block a fast one: the
        fast response arrives first, each under its own id."""
        service = server.service
        orig = service._dispatch

        def slow_dispatch(op, session, params):
            if params.get("slow"):
                time.sleep(0.15)
            return orig(op, session, params)

        service._dispatch = slow_dispatch
        try:
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as sock:
                handle = sock.makefile("rwb")
                session, granted = _handshake(handle)
                assert granted == PROTOCOL_VERSION
                handle.write(json.dumps({
                    "id": 10, "op": "ping", "session": session,
                    "params": {"slow": 1},
                }).encode() + b"\n")
                handle.write(json.dumps({
                    "id": 11, "op": "ping", "session": session,
                    "params": {},
                }).encode() + b"\n")
                handle.flush()
                first = json.loads(handle.readline())
                second = json.loads(handle.readline())
            assert first["id"] == 11      # the fast one overtook
            assert second["id"] == 10
            assert first["ok"] and second["ok"]
        finally:
            service._dispatch = orig

    def test_duplicate_in_flight_id_is_protocol_error(self, server):
        service = server.service
        orig = service._dispatch

        def slow_dispatch(op, session, params):
            if params.get("slow"):
                time.sleep(0.15)
            return orig(op, session, params)

        service._dispatch = slow_dispatch
        try:
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as sock:
                handle = sock.makefile("rwb")
                session, _ = _handshake(handle)
                for params in ({"slow": 1}, {}):
                    handle.write(json.dumps({
                        "id": 5, "op": "ping", "session": session,
                        "params": params,
                    }).encode() + b"\n")
                handle.flush()
                first = json.loads(handle.readline())
                second = json.loads(handle.readline())
            # The refusal comes back immediately (out of order); the
            # original request still completes under the same id.
            assert first["id"] == 5 and second["id"] == 5
            assert first["ok"] is False
            assert first["error"]["type"] == "ProtocolError"
            assert "in flight" in first["error"]["message"]
            assert second["ok"] is True
        finally:
            service._dispatch = orig

    def test_backpressure_pauses_and_resumes(self):
        """At the admission cap the server stops reading the socket:
        ``server.in_flight`` never exceeds the cap, pauses are counted,
        and every request still completes once slots free."""
        service = GKBMSService(batch_window=0.002, max_in_flight=2,
                               per_session=2)
        tcp = AsyncGKBMSServer(("127.0.0.1", 0), service)
        tcp.serve_in_thread()
        orig = service._dispatch

        def slow_dispatch(op, session, params):
            if params.get("slow"):
                time.sleep(0.05)
            return orig(op, session, params)

        service._dispatch = slow_dispatch
        try:
            client = PipelinedTCPClient(tcp.host, tcp.port)
            replies = [client.submit("ping", {"slow": 1})
                       for _ in range(10)]
            peak = 0
            while not all(reply.done() for reply in replies):
                snapshot = service.registry.snapshot()
                peak = max(peak, snapshot.get("server.in_flight", 0))
                time.sleep(0.002)
            for reply in replies:
                assert reply.result(10.0)["pong"] is True
            snapshot = service.registry.snapshot()
            assert peak <= 2
            assert snapshot.get("server.async.pauses", 0) > 0
            assert snapshot.get("server.in_flight") == 0
            client.close()
        finally:
            service._dispatch = orig
            tcp.close()

    def test_submit_after_drop_raises_typed(self, server):
        client = PipelinedTCPClient(server.host, server.port)
        client._drop_connection()
        with pytest.raises(ConnectionLost):
            client.submit("ping")

    def test_pending_replies_fail_when_server_drains(self):
        service = GKBMSService(batch_window=0.002)
        tcp = AsyncGKBMSServer(("127.0.0.1", 0), service)
        tcp.serve_in_thread()
        client = PipelinedTCPClient(tcp.host, tcp.port)
        tcp.drain()
        with pytest.raises((ConnectionLost, ServerError)):
            client.submit("ping").result(5.0)
        client.close()


class TestAsyncFraming:
    def test_truncated_final_frame_is_dropped(self, server):
        """Regression parity with the threaded transport: an EOF
        mid-line is a dead client, not a request."""
        before = server.service.registry.snapshot()
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(b'{"id": 1, "op": "ping", "params": {}}')
            sock.shutdown(socket.SHUT_WR)
            sock.settimeout(10)
            assert sock.recv(4096) == b""
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            after = server.service.registry.snapshot()
            if after.get("server.truncated_frames", 0) \
                    == before.get("server.truncated_frames", 0) + 1:
                break
            time.sleep(0.005)
        after = server.service.registry.snapshot()
        assert after.get("server.truncated_frames", 0) \
            == before.get("server.truncated_frames", 0) + 1
        assert after.get("server.requests", 0) \
            == before.get("server.requests", 0)

    def test_oversized_frame_resynchronizes_the_stream(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            oversized = (
                b'{"id": 1, "op": "ping", "pad": "'
                + b"x" * (MAX_FRAME + 64) + b'"}\n'
            )
            handle.write(oversized)
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            handle.write(b'{"id": 2, "op": "ping", "params": {}}\n')
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is True
            assert response["id"] == 2

    def test_malformed_line_answers_protocol_error(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            handle.write(b'{"id": 1, "op": "ping", "params": {}}\n')
            handle.flush()
            assert json.loads(handle.readline())["ok"] is True

    def test_poison_deadline_refused_over_the_wire(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            for raw in (b'{"id": 1, "op": "ping", "params": {}, '
                        b'"deadline_ms": true}\n',
                        b'{"id": 2, "op": "ping", "params": {}, '
                        b'"deadline_ms": Infinity}\n'):
                handle.write(raw)
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "ProtocolError"


class TestAsyncDrain:
    """SIGTERM drain parity with the threaded server (PR 8 semantics)."""

    def _wal_server(self, tmp_path):
        registry = MetricsRegistry()
        store = WalStore(str(tmp_path / "drain.wal"), fsync="commit",
                         registry=registry)
        service = GKBMSService(ConceptBase(store=store, registry=registry))
        return store, service, AsyncGKBMSServer(("127.0.0.1", 0), service)

    def test_drain_checkpoints_and_closes_cleanly(self, tmp_path):
        store, service, tcp = self._wal_server(tmp_path)
        tcp.serve_in_thread()
        client = PipelinedTCPClient(tcp.host, tcp.port)
        client.tell("TELL Doc IN SimpleClass END")
        client.tell("TELL D1 IN Doc END")
        client.close()
        tcp.drain()
        with pytest.raises((ServerError, OSError, ConnectionLost)):
            TCPClient(tcp.host, tcp.port, connect_timeout=1.0)
        recovered = WalStore(str(tmp_path / "drain.wal"), fsync="commit",
                             registry=MetricsRegistry())
        assert recovered.stats.get("replayed", 0) == 0
        rows = recovered.rows()
        recovered.close()
        assert any("Doc" in row for row in rows)

    def test_signal_handler_drains_without_deadlock(self, tmp_path):
        """The __main__ topology: handler on the main thread, loop on
        another — identical wiring to the threaded server."""
        store, service, tcp = self._wal_server(tmp_path)
        previous_term = signal.getsignal(signal.SIGTERM)
        previous_int = signal.getsignal(signal.SIGINT)
        try:
            draining = _install_drain_handlers(tcp)
            serving = tcp.serve_in_thread()
            client = PipelinedTCPClient(tcp.host, tcp.port)
            client.tell("TELL Doc IN SimpleClass END")
            client.close()
            handler = signal.getsignal(signal.SIGTERM)
            handler(signal.SIGTERM, None)
            assert draining.is_set()
            handler(signal.SIGTERM, None)  # second signal: ignored
            serving.join(timeout=10.0)
            assert not serving.is_alive()
            tcp.server_close()
            service.drain()
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)
        recovered = WalStore(str(tmp_path / "drain.wal"), fsync="commit",
                             registry=MetricsRegistry())
        assert recovered.stats.get("replayed", 0) == 0
        recovered.close()


class TestAsyncChaos:
    def test_client_drop_is_exactly_once_on_async_transport(self, tmp_path):
        harness = ChaosHarness(
            str(tmp_path / "chaos.wal"), "client_drop", seed=5,
            threads=2, ops_per_thread=8, transport="async",
        )
        report = harness.run()
        assert report.exactly_once is True
        assert report.rows_equal is True
        assert report.lost_acked == 0


class TestAsyncSmokeCommand:
    def test_smoke_async_gates_clean(self, tmp_path, capsys):
        code = server_main([
            "smoke", "--async", "--threads", "4", "--ops", "12",
            "--json", str(tmp_path / "smoke.json"),
        ])
        assert code == 0
        report = json.loads((tmp_path / "smoke.json").read_text())
        assert report["failures"] == []
        assert report["load"]["unexpected_errors"] == 0
