"""Integration tests: the complete section 2.1 story, step by step.

These tests assert the *content* of the paper's figures, not just that
the code runs: the browsing state of fig 2-1, the code frames and
dependency graph of figs 2-2/2-3, and the selective-backtracking result
of fig 2-4.
"""

import pytest

from repro.scenario import MeetingScenario


@pytest.fixture
def scenario():
    return MeetingScenario().setup()


class TestWorldAndSystemModel:
    def test_world_model_objects(self, scenario):
        proc = scenario.gkbms.processor
        assert proc.is_instance_of("Meeting", "CML_Activity")
        assert proc.is_instance_of("Document", "CML_WorldClass")
        assert "Document" in proc.generalizations("Agenda")

    def test_system_model_embedded_in_world(self, scenario):
        proc = scenario.gkbms.processor
        models = proc.attributes_of("MeetingRecord", label="models")
        assert [p.destination for p in models] == ["Meeting"]

    def test_world_time_consistent(self, scenario):
        scenario.gkbms.world_time.check_consistency()

    def test_design_models_world(self, scenario):
        proc = scenario.gkbms.processor
        links = proc.attributes_of("Papers", label="models")
        assert [p.destination for p in links] == ["Document"]


class TestFig21Browsing:
    def test_unmapped_objects_before_mapping(self, scenario):
        unmapped = scenario.browse_unmapped()
        assert {"Papers", "Invitations", "Persons"} <= set(unmapped)

    def test_unmapped_shrinks_after_mapping(self, scenario):
        scenario.map_hierarchy()
        assert "Invitations" not in scenario.browse_unmapped()

    def test_menu_shows_strategies(self, scenario):
        names = [dc.name for dc, _r, _t in scenario.menu_for("Invitations")]
        assert "DecMoveDown" in names
        assert "DecDistribute" in names


class TestFig22MoveDown:
    def test_relation_carries_inherited_attributes(self, scenario):
        scenario.map_hierarchy()
        rel = scenario.gkbms.module.relations["InvitationRel"]
        assert rel.field_names() == [
            "paperkey", "date", "author", "sender", "receiver",
        ]
        assert rel.key == ("paperkey",)
        assert rel.field_type("receiver") == "SET OF Persons"

    def test_non_leaf_becomes_constructor(self, scenario):
        scenario.map_hierarchy()
        assert "ConsPapers" in scenario.gkbms.module.constructors

    def test_distribute_alternative(self):
        scenario = MeetingScenario().setup()
        record = scenario.map_hierarchy(strategy="distribute")
        module = scenario.gkbms.module
        # one relation per class
        assert {"PaperRel", "InvitationRel"} <= set(module.relations)
        # subclass references superclass
        assert any(
            "IsA" in name for name in module.selectors
        )
        assert record.decision_class == "DecDistribute"

    def test_implements_links(self, scenario):
        scenario.map_hierarchy()
        nav = scenario.gkbms.navigator()
        assert nav.interrelations("InvitationRel")["implements"] == [
            "Invitations"
        ]


class TestFig23NormalizeAndKeys:
    def test_normalization_products(self, scenario):
        scenario.map_hierarchy()
        scenario.normalize()
        module = scenario.gkbms.module
        assert "InvitationRel" not in module.relations  # retired
        base = module.relations["InvitationRel2"]
        assert "receiver" not in base.field_names()
        detail = module.relations["InvReceivRel"]
        assert detail.field_names() == ["paperkey", "receiver"]
        assert detail.key == ("paperkey", "receiver")
        selector = module.selectors["InvitationsPaperIC"]
        assert selector.constraint.target == "InvitationRel2"
        assert "ConsInvitation" in module.constructors

    def test_key_substitution_rewrites_everything(self, scenario):
        scenario.map_hierarchy()
        scenario.normalize()
        scenario.substitute_key()
        module = scenario.gkbms.module
        assert module.relations["InvitationRel2"].key == ("date", "author")
        assert "paperkey" not in module.relations["InvitationRel2"].field_names()
        assert module.relations["InvReceivRel"].key == (
            "date", "author", "receiver",
        )
        selector = module.selectors["InvitationsPaperIC"]
        assert selector.constraint.columns == ("date", "author")

    def test_generated_module_executes(self, scenario):
        scenario.map_hierarchy()
        scenario.normalize()
        scenario.substitute_key()
        db = scenario.gkbms.build_database()
        with db.transaction():
            db.relation("InvitationRel2").insert(
                {"date": "7-Jun-1988", "author": "jarke", "sender": "rose"}
            )
            db.relation("InvReceivRel").insert(
                {"date": "7-Jun-1988", "author": "jarke",
                 "receiver": "mylopoulos"}
            )
        reconstructed = db.rows("ConsInvitation")
        assert len(reconstructed) == 1
        assert reconstructed[0]["receiver"] == "mylopoulos"

    def test_referential_integrity_live(self, scenario):
        from repro.errors import IntegrityError

        scenario.map_hierarchy()
        scenario.normalize()
        db = scenario.gkbms.build_database()
        with pytest.raises(IntegrityError):
            with db.transaction():
                db.relation("InvReceivRel").insert(
                    {"paperkey": "dangling", "receiver": "x"}
                )


class TestFig24Backtracking:
    def test_minutes_violates_assumption(self, scenario):
        scenario.map_hierarchy()
        scenario.normalize()
        scenario.substitute_key()
        assert scenario.gkbms.violated_assumptions() == []
        scenario.add_minutes()
        assert scenario.gkbms.violated_assumptions() == [
            "OnlyInvitationsArePapers"
        ]

    def test_selective_backtrack_restores_surrogates(self, scenario):
        scenario.map_hierarchy()
        scenario.normalize()
        scenario.substitute_key()
        scenario.add_minutes()
        scenario.backtrack_keys()
        module = scenario.gkbms.module
        assert module.relations["InvitationRel2"].key == ("paperkey",)
        assert module.relations["InvReceivRel"].key == ("paperkey", "receiver")
        # earlier decisions untouched
        assert scenario.records["map"].status == "done"
        assert scenario.records["normalize"].status == "done"

    def test_full_story_final_state(self):
        scenario = MeetingScenario().run_all()
        gkbms = scenario.gkbms
        statuses = {
            key: record.status
            for key, record in scenario.records.items()
            if hasattr(record, "status")
        }
        assert statuses == {
            "map": "done", "normalize": "done",
            "keys": "retracted", "minutes": "done",
        }
        db = gkbms.build_database()
        assert {"InvitationRel2", "InvReceivRel", "MinutesRel"} <= set(
            db.relations
        )

    def test_code_frames_after_backtrack_match_fig_2_4(self):
        scenario = MeetingScenario().run_all()
        frames = scenario.gkbms.code_frames()
        # surrogate keys are back everywhere (fig 2-4's code frames)
        assert "KEY paperkey;" in frames
        assert "KEY paperkey, receiver;" in frames
        assert "(paperkey) REFERENCES InvitationRel2 (paperkey)" in frames
        assert "MinutesRel" in frames

    def test_dependency_graph_shows_retraction(self):
        scenario = MeetingScenario().run_all()
        graph = scenario.gkbms.dependency_graph(include_retracted=True)
        keys_did = scenario.records["keys"].did
        rendered = graph.to_ascii()
        assert f"[{keys_did}]" in rendered  # highlighted as retracted
