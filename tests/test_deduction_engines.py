"""Tests for the rule parser, semi-naive evaluation and the prover."""

import pytest

from repro.errors import DeductionError
from repro.deduction import (
    Database,
    Prover,
    evaluate,
    parse_literal,
    parse_program,
    parse_rule,
    stratify,
)
from repro.propositions import Pattern, PropositionProcessor
from repro.deduction import RuleEngine


class TestParser:
    def test_fact(self):
        rule = parse_rule("edge(a, b).")
        assert rule.is_fact
        assert rule.head.predicate == "edge"

    def test_rule_with_variables(self):
        rule = parse_rule("path(?x, ?z) :- edge(?x, ?y), path(?y, ?z).")
        assert len(rule.body) == 2
        assert rule.head.variables()[0].name == "x"

    def test_negation(self):
        rule = parse_rule("orphan(?x) :- node(?x), not parent(?x, ?x).")
        assert rule.body[1].negated

    def test_quoted_constants(self):
        rule = parse_rule("attr(?x, 'Invitation.sender', ?y) :- link(?x, ?y).")
        assert rule.head.args[1].value == "Invitation.sender"

    def test_numbers(self):
        rule = parse_rule("weight(a, 3).")
        assert rule.head.args[1].value == 3

    def test_comments_and_program(self):
        rules = parse_program(
            """
            % transitive closure
            path(?x, ?y) :- edge(?x, ?y).
            path(?x, ?z) :- edge(?x, ?y), path(?y, ?z).
            """
        )
        assert len(rules) == 2

    def test_syntax_errors(self):
        with pytest.raises(DeductionError):
            parse_rule("path(?x ?y).")
        with pytest.raises(DeductionError):
            parse_rule("path(?x, ?y)")  # missing period
        with pytest.raises(DeductionError):
            parse_literal("p(a). q(b).")


class TestSeminaive:
    def _tc(self):
        return parse_program(
            """
            path(?x, ?y) :- edge(?x, ?y).
            path(?x, ?z) :- edge(?x, ?y), path(?y, ?z).
            """
        )

    def test_transitive_closure(self):
        edb = Database({"edge": {("a", "b"), ("b", "c"), ("c", "d")}})
        idb = evaluate(self._tc(), edb)
        assert ("a", "d") in idb.rows("path")
        assert len(idb.rows("path")) == 6

    def test_cycle_terminates(self):
        edb = Database({"edge": {("a", "b"), ("b", "a")}})
        idb = evaluate(self._tc(), edb)
        assert ("a", "a") in idb.rows("path")

    def test_stratified_negation(self):
        rules = parse_program(
            """
            path(?x, ?y) :- edge(?x, ?y).
            path(?x, ?z) :- edge(?x, ?y), path(?y, ?z).
            unreach(?x, ?y) :- node(?x), node(?y), not path(?x, ?y).
            """
        )
        edb = Database(
            {"edge": {("a", "b")}, "node": {("a",), ("b",)}}
        )
        idb = evaluate(rules, edb)
        assert ("b", "a") in idb.rows("unreach")
        assert ("a", "b") not in idb.rows("unreach")

    def test_unstratifiable_rejected(self):
        rules = parse_program(
            """
            p(?x) :- q(?x), not p(?x).
            """
        )
        with pytest.raises(DeductionError):
            stratify(rules)

    def test_strata_ordering(self):
        rules = parse_program(
            """
            a(?x) :- base(?x).
            b(?x) :- base(?x), not a(?x).
            c(?x) :- base(?x), not b(?x).
            """
        )
        layers = stratify(rules)
        assert len(layers) == 3

    def test_facts_in_program(self):
        rules = parse_program(
            """
            edge(a, b).
            edge(b, c).
            path(?x, ?y) :- edge(?x, ?y).
            path(?x, ?z) :- edge(?x, ?y), path(?y, ?z).
            """
        )
        idb = evaluate(rules, Database())
        assert ("a", "c") in idb.rows("path")


class TestProver:
    def _prover(self, lemmas=True):
        facts = {
            "edge": [("a", "b"), ("b", "c"), ("c", "d")],
        }
        rules = parse_program(
            """
            path(?x, ?y) :- edge(?x, ?y).
            path(?x, ?z) :- edge(?x, ?y), path(?y, ?z).
            """
        )
        return Prover(rules, fact_source=lambda p: facts.get(p, ()), lemmas=lemmas)

    def test_ask(self):
        prover = self._prover()
        assert prover.ask(parse_literal("path(a, d)"))
        assert not prover.ask(parse_literal("path(d, a)"))

    def test_answers(self):
        prover = self._prover()
        answers = prover.answers(parse_literal("path(a, ?y)"))
        assert {row[1] for row in answers} == {"b", "c", "d"}

    def test_negation_as_failure(self):
        prover = self._prover()
        assert prover.ask(parse_literal("not path(d, a)"))
        assert not prover.ask(parse_literal("not path(a, b)"))

    def test_negation_requires_ground_goal(self):
        prover = self._prover()
        with pytest.raises(DeductionError):
            prover.ask(parse_literal("not path(?x, a)"))

    def test_lemma_cache_hits(self):
        prover = self._prover(lemmas=True)
        goal = parse_literal("path(a, ?y)")
        first = prover.answers(goal)
        hits_before = prover.stats["lemma_hits"]
        second = prover.answers(goal)
        assert first == second
        assert prover.stats["lemma_hits"] > hits_before

    def test_lemmas_disabled(self):
        prover = self._prover(lemmas=False)
        goal = parse_literal("path(a, ?y)")
        prover.answers(goal)
        prover.answers(goal)
        assert prover.stats["lemma_hits"] == 0

    def test_depth_limit(self):
        rules = [parse_rule("p(?x) :- p(?x).")]
        prover = Prover(rules, fact_source=lambda p: (), max_depth=10)
        with pytest.raises(DeductionError):
            prover.ask(parse_literal("p(a)"))


class TestRuleEngine:
    @pytest.fixture
    def proc(self):
        p = PropositionProcessor()
        p.define_class("Person")
        for name in ("tom", "bob", "ann"):
            p.tell_individual(name, in_class="Person")
        p.tell_link("tom", "parent", "bob")
        p.tell_link("bob", "parent", "ann")
        return p

    def test_rule_documented_in_kb(self, proc):
        engine = RuleEngine(proc)
        engine.add_rule(
            "attr(?x, grandparent, ?z) :- attr(?x, parent, ?y), attr(?y, parent, ?z).",
            name="gp",
        )
        assert proc.exists("Assertion_gp")
        rule_links = proc.attributes_of("Proposition", label="rule")
        assert any(p.destination == "Assertion_gp" for p in rule_links)

    def test_deduced_propositions_via_hook(self, proc):
        engine = RuleEngine(proc)
        engine.add_rule(
            "attr(?x, grandparent, ?z) :- attr(?x, parent, ?y), attr(?y, parent, ?z).",
            name="gp",
        )
        engine.install_hook()
        found = list(proc.retrieve_proposition(Pattern(label="grandparent")))
        assert len(found) == 1
        assert (found[0].source, found[0].destination) == ("tom", "ann")

    def test_deduced_updates_with_kb(self, proc):
        engine = RuleEngine(proc)
        engine.add_rule(
            "attr(?x, grandparent, ?z) :- attr(?x, parent, ?y), attr(?y, parent, ?z).",
            name="gp",
        )
        engine.install_hook()
        proc.tell_individual("sue", in_class="Person")
        proc.tell_link("ann", "parent", "sue")
        found = list(proc.retrieve_proposition(Pattern(label="grandparent")))
        assert {(p.source, p.destination) for p in found} == {
            ("tom", "ann"),
            ("bob", "sue"),
        }

    def test_prover_over_kb(self, proc):
        engine = RuleEngine(proc)
        prover = engine.prover()
        answers = prover.answers(parse_literal("in(?x, Person)"))
        assert {row[0] for row in answers} == {"tom", "bob", "ann"}

    def test_duplicate_rule_name_rejected(self, proc):
        engine = RuleEngine(proc)
        engine.add_rule("attr(?x, a, ?y) :- attr(?x, parent, ?y).", name="r")
        with pytest.raises(DeductionError):
            engine.add_rule("attr(?x, b, ?y) :- attr(?x, parent, ?y).", name="r")

    def test_remove_rule(self, proc):
        engine = RuleEngine(proc)
        engine.add_rule(
            "attr(?x, grandparent, ?z) :- attr(?x, parent, ?y), attr(?y, parent, ?z).",
            name="gp", document=False,
        )
        engine.remove_rule("gp")
        assert engine.deduced_propositions() == []
        with pytest.raises(DeductionError):
            engine.remove_rule("gp")
