"""Tests for evaluation traces (assertion-level explanation) and the
as-of navigation view."""

import pytest

from repro.consistency import ConsistencyChecker
from repro.errors import GKBMSError
from repro.assertions import Evaluator, parse_assertion
from repro.propositions import PropositionProcessor
from repro.scenario import MeetingScenario


@pytest.fixture
def kb():
    proc = PropositionProcessor()
    proc.define_class("Paper")
    proc.define_class("Person")
    proc.tell_link("Paper", "author", "Person", pid="Paper.author",
                   of_class="Attribute")
    proc.tell_individual("bob", in_class="Person")
    proc.tell_individual("pap1", in_class="Paper")
    proc.tell_link("pap1", "author", "bob", of_class="Paper.author")
    proc.tell_individual("pap2", in_class="Paper")
    return proc


class TestEvaluatorExplain:
    def test_marks_truth_values(self, kb):
        evaluator = Evaluator(kb)
        trace = evaluator.explain(parse_assertion("Known(pap1.author)"))
        assert trace.startswith("✓")
        trace = evaluator.explain(parse_assertion("Known(pap2.author)"))
        assert trace.startswith("✗")

    def test_forall_counterexample_named(self, kb):
        evaluator = Evaluator(kb)
        trace = evaluator.explain(
            parse_assertion("forall p/Paper (Known(p.author))")
        )
        assert "counterexample: {'p': 'pap2'}" in trace

    def test_exists_witness_named(self, kb):
        evaluator = Evaluator(kb)
        trace = evaluator.explain(
            parse_assertion("exists p/Paper (Known(p.author))")
        )
        assert "witness: {'p': 'pap1'}" in trace

    def test_connectives_traced_recursively(self, kb):
        evaluator = Evaluator(kb)
        trace = evaluator.explain(
            parse_assertion("Known(pap1.author) and not Known(pap2.author)")
        )
        # every sub-expression appears with its own mark
        assert trace.count("✓") >= 3  # and-node, left, inner-not, ...
        assert "✗ Known(pap2.author)" in trace

    def test_comparison_shows_operand_values(self, kb):
        evaluator = Evaluator(kb)
        trace = evaluator.explain(parse_assertion("pap1.author = bob"))
        assert "left: ['bob']" in trace and "right: ['bob']" in trace

    def test_witness_cap(self, kb):
        for index in range(6):
            kb.tell_individual(f"extra{index}", in_class="Paper")
        evaluator = Evaluator(kb)
        trace = evaluator.explain(
            parse_assertion("forall p/Paper (Known(p.author))")
        )
        assert trace.count("counterexample:") == 3  # capped


class TestExplainerTraces:
    def test_explain_violated_assumption_names_culprit(self):
        scenario = MeetingScenario().run_to_fig_2_3()
        scenario.add_minutes()
        text = scenario.gkbms.explainer().explain_assumption(
            "OnlyInvitationsArePapers"
        )
        assert "counterexample: {'c': 'Minutes'}" in text

    def test_explain_informal_assumption(self):
        scenario = MeetingScenario().setup()
        scenario.gkbms.assume("Handshake")
        text = scenario.gkbms.explainer().explain_assumption("Handshake")
        assert "informal" in text

    def test_explain_constraint_per_instance(self):
        scenario = MeetingScenario().run_to_fig_2_2()
        gkbms = scenario.gkbms
        checker = ConsistencyChecker(gkbms.processor)
        checker.attach_constraint("DBPL_Rel", "Implemented",
                                  "Known(self.implements)", document=False)
        text = gkbms.explainer().explain_constraint(
            checker, "Implemented", instance="InvitationRel"
        )
        assert text.splitlines()[0].startswith("constraint Implemented")
        assert "✓" in text

    def test_explain_constraint_requires_instance(self):
        scenario = MeetingScenario().run_to_fig_2_2()
        gkbms = scenario.gkbms
        checker = ConsistencyChecker(gkbms.processor)
        checker.attach_constraint("DBPL_Rel", "Implemented",
                                  "Known(self.implements)", document=False)
        with pytest.raises(GKBMSError):
            gkbms.explainer().explain_constraint(checker, "Implemented")

    def test_explain_unknown_constraint(self):
        scenario = MeetingScenario().setup()
        checker = ConsistencyChecker(scenario.gkbms.processor)
        with pytest.raises(GKBMSError):
            scenario.gkbms.explainer().explain_constraint(checker, "Nope")


class TestAsOfNavigation:
    def test_implementation_as_it_stood(self):
        scenario = MeetingScenario().run_to_fig_2_3()
        nav = scenario.gkbms.navigator()
        at_t1 = nav.status_view("implementation", at=1)
        assert at_t1 == ["ConsPapers", "InvitationRel"]
        at_t2 = set(nav.status_view("implementation", at=2))
        assert {"InvitationRel2", "InvReceivRel"} <= at_t2

    def test_current_view_is_superset_of_every_tick(self):
        scenario = MeetingScenario().run_to_fig_2_3()
        nav = scenario.gkbms.navigator()
        now = set(nav.status_view("implementation"))
        for tick in (1, 2, 3):
            assert set(nav.status_view("implementation", at=tick)) <= now
