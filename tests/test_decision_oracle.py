"""Randomized oracle equivalence for decision histories (PR 10).

Mirrors :mod:`tests.test_incremental_oracle`: seeded interleavings of
decide / backtrack on a live :class:`DecisionHistory` are compared,
after **every step**, against a from-scratch oracle that replays the
same op log into a fresh concept base.  Any drift between the
incrementally maintained state (propositions, ledger, justification
graph) and the rebuild is a correctness bug.

Part two drives the same randomized histories through the in-process
GKBMS (:class:`DesignEvolutionWorkload`) and checks the *derived*
views — :class:`Navigator` timelines/causal chains and
:class:`VersionManager` versions/configurations — for their global
invariants plus same-seed determinism.
"""

import json
import random

import pytest

from repro.conceptbase import ConceptBase
from repro.core.navigation import Navigator
from repro.core.versioning import VersionManager
from repro.decisions import DecisionHistory, JustificationGraph
from repro.errors import VersionError
from repro.scenario.workload import DesignEvolutionWorkload


# ---------------------------------------------------------------------------
# Part A: decide/backtrack interleavings vs from-scratch replay
# ---------------------------------------------------------------------------


def fresh_history():
    cb = ConceptBase()
    with cb.transaction():
        cb.tell("TELL K IN SimpleClass END")
    return cb, DecisionHistory(cb)


def rebuild(ops):
    """From-scratch oracle: replay the identical op log into a fresh
    base.  Dids and ticks are deterministic, so the result must match
    the incrementally maintained state bit for bit."""
    cb, history = fresh_history()
    for op, arg in ops:
        if op == "decide":
            history.apply_decide(arg)
        else:
            history.apply_backtrack(arg)
    return cb, history


def assert_identical(live_cb, live_history, oracle_cb, oracle_history,
                     context=""):
    assert live_cb.propositions.store.rows() == \
        oracle_cb.propositions.store.rows(), context
    assert [r.summary() for r in live_history.ledger.records] == \
        [r.summary() for r in oracle_history.ledger.records], context
    live_graph = JustificationGraph(live_history.ledger.records)
    oracle_graph = JustificationGraph(oracle_history.ledger.records)
    assert live_graph.edge_list() == oracle_graph.edge_list(), context


@pytest.mark.parametrize("seed", [2, 19, 73])
def test_randomized_interleavings_match_full_replay(seed):
    rng = random.Random(seed)
    cb, history = fresh_history()
    ops = []
    told = []  # names currently believed to exist
    backtracks = 0
    for step in range(40):
        active = [r.did for r in history.ledger.active()]
        if active and rng.random() < 0.25:
            arg = json.dumps({"did": rng.choice(active)})
            report = history.apply_backtrack(arg)
            told = [n for n in told if n not in
                    {o for d in report["retracted"]
                     for o in history.ledger.by_did[d].outputs}]
            ops.append(("backtrack", arg))
            backtracks += 1
        else:
            name = f"Obj{step}"
            spec = {
                "decision_class": f"Dec{step % 4}",
                "kind": rng.choice(("mapping", "refinement",
                                    "choice", "other")),
                "tell": [f"TELL {name} IN K END"],
            }
            if told and rng.random() < 0.5:
                spec["inputs"] = {"src": rng.choice(told)}
            if rng.random() < 0.2:
                spec["rationale"] = f"step {step}"
            arg = json.dumps(spec, sort_keys=True)
            history.apply_decide(arg)
            told.append(name)
            ops.append(("decide", arg))
        oracle_cb, oracle_history = rebuild(ops)
        assert_identical(cb, history, oracle_cb, oracle_history,
                         context=f"seed={seed} step={step}")
    assert backtracks >= 3  # the run exercised selective retraction


@pytest.mark.parametrize("seed", [2, 19])
def test_backtrack_equals_never_executing_the_victims(seed):
    """Stronger oracle: after a cascade backtrack, the base equals one
    where the condemned decides simply never happened.  Bare tells
    (name-determined pids) keep the comparison bit-exact."""
    rng = random.Random(seed)
    cb, history = fresh_history()
    specs = []
    for step in range(20):
        spec = {"decision_class": "Dec",
                "tell": [f"TELL Obj{step} END"]}
        if step and rng.random() < 0.5:
            spec["inputs"] = {"src": f"Obj{rng.randrange(step)}"}
        history.apply_decide(json.dumps(spec, sort_keys=True))
        specs.append(spec)
    target = f"d{rng.randrange(3, 10)}"
    report = history.apply_backtrack(json.dumps({"did": target}))
    condemned = {int(d[1:]) - 1 for d in report["retracted"]}
    oracle_cb, oracle_history = fresh_history()
    for n, spec in enumerate(specs):
        if n not in condemned:
            oracle_history.apply_decide(json.dumps(spec, sort_keys=True))
    assert cb.propositions.store.rows() == \
        oracle_cb.propositions.store.rows()


# ---------------------------------------------------------------------------
# Part B: navigation / versioning invariants over random GKBMS histories
# ---------------------------------------------------------------------------


SEEDS = [3, 21, 55]


@pytest.fixture(params=SEEDS)
def evolved(request):
    workload = DesignEvolutionWorkload(seed=request.param,
                                       hierarchies=3, steps=14)
    gkbms = workload.run()
    return workload, gkbms


class TestNavigatorInvariants:
    def test_timeline_is_tick_ordered_and_grounded(self, evolved):
        _workload, gkbms = evolved
        nav = Navigator(gkbms)
        timeline = nav.timeline()
        ticks = [e.tick for e in timeline]
        assert ticks == sorted(ticks)
        for event in timeline:
            assert event.decision in gkbms.decisions.records
            assert event.kind in {"created", "used", "retracted"}

    def test_justifications_point_at_real_producers(self, evolved):
        _workload, gkbms = evolved
        nav = Navigator(gkbms)
        for record in gkbms.decisions.records.values():
            if record.is_retracted:
                continue
            for output in record.all_outputs():
                did = nav.justification_of(output)
                assert did is not None
                justifier = gkbms.decisions.records[did]
                assert output in justifier.all_outputs()

    def test_causal_chains_terminate_and_stay_in_history(self, evolved):
        _workload, gkbms = evolved
        nav = Navigator(gkbms)
        for record in gkbms.decisions.records.values():
            for output in record.all_outputs():
                chain = nav.causal_chain(output)
                assert len(chain) <= 4 * len(gkbms.decisions.records)
                for did, used in chain:
                    assert used in \
                        gkbms.decisions.records[did].inputs.values()

    def test_status_views_agree_with_level_of(self, evolved):
        _workload, gkbms = evolved
        nav = Navigator(gkbms)
        for level in nav.levels():
            for name in nav.status_view(level):
                assert nav.level_of(name) == level

    def test_menus_always_offer_exploration(self, evolved):
        _workload, gkbms = evolved
        nav = Navigator(gkbms)
        names = nav.status_view("requirements") + nav.status_view("design")
        for name in names[:5]:
            items = nav.menu_for(name)
            assert items[-1].title == "explore"


class TestVersionInvariants:
    def test_versions_are_tick_ordered_alternatives_subset(self, evolved):
        _workload, gkbms = evolved
        versions = VersionManager(gkbms)
        bases = {versions.base_of(name)
                 for record in gkbms.decisions.records.values()
                 for name in record.all_outputs()}
        for base in sorted(bases):
            try:
                nodes = versions.versions_of(base)
            except VersionError:
                continue  # fully retracted and physically gone
            ticks = [n.tick for n in nodes]
            assert ticks == sorted(ticks)
            names = {n.name for n in nodes}
            assert {n.name for n in versions.alternatives(base)} <= names
            active = [n for n in nodes if n.active]
            if active:
                assert versions.current(base) == active[-1].name
            else:
                with pytest.raises(VersionError):
                    versions.current(base)

    def test_lattice_edges_come_from_recorded_decisions(self, evolved):
        _workload, gkbms = evolved
        versions = VersionManager(gkbms)
        legal = set()
        for record in gkbms.decisions.records.values():
            for source in record.inputs.values():
                for target in record.all_outputs():
                    legal.add((source, target))
        for source, kind, target in versions.derivation_lattice():
            assert (source, target) in legal
            assert kind in {"mapping", "refinement", "choice", "decision"}

    def test_configuration_is_internally_consistent(self, evolved):
        _workload, gkbms = evolved
        config = VersionManager(gkbms).configure("implementation")
        assert config.complete == (not config.missing)
        assert config.consistent == (not config.issues)
        assert all("~" not in name for name in config.objects)


def test_same_seed_reruns_are_deterministic():
    runs = []
    for _ in range(2):
        workload = DesignEvolutionWorkload(seed=7, hierarchies=3, steps=14)
        gkbms = workload.run()
        nav, versions = Navigator(gkbms), VersionManager(gkbms)
        runs.append((
            [(e.kind, e.detail) for e in workload.events],
            [repr(e) for e in nav.timeline()],
            versions.derivation_lattice(),
            versions.configure("implementation").objects,
        ))
    assert runs[0] == runs[1]
