"""Tests for the GKBMS metamodel, tool registry and decision engine."""

import pytest

from repro.errors import (
    DecisionError,
    NotApplicableError,
    ObligationError,
)
from repro.core import GKBMS, DecisionClass, ToolSpec
from repro.core.metamodel import LINK_METACLASSES

DESIGN = """
entity class Papers with
  date : Date
  author : Persons
end
entity class Invitations isa Papers with
  sender : Persons
  receiver : set of Persons
end
entity class Persons
end
"""


@pytest.fixture
def gkbms():
    g = GKBMS()
    g.register_standard_library()
    g.import_design(DESIGN)
    return g


class TestMetamodel:
    def test_metaclasses_installed(self, gkbms):
        for name in ("DesignObject", "DesignDecision", "DesignTool"):
            assert gkbms.processor.exists(name)

    def test_link_metaclasses(self, gkbms):
        for pid in LINK_METACLASSES:
            assert gkbms.processor.exists(pid)
        from_link = gkbms.processor.get("FROM")
        assert from_link.source == "DesignDecision"
        assert from_link.destination == "DesignObject"

    def test_language_classes_are_design_objects(self, gkbms):
        proc = gkbms.processor
        assert proc.is_instance_of("TDL_EntityClass", "DesignObject")
        assert proc.is_instance_of("DBPL_Rel", "DesignObject")
        assert "DBPL_Rel" in proc.generalizations("NormalizedDBPL_Rel")

    def test_levels(self, gkbms):
        assert gkbms.level_of("Invitations") == "design"
        gkbms.processor.tell_individual("X", in_class="DBPL_Rel")
        assert gkbms.level_of("X") == "implementation"
        assert gkbms.level_of("DesignObject") == "unknown"

    def test_idempotent_install(self, gkbms):
        from repro.core.metamodel import install_gkbms_metamodel

        assert install_gkbms_metamodel(gkbms.processor) == []


class TestToolRegistry:
    def test_tools_registered_in_kb(self, gkbms):
        assert gkbms.processor.is_instance_of("MoveDownMapper", "DesignTool")

    def test_duplicate_tool_rejected(self, gkbms):
        with pytest.raises(DecisionError):
            gkbms.tools.register(ToolSpec(name="MoveDownMapper"))

    def test_unknown_tool(self, gkbms):
        with pytest.raises(DecisionError):
            gkbms.tools.get("Hammer")

    def test_bad_automation_level(self):
        with pytest.raises(DecisionError):
            ToolSpec(name="X", automation="psychic")

    def test_guarantees(self, gkbms):
        tool = gkbms.tools.get("Normalizer")
        assert tool.guarantees_obligation("RelationsNormalized")
        assert not tool.guarantees_obligation("KeysCorrect")


class TestDecisionRegistration:
    def test_standard_classes_in_kb(self, gkbms):
        proc = gkbms.processor
        assert proc.is_instance_of("DecMoveDown", "DesignDecision")
        assert "TDL_MappingDec" in proc.generalizations("DecMoveDown")

    def test_from_to_links_typed(self, gkbms):
        proc = gkbms.processor
        assert "FROM" in proc.classification_of_link("DecMoveDown.hierarchy")
        assert "TO" in proc.classification_of_link("DecMoveDown.relations")

    def test_by_links(self, gkbms):
        proc = gkbms.processor
        assert "BY" in proc.classification_of_link(
            "DecMoveDown.by.MoveDownMapper"
        )

    def test_duplicate_decision_class(self, gkbms):
        with pytest.raises(DecisionError):
            gkbms.decisions.register(DecisionClass(name="DecMoveDown"))

    def test_unknown_tool_in_class(self, gkbms):
        with pytest.raises(DecisionError):
            gkbms.decisions.register(
                DecisionClass(name="DecX", tools=("Hammer",))
            )

    def test_unknown_parent(self, gkbms):
        with pytest.raises(DecisionError):
            gkbms.decisions.register(DecisionClass(name="DecY", isa=("DecZ",)))


class TestApplicability:
    def test_menu_most_specific_first(self, gkbms):
        matches = gkbms.decisions.applicable_decisions("Invitations")
        names = [dc.name for dc, _roles, _tools in matches]
        assert names.index("DecMoveDown") < names.index("TDL_MappingDec")
        assert names.index("TDL_MappingDec") < names.index("DBPL_MappingDec")

    def test_tools_listed(self, gkbms):
        matches = dict(
            (dc.name, tools)
            for dc, _roles, tools in gkbms.decisions.applicable_decisions(
                "Invitations"
            )
        )
        assert "MoveDownMapper" in matches["DecMoveDown"]

    def test_missing_role(self, gkbms):
        dc = gkbms.decisions.get("DecMoveDown")
        with pytest.raises(NotApplicableError):
            gkbms.decisions.check_applicability(dc, {})

    def test_wrong_class(self, gkbms):
        dc = gkbms.decisions.get("DecNormalize")
        with pytest.raises(NotApplicableError):
            gkbms.decisions.check_applicability(dc, {"relation": "Papers"})

    def test_precondition(self, gkbms):
        gkbms.decisions.register(
            DecisionClass(
                name="DecPicky",
                inputs=(("hierarchy", "TDL_EntityClass"),),
                outputs=(),
                precondition="Isa(hierarchy, Papers)",
            )
        )
        dc = gkbms.decisions.get("DecPicky")
        gkbms.decisions.check_applicability(dc, {"hierarchy": "Invitations"})
        with pytest.raises(NotApplicableError):
            gkbms.decisions.check_applicability(dc, {"hierarchy": "Persons"})


class TestExecution:
    def test_tool_execution_documents_instance(self, gkbms):
        record = gkbms.execute(
            "DecMoveDown", {"hierarchy": "Papers"}, tool="MoveDownMapper"
        )
        proc = gkbms.processor
        assert proc.is_instance_of(record.did, "DecMoveDown")
        # metaclass membership is not transitive: the *class* is the
        # instance of DesignDecision, the record instantiates the class
        assert proc.is_instance_of("DecMoveDown", "DesignDecision")
        # small-letter from/to/by links instantiate the capitals
        hierarchy_links = proc.attributes_of(record.did, label="hierarchy")
        assert any(p.destination == "Papers" for p in hierarchy_links)
        by_links = proc.attributes_of(record.did, label="by")
        assert len(by_links) == 1
        assert proc.is_instance_of(by_links[0].destination, "MoveDownMapper")

    def test_outputs_justified(self, gkbms):
        record = gkbms.execute(
            "DecMoveDown", {"hierarchy": "Papers"}, tool="MoveDownMapper"
        )
        proc = gkbms.processor
        for name in record.all_outputs():
            links = proc.attributes_of(name, label="justification")
            assert [p.destination for p in links] == [record.did]

    def test_manual_execution_requires_outputs(self, gkbms):
        with pytest.raises(DecisionError):
            gkbms.execute("DBPL_MappingDec", {"source": "Papers"})

    def test_manual_execution_with_outputs(self, gkbms):
        gkbms.processor.tell_individual("HandRel", in_class="DBPL_Rel")
        record = gkbms.execute(
            "DBPL_MappingDec", {"source": "Papers"},
            outputs={"result": ["HandRel"]}, actor="rose",
        )
        assert record.tool is None
        assert record.actor == "rose"

    def test_manual_output_must_exist_in_kb(self, gkbms):
        with pytest.raises(DecisionError):
            gkbms.execute(
                "DBPL_MappingDec", {"source": "Papers"},
                outputs={"result": ["Ghost"]},
            )

    def test_tool_not_associated(self, gkbms):
        with pytest.raises(DecisionError):
            gkbms.execute(
                "DecMoveDown", {"hierarchy": "Papers"}, tool="Normalizer"
            )

    def test_clock_advances(self, gkbms):
        before = gkbms.clock
        gkbms.execute("DecMoveDown", {"hierarchy": "Papers"},
                      tool="MoveDownMapper")
        assert gkbms.clock == before + 1

    def test_producers_consumers(self, gkbms):
        record = gkbms.execute(
            "DecMoveDown", {"hierarchy": "Papers"}, tool="MoveDownMapper"
        )
        rel = record.outputs["relations"][0]
        assert gkbms.decisions.producers_of(rel) == [record]
        assert gkbms.decisions.consumers_of("Papers") == [record]


class TestObligations:
    def _record(self, gkbms):
        gkbms.execute("DecMoveDown", {"hierarchy": "Papers"},
                      tool="MoveDownMapper")
        return gkbms.execute(
            "DecNormalize", {"relation": "InvitationRel"}, tool="Normalizer"
        )

    def test_guaranteed_by_tool(self, gkbms):
        record = self._record(gkbms)
        by_name = {o.name: o for o in record.obligations}
        assert by_name["RelationsNormalized"].status == "guaranteed"
        assert by_name["KeysCorrect"].status == "open"

    def test_open_obligation_in_kb(self, gkbms):
        record = self._record(gkbms)
        open_obl = record.open_obligations()[0]
        assert gkbms.processor.is_instance_of(open_obl.oid, "ProofObligation")

    def test_sign(self, gkbms):
        record = self._record(gkbms)
        obligation = record.open_obligations()[0]
        gkbms.decisions.sign(obligation.oid, "jarke")
        assert obligation.status == "signed"
        assert obligation.signer == "jarke"
        assert gkbms.decisions.open_obligations() == []

    def test_double_discharge_rejected(self, gkbms):
        record = self._record(gkbms)
        obligation = record.open_obligations()[0]
        gkbms.decisions.sign(obligation.oid, "jarke")
        with pytest.raises(ObligationError):
            gkbms.decisions.sign(obligation.oid, "rose")

    def test_prove_requires_assertion(self, gkbms):
        record = self._record(gkbms)
        obligation = record.open_obligations()[0]
        with pytest.raises(ObligationError):
            gkbms.decisions.prove(obligation.oid)

    def test_prove_with_assertion(self, gkbms):
        gkbms.decisions.register(
            DecisionClass(
                name="DecChecked",
                inputs=(("hierarchy", "TDL_EntityClass"),),
                outputs=(("relations", "DBPL_Rel"),),
                obligations=(("SourceStillThere", "In(hierarchy, TDL_EntityClass)"),),
                tools=("MoveDownMapper",),
            )
        )
        record = gkbms.execute(
            "DecChecked", {"hierarchy": "Papers"}, tool="MoveDownMapper",
            params={"only": ["Invitations"]},
        )
        obligation = record.open_obligations()[0]
        gkbms.decisions.prove(obligation.oid)
        assert obligation.status == "proved"

    def test_unknown_obligation(self, gkbms):
        with pytest.raises(ObligationError):
            gkbms.decisions.sign("obl999", "nobody")
