"""Tests for the DBPL execution engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DBPLError, IntegrityError, TransactionError
from repro.dbpl_engine import Database, SurrogateGenerator, compile_predicate
from repro.languages.dbpl import parse_dbpl

MODULE = """
DATABASE MODULE Meetings;
InvitationRel2 = RELATION
  paperkey : Surrogate,
  sender : Person,
  date : Date
KEY paperkey;
InvReceivRel = RELATION
  paperkey : Surrogate,
  receiver : Person
KEY paperkey, receiver;
SELECTOR InvitationsPaperIC ON InvReceivRel (paperkey) REFERENCES InvitationRel2 (paperkey);
CONSTRUCTOR ConsInvitation AS JOIN InvitationRel2, InvReceivRel ON paperkey;
END Meetings.
"""


@pytest.fixture
def db():
    database = Database()
    database.load_module(parse_dbpl(MODULE))
    return database


def _populate(db):
    with db.transaction():
        db.relation("InvitationRel2").insert(
            {"paperkey": "k1", "sender": "bob", "date": "d1"}
        )
        db.relation("InvReceivRel").insert({"paperkey": "k1", "receiver": "ann"})
        db.relation("InvReceivRel").insert({"paperkey": "k1", "receiver": "eva"})


class TestRelations:
    def test_insert_and_rows(self, db):
        _populate(db)
        assert len(db.rows("InvitationRel2")) == 1
        assert len(db.rows("InvReceivRel")) == 2

    def test_duplicate_key_rejected(self, db):
        _populate(db)
        with pytest.raises(IntegrityError):
            db.relation("InvitationRel2").insert(
                {"paperkey": "k1", "sender": "x", "date": "y"}
            )

    def test_null_key_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.relation("InvitationRel2").insert({"sender": "x"})

    def test_unknown_field_rejected(self, db):
        with pytest.raises(DBPLError):
            db.relation("InvitationRel2").insert({"paperkey": "k", "colour": "red"})

    def test_delete(self, db):
        _populate(db)
        with db.transaction():
            db.relation("InvReceivRel").delete(["k1", "ann"])
            db.relation("InvReceivRel").delete(["k1", "eva"])
            db.relation("InvitationRel2").delete(["k1"])
        assert db.rows("InvitationRel2") == []

    def test_delete_missing(self, db):
        with pytest.raises(DBPLError):
            db.relation("InvitationRel2").delete(["nope"])

    def test_update(self, db):
        _populate(db)
        with db.transaction():
            db.relation("InvitationRel2").update(["k1"], {"sender": "carol"})
        assert db.rows("InvitationRel2")[0]["sender"] == "carol"

    def test_update_key_collision(self, db):
        _populate(db)
        db.relation("InvitationRel2").insert(
            {"paperkey": "k2", "sender": "s", "date": "d"}
        )
        with pytest.raises(IntegrityError):
            db.relation("InvitationRel2").update(["k2"], {"paperkey": "k1"})

    def test_lookup(self, db):
        _populate(db)
        assert db.relation("InvitationRel2").lookup(["k1"])["sender"] == "bob"
        assert db.relation("InvitationRel2").lookup(["zz"]) is None


class TestConstructors:
    def test_join_view(self, db):
        _populate(db)
        rows = db.rows("ConsInvitation")
        assert len(rows) == 2
        assert {row["receiver"] for row in rows} == {"ann", "eva"}
        assert all(row["sender"] == "bob" for row in rows)

    def test_view_updates_with_base(self, db):
        _populate(db)
        with db.transaction():
            db.relation("InvReceivRel").delete(["k1", "eva"])
        assert len(db.rows("ConsInvitation")) == 1

    def test_unknown_relation(self, db):
        with pytest.raises(DBPLError):
            db.rows("Nothing")

    def test_constructor_over_constructor(self, db):
        from repro.languages.dbpl import ConstructorDecl, Project, RelationRef

        db.create_constructor(
            ConstructorDecl(
                "Receivers", Project(RelationRef("ConsInvitation"), ("receiver",))
            )
        )
        _populate(db)
        assert sorted(r["receiver"] for r in db.rows("Receivers")) == ["ann", "eva"]

    def test_constructor_on_unknown_base_rejected(self, db):
        from repro.languages.dbpl import ConstructorDecl, RelationRef

        with pytest.raises(DBPLError):
            db.create_constructor(ConstructorDecl("V", RelationRef("Ghost")))


class TestIntegrity:
    def test_foreign_key_enforced_at_commit(self, db):
        with pytest.raises(IntegrityError):
            with db.transaction():
                db.relation("InvReceivRel").insert(
                    {"paperkey": "dangling", "receiver": "x"}
                )
        assert db.rows("InvReceivRel") == []

    def test_deferred_checking_allows_temporary_inconsistency(self, db):
        # child first, parent second: fine at commit
        with db.transaction():
            db.relation("InvReceivRel").insert({"paperkey": "k9", "receiver": "a"})
            db.relation("InvitationRel2").insert(
                {"paperkey": "k9", "sender": "s", "date": "d"}
            )
        assert len(db.rows("InvReceivRel")) == 1

    def test_violations_report(self, db):
        db.relation("InvReceivRel").insert({"paperkey": "zz", "receiver": "a"})
        violations = db.violations()
        assert "InvitationsPaperIC" in violations

    def test_predicate_selector(self):
        database = Database()
        database.load_module(
            parse_dbpl(
                "DATABASE MODULE M;\n"
                "R = RELATION k : INT, v : INT KEY k;\n"
                "SELECTOR Pos ON R CHECK (v > 0);\n"
                "END M.\n"
            )
        )
        with database.transaction():
            database.relation("R").insert({"k": 1, "v": 5})
        with pytest.raises(IntegrityError):
            with database.transaction():
                database.relation("R").insert({"k": 2, "v": -1})
        assert len(database.rows("R")) == 1


class TestTransactions:
    def test_rollback_on_error(self, db):
        with pytest.raises(ValueError):
            with db.transaction():
                db.relation("InvitationRel2").insert(
                    {"paperkey": "k1", "sender": "s", "date": "d"}
                )
                raise ValueError("boom")
        assert db.rows("InvitationRel2") == []

    def test_nested_savepoints(self, db):
        with db.transaction():
            db.relation("InvitationRel2").insert(
                {"paperkey": "outer", "sender": "s", "date": "d"}
            )
            try:
                with db.transaction():
                    db.relation("InvitationRel2").insert(
                        {"paperkey": "inner", "sender": "t", "date": "d"}
                    )
                    raise ValueError("abort inner")
            except ValueError:
                pass
        keys = {row["paperkey"] for row in db.rows("InvitationRel2")}
        assert keys == {"outer"}

    def test_explicit_abort(self, db):
        with db.transaction() as txn:
            db.relation("InvitationRel2").insert(
                {"paperkey": "x", "sender": "s", "date": "d"}
            )
            txn.abort()
        assert db.rows("InvitationRel2") == []

    def test_abort_outside_raises(self, db):
        txn = db.transaction()
        with pytest.raises(TransactionError):
            txn.abort()


class TestPredicateCompiler:
    def test_conjunction_disjunction(self):
        predicate = compile_predicate("a = 'x' and b > 3 or c != 'z'")
        assert predicate({"a": "x", "b": 5, "c": "z"})
        assert predicate({"a": "q", "b": 0, "c": "y"})
        assert not predicate({"a": "q", "b": 0, "c": "z"})

    def test_numeric_coercion(self):
        predicate = compile_predicate("n >= 10")
        assert predicate({"n": "12"})
        assert not predicate({"n": "9"})
        assert not predicate({"n": "many"})

    def test_bad_predicate(self):
        with pytest.raises(DBPLError):
            compile_predicate("what even is this")


class TestSurrogates:
    def test_unique_per_namespace(self):
        gen = SurrogateGenerator()
        a = gen.fresh("R")
        b = gen.fresh("R")
        c = gen.fresh("S")
        assert a != b
        assert a.startswith("R:") and c.startswith("S:")

    def test_reset(self):
        gen = SurrogateGenerator()
        first = gen.fresh()
        gen.reset()
        assert gen.fresh() == first

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["R", "S", "T"]), max_size=40))
    def test_never_collides(self, namespaces):
        gen = SurrogateGenerator()
        minted = [gen.fresh(ns) for ns in namespaces]
        assert len(set(minted)) == len(minted)
