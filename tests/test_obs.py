"""Tests for the observability layer: metrics, tracing, EXPLAIN, CLI."""

import json
import threading

import pytest

from repro.deduction.kb import RuleEngine
from repro.obs.explain import QueryExplain
from repro.obs.logging import (
    CollectingSink,
    NullSink,
    StreamSink,
    get_sink,
    log,
    set_sink,
)
from repro.obs.metrics import (
    MetricError,
    MetricsRegistry,
    StatsView,
    diff_snapshots,
    dump_snapshot,
    load_snapshot,
)
from repro.obs.tracing import (
    TraceError,
    Tracer,
    load_jsonl,
    render_tree,
    span_tree,
)
from repro.propositions.processor import PropositionProcessor


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(MetricError):
            registry.gauge("a.b")

    def test_thread_safety_smoke(self):
        registry = MetricsRegistry()
        counter = registry.counter("x.hits")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_namespace_prefixes_names(self):
        registry = MetricsRegistry()
        ns = registry.namespace("proposition")
        ns.counter("tells").inc(3)
        assert registry.snapshot() == {"proposition.tells": 3}
        assert ns.snapshot() == {"tells": 3}

    def test_histogram_summary_and_determinism(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        h1 = r1.histogram("q.latency", reservoir_size=16)
        h2 = r2.histogram("q.latency", reservoir_size=16)
        for i in range(100):
            h1.observe(float(i))
            h2.observe(float(i))
        # same name => same reservoir RNG => identical snapshots
        assert h1.summary() == h2.summary()
        assert h1.summary()["count"] == 100
        assert h1.summary()["min"] == 0.0
        assert h1.summary()["max"] == 99.0

    def test_reset_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("a.x").inc()
        registry.counter("b.y").inc()
        registry.reset("a.")
        assert registry.snapshot() == {"a.x": 0, "b.y": 1}

    def test_diff_snapshots(self):
        before = {"a.x": 1, "a.y": 5}
        after = {"a.x": 4, "a.z": 2}
        assert diff_snapshots(before, after) == {
            "a.x": 3, "a.y": -5, "a.z": 2
        }

    def test_snapshot_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a.x").inc(7)
        path = str(tmp_path / "snap.json")
        dump_snapshot(path, registry.snapshot())
        assert load_snapshot(path) == {"a.x": 7}


class TestStatsView:
    def test_dict_idiom_hits_registry(self):
        registry = MetricsRegistry()
        ns = registry.namespace("c")
        ns.counter("hits")
        view = StatsView(ns)
        view["hits"] += 2
        assert view["hits"] == 2
        assert registry.snapshot()["c.hits"] == 2

    def test_readonly_backing_visible_but_not_writable(self):
        registry = MetricsRegistry()
        ns = registry.namespace("own")
        ns.counter("mine")
        backing = {"theirs": 9}
        view = StatsView(ns, readonly=(backing,))
        assert view["theirs"] == 9
        assert "theirs" in dict(view)
        with pytest.raises(MetricError):
            view["theirs"] = 1

    def test_reset_leaves_readonly_alone(self):
        registry = MetricsRegistry()
        ns = registry.namespace("own")
        ns.counter("mine").inc(4)
        backing = {"theirs": 9}
        view = StatsView(ns, readonly=(backing,))
        view.reset()
        assert view["mine"] == 0
        assert view["theirs"] == 9


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestTracing:
    def test_span_nesting_and_ordering(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a.outer"):
            with tracer.span("a.inner"):
                pass
            with tracer.span("a.second"):
                pass
        # finished in close order: inner, second, outer
        names = [span.name for span in tracer.spans]
        assert names == ["a.inner", "a.second", "a.outer"]
        outer = tracer.spans[2]
        assert tracer.spans[0].parent_id == outer.span_id
        assert tracer.spans[1].parent_id == outer.span_id
        assert outer.parent_id is None

    def test_injectable_clock_determinism(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("a.x"):
            pass
        span = tracer.spans[0]
        assert (span.start, span.end, span.duration) == (1.0, 2.0, 1.0)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a.x") as span:
            span.set(k=1)
        assert tracer.spans == []

    def test_error_status_on_exception(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("a.x"):
                raise ValueError("boom")
        assert tracer.spans[0].status == "error"
        assert tracer.spans[0].attrs["error"] == "ValueError"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("a.outer", depth=0):
            with tracer.span("a.inner", depth=1):
                pass
        path = str(tmp_path / "trace.jsonl")
        assert tracer.export_jsonl(path) == 2
        records = load_jsonl(path)
        assert [r["name"] for r in records] == ["a.inner", "a.outer"]
        roots = span_tree(records)
        assert len(roots) == 1
        assert roots[0]["name"] == "a.outer"
        assert roots[0]["children"][0]["name"] == "a.inner"
        text = render_tree(roots)
        assert "a.outer" in text and "└─ a.inner" in text

    def test_malformed_trace_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "a.x", "span_id": 1}\nnot json\n')
        with pytest.raises(TraceError):
            load_jsonl(str(path))
        path.write_text('{"nope": 1}\n')
        with pytest.raises(TraceError):
            load_jsonl(str(path))

    def test_max_spans_bounds_memory(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for _ in range(5):
            with tracer.span("a.x"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3


# ---------------------------------------------------------------------------
# Logging
# ---------------------------------------------------------------------------


class TestLogging:
    def test_default_sink_is_silent(self, capsys):
        assert isinstance(get_sink(), NullSink)
        log("info", "quiet")
        assert capsys.readouterr().out == ""

    def test_collecting_sink(self):
        sink = CollectingSink()
        log("warning", "watch out", sink=sink, code=7)
        assert sink.messages("warning") == ["watch out"]
        assert sink.records[0].fields == {"code": 7}

    def test_stream_sink_routes_errors(self, capsys):
        previous = set_sink(StreamSink())
        try:
            log("info", "to stdout")
            log("error", "to stderr")
        finally:
            set_sink(previous)
        captured = capsys.readouterr()
        assert "to stdout" in captured.out
        assert "error: to stderr" in captured.err

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            log("loud", "nope")


# ---------------------------------------------------------------------------
# Stats aliasing regressions (engine/checker; processor+WAL cases live
# in test_wal_recovery.py)
# ---------------------------------------------------------------------------


class TestStatsIndependence:
    def test_two_engines_one_processor_count_independently(self):
        proc = PropositionProcessor()
        for i in range(5):
            proc.tell_individual(f"node{i}")
        for i in range(4):
            proc.tell_link(f"node{i}", "knows", f"node{i+1}")
        rule = "attr(?x, peer, ?z) :- attr(?x, knows, ?y), attr(?y, knows, ?z)."
        one = RuleEngine(proc)
        two = RuleEngine(proc)
        one.add_rule(rule, document=False)
        two.add_rule(rule, document=False)
        one.materialise()
        assert one.stats["join_probes"] > 0
        assert two.stats["join_probes"] == 0

    def test_engine_reset_stats(self):
        proc = PropositionProcessor()
        engine = RuleEngine(proc)
        engine.add_rule("attr(?x, a, ?y) :- attr(?x, b, ?y).",
                        document=False)
        engine.materialise()
        assert engine.stats["iterations"] > 0
        engine.reset_stats()
        assert engine.stats["iterations"] == 0

    def test_checker_stats_registry_backed(self):
        from repro.conceptbase import ConceptBase

        cb = ConceptBase()
        cb.define_metaclass("TDL_EntityClass")
        cb.tell("TELL Person IN TDL_EntityClass END")
        cb.add_constraint("Person", "IsKnown", "Known(self)")
        cb.tell("TELL ann IN Person END")
        cb.check()
        assert cb.consistency.stats.evaluations > 0
        # the same numbers surface through the shared facade registry
        snap = cb.metrics_snapshot("consistency")
        assert snap["consistency.evaluations"] == \
            cb.consistency.stats.evaluations
        cb.consistency.reset_stats()
        assert cb.consistency.stats.evaluations == 0

    def test_checkstats_rejects_unknown_attribute(self):
        from repro.consistency.checker import CheckStats

        stats = CheckStats()
        with pytest.raises(AttributeError):
            stats.typo = 3

    def test_store_counters_roll_up_to_facade_registry(self):
        from repro.conceptbase import ConceptBase

        cb = ConceptBase()
        cb.define_metaclass("TDL_EntityClass")
        snap = cb.metrics_snapshot("store")
        assert snap["store.creates"] > 0


# ---------------------------------------------------------------------------
# EXPLAIN
# ---------------------------------------------------------------------------


class TestQueryExplain:
    def _processor(self, optimise=True):
        proc = PropositionProcessor(optimise=optimise)
        proc.define_class("Person", level="SimpleClass")
        for i in range(10):
            proc.tell_individual(f"ind{i}", in_class="Person")
        return proc

    def test_cold_query_shows_closure_spans(self):
        proc = self._processor()
        explain = QueryExplain(proc.registry)
        with explain.capture("cold") as report:
            proc.classes_of("ind0")
        assert report.spans_named("proposition.closure")
        assert report.delta("proposition.closure_misses") > 0
        assert report.headline()["closure_spans"] > 0

    def test_warm_query_is_span_free_but_counts_hits(self):
        proc = self._processor()
        proc.classes_of("ind0")  # warm the cache
        explain = QueryExplain(proc.registry)
        with explain.capture("warm") as report:
            proc.classes_of("ind0")
        assert report.spans_named("proposition.closure") == []
        assert report.delta("proposition.closure_hits") > 0
        assert report.delta("proposition.closure_misses") == 0
        assert "cache" in report.render()

    def test_explain_reproduces_isa_expansion_headline(self):
        """PR 2's >=5x isa-expansion saving, from registry data alone."""
        expansions = {}
        for optimise in (True, False):
            proc = self._processor(optimise=optimise)
            explain = QueryExplain(proc.registry)
            with explain.capture("workload") as report:
                for i in range(10):
                    proc.classes_of(f"ind{i}")
                    proc.instances_of("Person")
            expansions[optimise] = report.delta(
                "proposition.isa_expansions")
        assert expansions[False] >= 5 * max(1, expansions[True])

    def test_explain_reproduces_join_probe_headline(self):
        """PR 3's >=3x join-probe saving, from registry data alone."""
        probes = {}
        rule = ("attr(?x, peer, ?z) :- "
                "attr(?x, knows, ?y), attr(?y, knows, ?z).")
        for optimise in (True, False):
            proc = PropositionProcessor()
            for i in range(12):
                proc.tell_individual(f"node{i}")
            for i in range(11):
                proc.tell_link(f"node{i}", "knows", f"node{i+1}")
            engine = RuleEngine(proc, optimise=optimise)
            engine.add_rule(rule, document=False)
            explain = QueryExplain(engine.registry)
            report = explain.explain(engine.materialise)
            probes[optimise] = report.delta("deduction.join_probes")
        assert probes[False] >= 3 * max(1, probes[True])

    def test_explain_captures_deduction_rounds(self):
        proc = PropositionProcessor()
        for i in range(4):
            proc.tell_individual(f"node{i}")
        for i in range(3):
            proc.tell_link(f"node{i}", "knows", f"node{i+1}")
        engine = RuleEngine(proc)
        engine.add_rule(
            "attr(?x, reaches, ?y) :- attr(?x, knows, ?y).",
            document=False)
        engine.add_rule(
            "attr(?x, reaches, ?z) :- "
            "attr(?x, reaches, ?y), attr(?y, knows, ?z).",
            document=False)
        explain = QueryExplain(engine.registry)
        report = explain.explain(engine.materialise)
        trees = report.tree()
        materialise = [t for t in trees
                       if t["name"] == "deduction.materialise"]
        assert materialise
        evaluates = [c for c in materialise[0]["children"]
                     if c["name"] == "deduction.evaluate"]
        assert evaluates
        rounds = [c for c in evaluates[0]["children"]
                  if c["name"] == "deduction.round"]
        assert len(rounds) >= 2
        assert report.delta("deduction.materialisations") == 1

    def test_explain_surfaces_cache_pathology_split(self):
        """The headline separates rebuild churn (invalidations) from
        in-place maintenance (delta applications): the same mutation
        workload shows deltas on the incremental processor and
        invalidations on the ablation."""
        observed = {}
        for incremental in (True, False):
            proc = PropositionProcessor(incremental=incremental)
            proc.define_class("Person")
            proc.tell_individual("ann")
            proc.classes_of("ann")           # warm the family
            explain = QueryExplain(proc.registry)
            with explain.capture("mutate") as report:
                proc.tell_instanceof("ann", "Person")
                proc.classes_of("ann")
            observed[incremental] = report.headline()
        assert observed[True]["closure_delta_applied"] > 0
        assert observed[True]["closure_invalidations"] == 0
        assert observed[False]["closure_invalidations"] > 0
        assert observed[False]["closure_delta_applied"] == 0
        rendered_keys = ("closure_delta_applied", "closure_invalidations")
        assert any(key in QueryExplain(
            PropositionProcessor().registry
        ).explain(lambda: None).headline() for key in rendered_keys)

    def test_facade_explain_accessor(self):
        from repro.conceptbase import ConceptBase

        cb = ConceptBase()
        cb.define_metaclass("TDL_EntityClass")
        cb.tell("TELL Person IN TDL_EntityClass END")
        with cb.explain().capture("tell") as report:
            cb.tell("TELL ann IN Person END")
        assert report.delta("proposition.tells") > 0
        assert "EXPLAIN tell" in report.render()

    def test_capture_restores_previous_tracer(self):
        from repro.obs.tracing import get_tracer

        proc = self._processor()
        before = get_tracer()
        with QueryExplain(proc.registry).capture("x"):
            assert get_tracer() is not before
        assert get_tracer() is before


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestObsCli:
    def test_smoke_check_dump_diff(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace = str(tmp_path / "trace.jsonl")
        metrics = str(tmp_path / "metrics.json")
        assert main(["smoke", "--trace-out", trace,
                     "--metrics-out", metrics,
                     "--wal-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for subsystem in ("proposition", "deduction", "consistency",
                          "wal", "models"):
            assert f"{subsystem}:" in out

        assert main(["check", trace]) == 0
        assert "OK" in capsys.readouterr().out

        assert main(["dump", trace]) == 0
        assert "wal.recover" in capsys.readouterr().out

        assert main(["dump", trace, "--metrics", metrics]) == 0
        out = capsys.readouterr().out
        assert "closure cache" in out
        assert "delta_applied" in out
        assert "idb maintenance" in out

        # diff a snapshot against itself: all deltas zero, prints nothing
        assert main(["diff", metrics, metrics]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_check_fails_on_missing_subsystem(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace = tmp_path / "partial.jsonl"
        trace.write_text(json.dumps(
            {"name": "proposition.tell", "span_id": 1, "parent_id": None}
        ) + "\n")
        assert main(["check", str(trace)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_check_fails_on_malformed_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace = tmp_path / "garbage.jsonl"
        trace.write_text("this is not json\n")
        assert main(["check", str(trace)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_metrics_snapshot_has_stable_subsystem_names(self, tmp_path):
        from repro.obs.__main__ import run_smoke

        trace = str(tmp_path / "trace.jsonl")
        metrics = str(tmp_path / "metrics.json")
        run_smoke(trace, metrics, wal_dir=str(tmp_path))
        snapshot = load_snapshot(metrics)
        prefixes = {name.split(".", 1)[0] for name in snapshot}
        assert {"proposition", "deduction", "consistency",
                "wal", "store", "models"} <= prefixes
