"""The decision ledger: records, justification graph, WAL durability.

Unit-level coverage for :mod:`repro.decisions` — the typed ledger and
its serialization round-trip, the consequence-edge rules, the engine's
validation and atomicity guarantees, and the whole durability story:
a decide/backtrack history must be reconstructible from the WAL alone,
across plain reopens, checkpoints, and aborted transactions.
"""

import json

import pytest

from repro.conceptbase import ConceptBase
from repro.decisions import (
    DecisionHistory,
    DecisionLedger,
    JustificationGraph,
    KINDS,
    LedgerRecord,
    decide_keys,
)
from repro.errors import BacktrackError, DecisionError
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore


def decide(history, decision_class="Dec", **spec):
    spec["decision_class"] = decision_class
    return history.apply_decide(json.dumps(spec, sort_keys=True))


def backtrack(history, did):
    return history.apply_backtrack(json.dumps({"did": did}))


@pytest.fixture
def history():
    cb = ConceptBase()
    with cb.transaction():
        cb.tell("TELL K IN SimpleClass END")
    return DecisionHistory(cb)


# ---------------------------------------------------------------------------
# LedgerRecord / DecisionLedger
# ---------------------------------------------------------------------------


class TestLedger:
    def test_record_json_roundtrip_is_lossless(self):
        record = LedgerRecord(
            did="d1", tick=3, decision_class="DecNormalize",
            kind="refinement", tool="Normalizer",
            inputs={"rel": "R"}, outputs=["R2"], parents=["d0"],
            rationale="why", obligations=["ob1"],
            told=["p1"], untold=["p2"], clipped=["p3"],
            delta=[["create", {"pid": "p1", "source": "R2",
                               "label": "R2", "destination": "R2"}]],
            status="retracted", retracted_tick=9,
        )
        assert LedgerRecord.from_json(record.to_json()) == record

    def test_from_json_refuses_garbage(self):
        with pytest.raises(DecisionError):
            LedgerRecord.from_json({"no": "did"})

    def test_dids_and_ticks_are_deterministic(self):
        ledger = DecisionLedger()
        assert ledger.next_did() == "d1"
        ledger.append(LedgerRecord(did="d1", tick=ledger.next_tick(),
                                   decision_class="A"))
        assert ledger.next_did() == "d2"
        assert ledger.next_tick() == 2

    def test_duplicate_did_refused(self):
        ledger = DecisionLedger()
        ledger.append(LedgerRecord(did="d1", tick=1, decision_class="A"))
        with pytest.raises(DecisionError):
            ledger.append(LedgerRecord(did="d1", tick=2, decision_class="B"))

    def test_unknown_did_refused(self):
        with pytest.raises(DecisionError):
            DecisionLedger().get("d7")

    def test_mark_retracted_updates_active_view(self):
        ledger = DecisionLedger()
        ledger.append(LedgerRecord(did="d1", tick=1, decision_class="A"))
        ledger.append(LedgerRecord(did="d2", tick=2, decision_class="B"))
        ledger.mark_retracted("d1", ledger.next_tick())
        assert [r.did for r in ledger.active()] == ["d2"]
        assert ledger.get("d1").retracted_tick == 3

    def test_from_wire_log_resumes_tick_counter(self):
        ledger = DecisionLedger.from_wire_log([
            {"did": "d1", "tick": 1, "decision_class": "A",
             "status": "retracted", "retracted_tick": 4},
            {"did": "d2", "tick": 2, "decision_class": "B"},
        ])
        # the next event must come after every recorded tick
        assert ledger.next_tick() == 5

    def test_created_and_referenced_ids(self):
        record = LedgerRecord(
            did="d1", tick=1, decision_class="A",
            inputs={"src": "X"}, outputs=["Y"], told=["Y", "p4"],
            untold=["p2"], clipped=["p3"],
            delta=[["create", {"pid": "p4", "source": "Y",
                               "label": "instanceof", "destination": "K"}]],
        )
        assert record.created_ids() == ["Y", "p4"]
        refs = record.referenced_ids()
        assert "X" in refs and "p2" in refs and "p3" in refs
        # link endpoints count, the created pid itself does not
        assert "K" in refs and "Y" in refs and "p4" not in refs

    def test_decide_keys_parses_tell_and_untell_names(self):
        keys = decide_keys({
            "tell": ["TELL A IN K END", "TELL B IN K END\nTELL A IN K END"],
            "untell": ["C"],
        })
        assert keys == ["A", "B", "C"]


# ---------------------------------------------------------------------------
# JustificationGraph
# ---------------------------------------------------------------------------


def _rec(did, tick, **kw):
    return LedgerRecord(did=did, tick=tick, decision_class="Dec", **kw)


class TestJustificationGraph:
    def test_edge_reasons(self):
        records = [
            _rec("d1", 1, outputs=["A"], told=["A"]),
            _rec("d2", 2, inputs={"src": "A"}, outputs=["B"], told=["B"]),
            _rec("d3", 3, parents=["d2"]),
            _rec("d4", 4, untold=["A"]),
        ]
        graph = JustificationGraph(records)
        assert graph.edges["d1"]["d2"] == "from-to"
        assert graph.edges["d2"]["d3"] == "by"
        assert graph.edges["d1"]["d4"] == "write-set"

    def test_consequents_are_transitive(self):
        records = [
            _rec("d1", 1, outputs=["A"], told=["A"]),
            _rec("d2", 2, inputs={"x": "A"}, outputs=["B"], told=["B"]),
            _rec("d3", 3, inputs={"x": "B"}),
            _rec("d4", 4),  # unrelated
        ]
        graph = JustificationGraph(records)
        assert graph.consequents("d1") == {"d2", "d3"}
        assert graph.consequents("d4") == set()

    def test_retracted_decisions_do_not_transmit(self):
        records = [
            _rec("d1", 1, outputs=["A"], told=["A"]),
            _rec("d2", 2, inputs={"x": "A"}, outputs=["B"], told=["B"],
                 status="retracted", retracted_tick=4),
            _rec("d3", 3, inputs={"x": "B"}),
        ]
        graph = JustificationGraph(records)
        # d2 is already gone: it neither falls again nor drags d3 down
        assert graph.consequents("d1") == set()
        assert graph.consequents("d1", active_only=False) == {"d2", "d3"}

    def test_justification_of(self):
        records = [
            _rec("d1", 1, outputs=["A"], told=["A"]),
            _rec("d2", 2, inputs={"x": "A"}),
        ]
        graph = JustificationGraph(records)
        assert graph.justification_of("d2") == [("d1", "from-to")]

    def test_edge_list_is_stable_wire_form(self):
        records = [
            _rec("d1", 1, outputs=["A"], told=["A"]),
            _rec("d2", 2, inputs={"x": "A"}),
        ]
        assert JustificationGraph(records).edge_list() == [
            {"from": "d1", "to": "d2", "reason": "from-to"},
        ]


# ---------------------------------------------------------------------------
# DecisionHistory: validation, atomicity, replay, versions
# ---------------------------------------------------------------------------


class TestDecisionHistory:
    def test_decide_records_exact_pids(self, history):
        result = decide(history, tell=["TELL A IN K END"])
        record = history.ledger.get(result["did"])
        assert record.outputs == ["A"]
        assert "A" in record.told and len(record.told) == 2  # + instanceof
        assert record.delta[0][0] == "create"

    def test_validation_errors(self, history):
        with pytest.raises(DecisionError):
            decide(history, decision_class="")
        with pytest.raises(DecisionError):
            decide(history, kind="guess")
        with pytest.raises(DecisionError):
            decide(history, inputs={"src": "Ghost"})
        with pytest.raises(DecisionError):
            decide(history, parents=["d99"])
        assert len(history.ledger) == 0

    def test_kinds_constant_matches_validation(self, history):
        for kind in KINDS:
            decide(history, tell=[], kind=kind)
        assert len(history.ledger) == len(KINDS)

    def test_failed_decide_leaves_no_record_and_no_props(self, history):
        before = history.store.rows()
        with pytest.raises(Exception):
            decide(history, tell=["TELL A IN K END"], untell=["Ghost"])
        assert history.store.rows() == before
        assert len(history.ledger) == 0
        assert history.ledger.next_did() == "d1"

    def test_backtrack_unknown_and_double(self, history):
        with pytest.raises(DecisionError):
            backtrack(history, "d9")
        result = decide(history, tell=["TELL A IN K END"])
        backtrack(history, result["did"])
        with pytest.raises(BacktrackError):
            backtrack(history, result["did"])

    def test_backtrack_restores_untold_propositions(self, history):
        decide(history, tell=["TELL A IN K END"])
        before = history.store.rows()
        result = decide(history, untell=["A"])
        assert not history.proc.exists("A")
        backtrack(history, result["did"])
        assert history.store.rows() == before

    def test_replay_reports_input_drift(self, history):
        with history.cb.transaction():
            history.cb.tell("TELL Src IN K END")
        result = decide(history, inputs={"s": "Src"},
                        tell=["TELL A IN K END"])
        with history.cb.transaction():
            history.cb.untell("Src")
        outcome = history.replay(result["did"])
        assert outcome["applicable"] is False
        assert {"kind": "missing_input", "role": "s",
                "name": "Src"} in outcome["drift"]

    def test_replay_clean_after_backtrack(self, history):
        result = decide(history, tell=["TELL A IN K END"])
        backtrack(history, result["did"])
        outcome = history.replay(result["did"])
        assert outcome["applicable"] is True
        assert outcome["drift"] == []
        assert outcome["status"] == "retracted"

    def test_versions_derivation(self, history):
        decide(history, decision_class="Map", kind="mapping",
               tell=["TELL R IN K END"])
        decide(history, decision_class="Norm", kind="refinement",
               inputs={"rel": "R"}, tell=["TELL R2 IN K END"])
        decide(history, decision_class="Key", kind="choice",
               inputs={"rel": "R2"}, tell=["TELL R2~alt IN K END"])
        derived = history.versions()
        assert [v["name"] for v in derived["versions"]["R2"]] == \
            ["R2", "R2~alt"]
        assert derived["vertical"][0]["to"] == ["R"]
        assert derived["horizontal"][0]["from"] == ["R"]
        assert derived["alternatives"][0]["from"] == ["R2"]

    def test_history_excludes_retracted_on_request(self, history):
        first = decide(history, tell=["TELL A IN K END"])
        decide(history, tell=["TELL B IN K END"])
        backtrack(history, first["did"])
        full = history.history()
        assert [d["did"] for d in full["decisions"]] == ["d1", "d2"]
        assert full["recorded"] == 2 and full["active"] == 1
        active = history.history(include_retracted=False)
        assert [d["did"] for d in active["decisions"]] == ["d2"]

    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        cb = ConceptBase(registry=registry)
        with cb.transaction():
            cb.tell("TELL K IN SimpleClass END")
        history = DecisionHistory(cb)
        first = decide(history, tell=["TELL A IN K END"])
        decide(history, inputs={"x": "A"}, tell=["TELL B IN K END"])
        backtrack(history, first["did"])
        snap = registry.snapshot()
        assert snap["decisions.recorded"] == 2
        assert snap["decisions.backtracked"] == 2  # cascade counted both
        assert snap["decisions.graph_nodes"] == 2
        assert snap["decisions.graph_edges"] == 1


# ---------------------------------------------------------------------------
# WAL durability: the ledger survives anything short of data loss
# ---------------------------------------------------------------------------


class TestWalDurability:
    def _open(self, path):
        store = WalStore(str(path), registry=MetricsRegistry())
        cb = ConceptBase(store=store)
        history = DecisionHistory(cb)
        return store, cb, history

    def _seed(self, history):
        with history.cb.transaction():
            history.cb.tell("TELL K IN SimpleClass END")

    def test_ledger_replays_from_wal_alone(self, tmp_path):
        path = tmp_path / "dec.wal"
        store, _cb, history = self._open(path)
        self._seed(history)
        decide(history, tell=["TELL A IN K END"])
        second = decide(history, inputs={"x": "A"},
                        tell=["TELL B IN K END"])
        backtrack(history, second["did"])
        rows = store.rows()
        store.close()

        store2, _cb2, recovered = self._open(path)
        assert store2.rows() == rows
        assert [(r.did, r.status) for r in recovered.ledger.records] == \
            [("d1", "done"), ("d2", "retracted")]
        # the recovered ledger keeps numbering where it left off
        assert recovered.ledger.next_did() == "d3"
        # ... and its delta is still invertible: backtrack d1 post-crash
        backtrack(recovered, "d1")
        assert not recovered.proc.exists("A")
        store2.close()

    def test_checkpoint_compacts_ledger_into_snapshot(self, tmp_path):
        path = tmp_path / "dec.wal"
        store, _cb, history = self._open(path)
        self._seed(history)
        first = decide(history, tell=["TELL A IN K END"])
        backtrack(history, first["did"])
        store.checkpoint()
        decide(history, tell=["TELL C IN K END"])
        rows = store.rows()
        store.close()

        store2, _cb2, recovered = self._open(path)
        assert store2.rows() == rows
        assert [(r.did, r.status) for r in recovered.ledger.records] == \
            [("d1", "retracted"), ("d2", "done")]
        store2.close()

    def test_aborted_decide_is_invisible_after_reopen(self, tmp_path):
        path = tmp_path / "dec.wal"
        store, _cb, history = self._open(path)
        self._seed(history)
        decide(history, tell=["TELL A IN K END"])
        with pytest.raises(Exception):
            decide(history, tell=["TELL B IN K END"], untell=["Ghost"])
        # in-memory ledger already re-aligned
        assert [r.did for r in history.ledger.records] == ["d1"]
        assert len(store.decision_log) == 1
        store.close()

        store2, _cb2, recovered = self._open(path)
        assert [r.did for r in recovered.ledger.records] == ["d1"]
        assert not recovered.proc.exists("B")
        store2.close()

    def test_old_snapshots_without_decisions_still_load(self, tmp_path):
        path = tmp_path / "plain.wal"
        store = WalStore(str(path), registry=MetricsRegistry())
        cb = ConceptBase(store=store)
        with cb.transaction():
            cb.tell("TELL K IN SimpleClass END")
        store.checkpoint()
        store.close()
        store2, _cb2, history = self._open(path)
        assert history.ledger.records == []
        decide(history, tell=["TELL A IN K END"])
        store2.close()
