"""Server-level chaos matrix, supervised recovery, idempotent retries.

PR 3 proved the *storage* layer crash-safe; these tests prove the
*service* tier is.  A :class:`~repro.scenario.chaos.ChaosHarness` runs
live concurrent load against a WAL-backed
:class:`~repro.server.service.GKBMSService`, injects one seeded fault
from the matrix (writer killed mid-batch, crash inside a checkpoint,
fsync raising, torn WAL tail, TCP client dropped mid-commit, a disk
that lies about fsync), then holds the recovered store against the
accepted-commit-log oracle: replaying the durably *acked* commits must
reproduce the recovered ``rows()`` exactly — every acked commit
survives, no unacked commit is visible.  ``lying_fsync`` is the
documented exception: acked durability is physically impossible on a
lying disk, so its oracle weakens to prefix consistency with the loss
quantified.

Supervised variants leave recovery to the
:class:`~repro.server.supervisor.ServiceSupervisor` and verify the
*live* service instead: it must return to ``serving``, count its
restart in ``server.supervisor.*``, and the surviving base must equal
a replay of the successor pipeline's commit log.

Seeded via ``FAULT_SEED`` (CI shards a small seed matrix, mirroring
``test_wal_recovery``).  When ``CHAOS_REPORT`` names a file, the
per-scenario reports are dumped there as the non-gating CI artifact.
"""

import json
import os

import pytest

from repro.conceptbase import ConceptBase
from repro.errors import (
    ServerError,
    ServerOverloaded,
    ServerReadOnly,
    ServerRestarting,
)
from repro.faults import FaultPlan, FaultyIO
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore
from repro.scenario.chaos import (
    FAULT_KINDS,
    STRICT_KINDS,
    ChaosHarness,
    PowerCutIO,
    oracle_prefix,
    replay_commit_log,
)
from repro.server.client import LocalClient, RetryPolicy
from repro.server.service import GKBMSService
from repro.server.supervisor import ServiceSupervisor

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))
SEEDS = tuple(FAULT_SEED * 100 + n for n in range(3))

#: kind -> seed -> report JSON, dumped by the module fixture for CI.
CHAOS_REPORTS = {}


@pytest.fixture(scope="module", autouse=True)
def chaos_report():
    yield
    target = os.environ.get("CHAOS_REPORT")
    if target:
        with open(target, "w") as handle:
            json.dump({"base_seed": FAULT_SEED, "runs": CHAOS_REPORTS},
                      handle, indent=1, sort_keys=True)


def _run(tmp_path, kind, seed, **kw):
    harness = ChaosHarness(str(tmp_path / "chaos.wal"), kind, seed, **kw)
    report = harness.run()
    CHAOS_REPORTS.setdefault(kind, {})[str(seed)] = report.to_json()
    return report


class TestPowerCutIO:
    """The power-cut model under the fault matrix's feet."""

    def test_durable_advances_only_on_honest_fsync(self, tmp_path):
        path = str(tmp_path / "log")
        io = PowerCutIO(FaultPlan())
        handle = io.open_truncate(path)
        io.write(handle, b"abcd")
        assert io.durable_len(path) == 0
        io.fsync(handle)
        assert io.durable_len(path) == 4
        io.write(handle, b"efgh")
        io.close(handle)
        assert io.durable_len(path) == 4

    def test_lied_fsync_does_not_advance_durable(self, tmp_path):
        path = str(tmp_path / "log")
        io = PowerCutIO(FaultPlan(lying_fsyncs=True))
        handle = io.open_truncate(path)
        io.write(handle, b"abcd")
        io.fsync(handle)
        io.close(handle)
        assert io.durable_len(path) == 0

    def test_powercut_truncates_to_durable(self, tmp_path):
        path = str(tmp_path / "log")
        io = PowerCutIO(FaultPlan())
        handle = io.open_truncate(path)
        io.write(handle, b"abcd")
        io.fsync(handle)
        io.write(handle, b"efgh")
        io.close(handle)
        lost = io.powercut()
        assert io.real.read_bytes(path) == b"abcd"
        assert lost[path] == 4

    def test_torn_tail_fragment_is_sub_header(self, tmp_path):
        path = str(tmp_path / "log")
        io = PowerCutIO(FaultPlan(seed=FAULT_SEED))
        handle = io.open_truncate(path)
        io.write(handle, b"abcd")
        io.fsync(handle)
        io.write(handle, b"X" * 64)
        io.close(handle)
        io.powercut(keep_torn_tail=True)
        size = io.real.size(path)
        # WAL record headers are 8 bytes: the surviving fragment must
        # never be able to parse as a complete record.
        assert 4 < size < 4 + 8

    def test_reopen_after_cut_tracks_existing_size(self, tmp_path):
        path = str(tmp_path / "log")
        io = PowerCutIO(FaultPlan())
        handle = io.open_truncate(path)
        io.write(handle, b"abcd")
        io.fsync(handle)
        io.close(handle)
        again = io.open_append(path)
        io.write(again, b"ef")
        io.fsync(again)
        io.close(again)
        assert io.durable_len(path) == 6


class TestOracle:
    """replay_commit_log / oracle_prefix on hand-built logs."""

    LOG = [
        (1, "s1", [("tell", "TELL A END")]),
        (2, "s1", [("checkpoint", "")]),
        (3, "s2", [("tell", "TELL B END")]),
    ]

    def test_replay_skips_checkpoints(self):
        cb = replay_commit_log(self.LOG)
        assert cb.ask("Known(A)")
        assert cb.ask("Known(B)")

    def test_full_prefix_matches(self):
        rows = replay_commit_log(self.LOG).propositions.store.rows()
        assert oracle_prefix(rows, self.LOG) == len(self.LOG)

    def test_partial_prefix_found(self):
        rows = replay_commit_log(self.LOG[:1]).propositions.store.rows()
        # entry 2 is a checkpoint (no logical effect), so the state
        # after entry 1 is also the state after entry 2.
        assert oracle_prefix(rows, self.LOG) == 2

    def test_empty_store_is_prefix_zero(self):
        rows = ConceptBase().propositions.store.rows()
        assert oracle_prefix(rows, self.LOG) == 0

    def test_foreign_state_is_no_prefix(self):
        cb = ConceptBase()
        with cb.transaction():
            cb.tell("TELL Z END")
        rows = cb.propositions.store.rows()
        assert oracle_prefix(rows, self.LOG) is None


class TestChaosMatrix:
    """The acceptance sweep: every kind, several seeds, zero loss."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", STRICT_KINDS)
    def test_strict_kinds_lose_nothing(self, tmp_path, kind, seed):
        report = _run(tmp_path, kind, seed)
        assert report.load is not None
        assert report.load.unexpected_errors == 0
        assert report.oracle_prefix is not None, "recovered state is corrupt"
        assert report.rows_equal, (
            f"{kind}/{seed}: recovered rows match acked prefix "
            f"{report.oracle_prefix}/{report.acked_commits}"
        )
        assert report.lost_acked == 0
        if kind == "client_drop":
            assert report.exactly_once is True

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lying_fsync_loss_is_prefix_and_quantified(self, tmp_path, seed):
        report = _run(tmp_path, "lying_fsync", seed)
        assert report.load is not None
        assert report.load.unexpected_errors == 0
        # A lying disk may lose acked commits — but the survivors must
        # still be an exact prefix of the acked history (no holes, no
        # unacked resurrections), and the loss must be measured.
        assert report.oracle_prefix is not None, "recovered state is corrupt"
        assert report.lost_acked == \
            report.acked_commits - report.oracle_prefix

    def test_unknown_kind_is_refused(self, tmp_path):
        with pytest.raises(ValueError):
            ChaosHarness(str(tmp_path / "w"), "meteor_strike", 0)


class TestSupervisedRecovery:
    """The supervisor restarts through WAL replay and serves again."""

    @pytest.mark.parametrize("kind",
                             ["writer_kill", "fsync_fault", "torn_tail"])
    def test_supervised_chaos_recovers_live(self, tmp_path, kind):
        report = _run(tmp_path, kind, FAULT_SEED, supervised=True)
        assert report.supervisor["status"] == "serving"
        assert report.supervisor["server.supervisor.faults"] >= 1
        assert report.supervisor["server.supervisor.recoveries"] >= 1
        assert report.supervisor["server.supervisor.mttr_ms"]["count"] >= 1
        assert report.rows_equal, "live base diverged from its commit log"
        assert report.load is not None
        assert report.load.unexpected_errors == 0

    def test_restart_preserves_acked_and_drops_unacked(self, tmp_path):
        """Deterministic single-client variant: commits before the
        fault survive the supervised restart; the faulted one is
        retried by policy and applies exactly once."""
        plan = FaultPlan(seed=FAULT_SEED)
        io = FaultyIO(plan)
        registry = MetricsRegistry()
        store = WalStore(str(tmp_path / "sup.wal"), fsync="commit",
                         io=io, registry=registry)
        service = GKBMSService(ConceptBase(store=store, registry=registry))
        supervisor = ServiceSupervisor(
            service, backoff_base=0.001, backoff_cap=0.01, seed=FAULT_SEED
        )
        client = LocalClient(
            service, retry=RetryPolicy(seed=FAULT_SEED, base=0.001, cap=0.01)
        )
        client.tell("TELL SimpleClass IN Class END")
        client.tell("TELL Before IN SimpleClass END")
        # Every fsync from here on fails: the next commit's batch
        # cannot ack, the pipeline poisons, the supervisor restarts —
        # and the client's tokened retry lands on the recovered service.
        plan.fail_fsyncs_from = io.ops + 1
        result = client.tell("TELL After IN SimpleClass END")
        supervisor.join()
        assert service.status == "serving"
        assert result["created"] >= 1
        assert client.retry.retries >= 1
        assert client.ask("Known(Before)")
        assert client.ask("Known(After)")
        applied = [
            entry for entry in service.pipeline.commit_log()
            if any("After" in arg for _kind, arg in entry[2])
        ]
        assert len(applied) == 1, "retried commit must apply exactly once"
        snapshot = registry.snapshot("server.supervisor")
        assert snapshot["server.supervisor.recoveries"] == 1
        service.drain()

    def test_crash_loop_degrades_to_read_only(self):
        """An exhausted restart budget stops the flapping: reads keep
        serving the recovered state, writes get the typed refusal."""
        service = GKBMSService(ConceptBase())
        supervisor = ServiceSupervisor(
            service, max_restarts=0, backoff_base=0.0, seed=FAULT_SEED
        )
        client = LocalClient(service)
        client.tell("TELL Probe END")
        supervisor._on_fault(ServerError("synthetic durability fault"))
        supervisor.join()
        assert service.status == "read_only"
        snapshot = service.registry.snapshot("server.supervisor")
        assert snapshot["server.supervisor.read_only_degrades"] == 1
        assert snapshot["server.supervisor.state"] == 2
        assert client.ask("Known(Probe)")  # reads still serve
        with pytest.raises(ServerReadOnly):
            client.tell("TELL Refused IN SimpleClass END")
        service.close()

    def test_memory_backed_restart_replays_acked_log(self):
        """No WAL: the successor base is rebuilt from the exported
        acked commit log alone."""
        service = GKBMSService(ConceptBase())
        supervisor = ServiceSupervisor(
            service, backoff_base=0.0, seed=FAULT_SEED
        )
        client = LocalClient(service)
        client.tell("TELL Kept END")
        supervisor._on_fault(ServerError("synthetic durability fault"))
        supervisor.join()
        assert service.status == "serving"
        assert client.ask("Known(Kept)")
        service.close()

    def test_restarting_status_rejects_with_typed_error(self):
        service = GKBMSService(ConceptBase())
        client = LocalClient(service)
        service.begin_restart()
        assert service.status == "restarting"
        with pytest.raises(ServerRestarting):
            client.ask("Known(Anything)")
        client.ping()  # ping stays alive for liveness probes
        service.complete_restart(ConceptBase(registry=service.registry),
                                 service.pipeline.export_state())
        assert service.status == "serving"
        service.close()

    def test_begin_restart_fails_open_transactions(self):
        service = GKBMSService(ConceptBase())
        client = LocalClient(service)
        client.begin()
        client.tell("TELL Staged END")
        service.begin_restart()
        service.complete_restart(ConceptBase(registry=service.registry),
                                 service.pipeline.export_state())
        # The staging died with the quiesce: commit finds no open
        # transaction (typed), and the client can cleanly start over.
        from repro.errors import SessionError
        with pytest.raises(SessionError):
            client.commit()
        service.close()


class TestIdempotencyTokens:
    """Exactly-once at the pipeline and service level."""

    def test_same_token_applies_once(self):
        service = GKBMSService(ConceptBase())
        client = LocalClient(service)
        first = service.handle({
            "id": 1, "op": "tell", "session": client.session,
            "params": {"source": "TELL OnlyOnce END", "token": "tok-1"},
        })
        again = service.handle({
            "id": 2, "op": "tell", "session": client.session,
            "params": {"source": "TELL OnlyOnce END", "token": "tok-1"},
        })
        assert first["ok"] and again["ok"]
        assert again["result"]["idempotent"] is True
        assert again["result"]["commit_seq"] == \
            first["result"]["commit_seq"]
        log = service.pipeline.commit_log()
        assert sum(1 for entry in log
                   if any("OnlyOnce" in arg for _k, arg in entry[2])) == 1
        snapshot = service.registry.snapshot("server.commit")
        assert snapshot["server.commit.idempotent_hits"] >= 1
        service.close()

    def test_commit_token_survives_session_change(self):
        """The lost-ack scenario: the retry arrives on a brand-new
        session (reconnect) and still collects the original result."""
        service = GKBMSService(ConceptBase())
        first = LocalClient(service)
        first.begin()
        first.tell("TELL Committed END")
        result = first.commit_with_token("tok-reconnect")
        second = LocalClient(service)
        replay = second.commit_with_token("tok-reconnect")
        assert replay["idempotent"] is True
        assert replay["commit_seq"] == result["commit_seq"]
        service.close()

    def test_unacked_token_is_not_replayable(self):
        """A token only dedupes once its commit *acked*: before that
        there is nothing safe to return."""
        service = GKBMSService(ConceptBase())
        assert service.pipeline.token_result("never-seen") is None
        service.close()

    def test_token_results_are_bounded(self):
        from repro.server.pipeline import MAX_TOKEN_RESULTS
        service = GKBMSService(ConceptBase())
        pipeline = service.pipeline
        client = LocalClient(service)
        for n in range(3):
            service.handle({
                "id": n, "op": "tell", "session": client.session,
                "params": {"source": f"TELL Bound{n} END",
                           "token": f"tok-{n}"},
            })
        with pipeline._log_lock:
            assert len(pipeline._token_results) <= MAX_TOKEN_RESULTS
        service.close()

    def test_export_state_drops_unacked_commits(self):
        service = GKBMSService(ConceptBase())
        client = LocalClient(service)
        client.tell("TELL SimpleClass IN Class END")
        state = service.pipeline.export_state()
        assert state["commit_seq"] == state["acked_seq"]
        assert all(seq <= state["acked_seq"]
                   for seq, _sid, _ops in state["commit_log"])
        service.close()


class TestRetryPolicy:
    def test_backoff_is_seeded_and_capped(self):
        a = RetryPolicy(seed=7, base=0.01, cap=0.05, sleep=lambda _s: None)
        b = RetryPolicy(seed=7, base=0.01, cap=0.05, sleep=lambda _s: None)
        delays_a = [a.delay(n) for n in range(1, 8)]
        delays_b = [b.delay(n) for n in range(1, 8)]
        assert delays_a == delays_b
        assert all(0 < d <= 0.05 for d in delays_a)

    def test_min_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_overloaded_write_is_retried_with_token(self):
        """A shed tell retries under one token and lands exactly once."""
        service = GKBMSService(ConceptBase())
        client = LocalClient(
            service, retry=RetryPolicy(seed=1, sleep=lambda _s: None)
        )
        real_submit = service.pipeline.submit
        fails = {"left": 2}

        def flaky_submit(*args, **kwargs):
            if fails["left"] > 0:
                fails["left"] -= 1
                raise ServerOverloaded("synthetic shed")
            return real_submit(*args, **kwargs)

        service.pipeline.submit = flaky_submit
        result = client.tell("TELL Retried END")
        assert result["created"] >= 1
        assert client.retry.retries == 2
        log = service.pipeline.commit_log()
        assert sum(1 for entry in log
                   if any("Retried" in arg for _k, arg in entry[2])) == 1
        service.close()

    def test_untokened_write_never_retries(self):
        """Without a policy there is no token — a transient failure
        surfaces immediately rather than risking a double apply."""
        service = GKBMSService(ConceptBase())
        client = LocalClient(service)  # no retry policy

        def always_shed(*args, **kwargs):
            raise ServerOverloaded("synthetic shed")

        service.pipeline.submit = always_shed
        with pytest.raises(ServerOverloaded):
            client.tell("TELL Nope END")
        service.close()

    def test_reads_retry_without_tokens(self):
        service = GKBMSService(ConceptBase())
        client = LocalClient(
            service, retry=RetryPolicy(seed=1, sleep=lambda _s: None)
        )
        client.tell("TELL Probe END")
        real_handle = service.handle
        fails = {"left": 1}

        def flaky_handle(frame):
            if frame.get("op") == "ask" and fails["left"] > 0:
                fails["left"] -= 1
                from repro.server.protocol import error_response
                return error_response(
                    frame.get("id"), ServerRestarting("synthetic restart")
                )
            return real_handle(frame)

        service.handle = flaky_handle
        client._service = service
        assert client.ask("Known(Probe)")
        assert client.retry.retries == 1
        service.close()
