"""The README's wire-protocol op table is generated, not hand-kept.

``repro.server.protocol.render_op_table()`` is the single source of
truth: it is derived from the ``OPS`` registry (so a new op without a
summary fails at import), and this test pins the README copy to the
rendered output — add an op, re-render, paste, or this fails.
"""

import os

from repro.server.protocol import OPS, OP_SUMMARIES, render_op_table

README = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                      "README.md")


def test_readme_contains_the_rendered_op_table():
    with open(README, encoding="utf-8") as handle:
        readme = handle.read()
    assert render_op_table() in readme


def test_every_op_has_exactly_one_summary():
    assert set(OPS) == set(OP_SUMMARIES)
    assert len(OPS) == len(set(OPS))
    table = render_op_table()
    for op in OPS:
        assert f"| `{op}` |" in table
