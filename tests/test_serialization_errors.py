"""Error paths of the proposition serialisation and envelope layers.

Corrupt, truncated or hand-edited dump files must surface as *typed*
errors (:class:`~repro.errors.PersistenceError` for the container,
:class:`~repro.errors.PropositionError` for bad proposition content) —
never as raw ``KeyError``/``JSONDecodeError`` leaking implementation
detail, and never as silent misloads.
"""

import json

import pytest

from repro.atomicio import (
    atomic_write_json,
    decode_envelope,
    encode_envelope,
    read_checked_json,
)
from repro.errors import PersistenceError, PropositionError
from repro.propositions import PropositionProcessor
from repro.propositions.serialization import (
    dumps,
    load_from_file,
    load_processor,
    loads,
    proposition_from_json,
    save_to_file,
)


@pytest.fixture
def proc():
    p = PropositionProcessor()
    p.define_class("Doc")
    p.tell_individual("d1", in_class="Doc")
    p.tell_link("d1", "title", "Doc")
    return p


class TestDumpErrors:
    def test_malformed_json_is_a_persistence_error(self):
        with pytest.raises(PersistenceError):
            loads("{not json at all")

    def test_non_object_dump_rejected(self):
        with pytest.raises(PropositionError):
            load_processor([1, 2, 3])

    def test_unknown_format_version_rejected(self):
        with pytest.raises(PropositionError):
            load_processor({"format": 99, "propositions": []})

    def test_missing_propositions_list_rejected(self):
        with pytest.raises(PropositionError):
            load_processor({"format": 1})

    def test_proposition_must_be_an_object(self):
        with pytest.raises(PropositionError):
            proposition_from_json("d1")

    def test_proposition_missing_fields_named_in_error(self):
        with pytest.raises(PropositionError) as err:
            proposition_from_json({"pid": "d1", "source": "d1"})
        assert "label" in str(err.value)
        assert "destination" in str(err.value)

    def test_bad_time_point_rejected(self):
        data = {"pid": "d1", "source": "d1", "label": "d1",
                "destination": "d1",
                "time": {"start": ["oops"], "end": ["+inf"]}}
        with pytest.raises(PropositionError):
            proposition_from_json(data)

    def test_bad_interval_shape_rejected(self):
        data = {"pid": "d1", "source": "d1", "label": "d1",
                "destination": "d1", "time": ["not", "a", "dict"]}
        with pytest.raises(PropositionError):
            proposition_from_json(data)

    def test_roundtrip_still_works(self, proc):
        restored = loads(dumps(proc))
        assert restored.store.rows() == proc.store.rows()


class TestEnvelopeErrors:
    def test_tampered_payload_fails_checksum(self):
        data = encode_envelope("thing", {"value": 1})
        tampered = data.replace(b'"value": 1', b'"value": 2')
        assert tampered != data
        with pytest.raises(PersistenceError) as err:
            decode_envelope(tampered, "thing")
        assert "checksum" in str(err.value)

    def test_wrong_kind_rejected(self):
        data = encode_envelope("thing", {})
        with pytest.raises(PersistenceError) as err:
            decode_envelope(data, "other")
        assert "kind" in str(err.value)

    def test_unknown_version_rejected(self):
        data = encode_envelope("thing", {}, version=42)
        with pytest.raises(PersistenceError) as err:
            decode_envelope(data, "thing")
        assert "version" in str(err.value)

    def test_non_object_document_rejected(self):
        with pytest.raises(PersistenceError):
            decode_envelope(b"[1, 2]", "thing")

    def test_legacy_document_passthrough(self):
        legacy = json.dumps({"format": 1, "propositions": []}).encode()
        assert decode_envelope(legacy, "thing", allow_legacy=True) == {
            "format": 1, "propositions": [],
        }
        with pytest.raises(PersistenceError):
            decode_envelope(legacy, "thing")

    def test_missing_file_is_a_persistence_error(self, tmp_path):
        with pytest.raises(PersistenceError):
            read_checked_json(str(tmp_path / "absent.json"), "thing")


class TestDumpFiles:
    def test_save_load_roundtrip(self, proc, tmp_path):
        path = str(tmp_path / "dump.json")
        save_to_file(proc, path)
        restored = load_from_file(path)
        assert restored.store.rows() == proc.store.rows()

    def test_save_leaves_no_tmp_file(self, proc, tmp_path):
        path = str(tmp_path / "dump.json")
        save_to_file(proc, path)
        assert list(tmp_path.iterdir()) == [tmp_path / "dump.json"]

    def test_corrupt_dump_file_is_typed(self, proc, tmp_path):
        path = str(tmp_path / "dump.json")
        save_to_file(proc, path)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(PersistenceError):
            load_from_file(path)

    def test_legacy_dump_file_loads(self, proc, tmp_path):
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as handle:
            handle.write(dumps(proc))  # raw pre-envelope format
        restored = load_from_file(path)
        assert restored.store.rows() == proc.store.rows()

    def test_wrong_kind_file_rejected(self, proc, tmp_path):
        path = str(tmp_path / "other.json")
        atomic_write_json(path, "some-other-kind", {"format": 1})
        with pytest.raises(PersistenceError):
            load_from_file(path)
