"""Tests for the transaction-mapping assistant and decision atomicity
(failure injection)."""

import pytest

from repro.errors import DecisionError, NotApplicableError
from repro.core import DecisionClass, ToolSpec
from repro.scenario import MeetingScenario


@pytest.fixture
def mapped():
    scenario = MeetingScenario().run_to_fig_2_2()
    scenario.normalize()
    return scenario


class TestTransactionMapping:
    def test_generates_skeleton_for_all_implementing_relations(self, mapped):
        gkbms = mapped.gkbms
        record = gkbms.execute(
            "DecMapTransaction", {"transaction": "SendInvitation"},
            tool="TransactionMapper",
        )
        assert record.outputs == {"program": ["TSendInvitation"]}
        txn = gkbms.module.transactions["TSendInvitation"]
        assert txn.parameters == [("inv", "Invitations")]
        # normalisation split: both halves get an insert
        assert sorted(txn.touched_relations()) == [
            "InvReceivRel", "InvitationRel2",
        ]

    def test_requires_mapped_hierarchy(self):
        scenario = MeetingScenario().setup()
        with pytest.raises(DecisionError):
            scenario.gkbms.execute(
                "DecMapTransaction", {"transaction": "SendInvitation"},
                tool="TransactionMapper",
            )

    def test_unknown_transaction_class(self, mapped):
        with pytest.raises(NotApplicableError):
            mapped.gkbms.execute(
                "DecMapTransaction", {"transaction": "Nothing"},
                tool="TransactionMapper",
            )

    def test_program_documented_as_design_object(self, mapped):
        gkbms = mapped.gkbms
        gkbms.execute(
            "DecMapTransaction", {"transaction": "SendInvitation"},
            tool="TransactionMapper",
        )
        proc = gkbms.processor
        assert proc.is_instance_of("TSendInvitation", "DBPL_Transaction")
        assert gkbms.mapped_from("TSendInvitation") == "SendInvitation"

    def test_key_substitution_adapts_transactions(self, mapped):
        gkbms = mapped.gkbms
        gkbms.execute(
            "DecMapTransaction", {"transaction": "SendInvitation"},
            tool="TransactionMapper",
        )
        mapped.substitute_key()
        txn = gkbms.module.transactions["TSendInvitation"]
        details = [op.detail for op in txn.operations]
        assert all("paperkey" not in d for d in details)
        assert any("date, author" in d for d in details)

    def test_backtracking_removes_program(self, mapped):
        gkbms = mapped.gkbms
        record = gkbms.execute(
            "DecMapTransaction", {"transaction": "SendInvitation"},
            tool="TransactionMapper",
        )
        gkbms.backtracker.retract(record.did)
        assert "TSendInvitation" not in gkbms.module.transactions
        assert not gkbms.processor.exists("TSendInvitation")


class TestDecisionAtomicity:
    """A failing decision must leave no trace — knowledge base and
    artefact stores roll back together."""

    def _register_exploding_tool(self, gkbms, explode_after_artifacts=True):
        def apply(g, inputs, params):
            if explode_after_artifacts:
                from repro.languages.dbpl.ast import Field, RelationDecl

                g.add_artifact(
                    RelationDecl("HalfDoneRel", [Field("k")], key=("k",)),
                    kb_class="DBPL_Rel",
                )
            raise RuntimeError("tool crashed mid-way")

        gkbms.tools.register(ToolSpec(name="Exploder", apply=apply))
        gkbms.decisions.register(DecisionClass(
            name="DecExplode",
            inputs=(("hierarchy", "TDL_EntityClass"),),
            outputs=(("relations", "DBPL_Rel"),),
            tools=("Exploder",),
        ))

    def test_kb_rolled_back_on_tool_failure(self, mapped):
        gkbms = mapped.gkbms
        self._register_exploding_tool(gkbms)
        kb_size = len(gkbms.processor)
        with pytest.raises(RuntimeError):
            gkbms.execute("DecExplode", {"hierarchy": "Papers"},
                          tool="Exploder")
        assert len(gkbms.processor) == kb_size
        assert not gkbms.processor.exists("HalfDoneRel")

    def test_module_rolled_back_on_tool_failure(self, mapped):
        gkbms = mapped.gkbms
        self._register_exploding_tool(gkbms)
        module_names = sorted(gkbms.module.names())
        with pytest.raises(RuntimeError):
            gkbms.execute("DecExplode", {"hierarchy": "Papers"},
                          tool="Exploder")
        assert sorted(gkbms.module.names()) == module_names

    def test_no_decision_recorded_on_failure(self, mapped):
        gkbms = mapped.gkbms
        self._register_exploding_tool(gkbms)
        history = list(gkbms.decisions.order)
        with pytest.raises(RuntimeError):
            gkbms.execute("DecExplode", {"hierarchy": "Papers"},
                          tool="Exploder")
        assert gkbms.decisions.order == history

    def test_postcondition_failure_rolls_back(self, mapped):
        gkbms = mapped.gkbms
        gkbms.decisions.register(DecisionClass(
            name="DecNeverRight",
            inputs=(("hierarchy", "TDL_EntityClass"),),
            outputs=(("relations", "DBPL_Rel"),),
            postcondition="hierarchy = SomethingElse",
            tools=("MoveDownMapper",),
        ))
        kb_size = len(gkbms.processor)
        module_names = sorted(gkbms.module.names())
        with pytest.raises(DecisionError):
            gkbms.execute(
                "DecNeverRight", {"hierarchy": "Persons"},
                tool="MoveDownMapper",
                params={"names": {"Persons": "PersonsRel"}},
            )
        assert len(gkbms.processor) == kb_size
        assert sorted(gkbms.module.names()) == module_names

    def test_successful_decision_after_failure(self, mapped):
        """The system remains fully usable after a rolled-back failure."""
        gkbms = mapped.gkbms
        self._register_exploding_tool(gkbms)
        with pytest.raises(RuntimeError):
            gkbms.execute("DecExplode", {"hierarchy": "Papers"},
                          tool="Exploder")
        record = gkbms.execute(
            "DecMapTransaction", {"transaction": "SendInvitation"},
            tool="TransactionMapper",
        )
        assert record.outputs["program"] == ["TSendInvitation"]
