"""Closure-cache correctness: cached == uncached on every edge.

The epoch-validated memo caches of the proposition processor must be
observationally invisible: a processor with ``optimise=True`` answers
every closure query exactly like the ``optimise=False`` ablation, across
creates, retracts, validity clipping, telling rollback and workspace
(de)activation.  The randomized driver replays identical operation
sequences against both and compares the full query surface after every
step.
"""

import random

import pytest

from repro.errors import AxiomViolation, PropositionError
from repro.propositions import PropositionProcessor, WorkspaceStore
from repro.propositions.axioms import KERNEL_PIDS
from repro.timecalc.interval import Interval


def make_pair():
    return PropositionProcessor(optimise=True), PropositionProcessor(optimise=False)


def assert_same_answers(cached, uncached, names):
    """The whole closure-query surface agrees on the given names."""
    for name in names:
        assert cached.generalizations(name) == uncached.generalizations(name)
        assert cached.specializations(name) == uncached.specializations(name)
        assert cached.classes_of(name) == uncached.classes_of(name)
        assert cached.is_class(name) == uncached.is_class(name)
        assert cached.instances_of(name) == uncached.instances_of(name)
        assert cached.instances_of(name, direct=True) == uncached.instances_of(
            name, direct=True
        )
        assert ([p.pid for p in cached.attribute_classes(name)]
                == [p.pid for p in uncached.attribute_classes(name)])
    for name in names[:4]:
        for cls in names[:4]:
            assert cached.is_instance_of(name, cls) == uncached.is_instance_of(
                name, cls
            )


# ---------------------------------------------------------------------------
# Directed invalidation edges
# ---------------------------------------------------------------------------


class TestInvalidationEdges:
    def test_create_invalidates_isa_closure(self):
        proc = PropositionProcessor()
        proc.define_class("A")
        proc.define_class("B")
        assert "A" not in proc.generalizations("B")  # warm the cache
        proc.tell_isa("B", "A")
        assert "A" in proc.generalizations("B")
        assert "B" in proc.specializations("A")

    def test_retract_invalidates_closures(self):
        proc = PropositionProcessor()
        proc.define_class("A")
        proc.define_class("B")
        link = proc.tell_isa("B", "A")
        proc.tell_individual("x", in_class="B")
        assert "x" in proc.instances_of("A")  # warm
        assert "A" in proc.classes_of("x")
        proc.retract(link.pid)
        assert "x" not in proc.instances_of("A")
        assert "A" not in proc.classes_of("x")

    def test_attribute_tell_preserves_isa_cache(self):
        """Fine granularity: a plain attribute create keeps the
        specialization closures warm (no invalidation, only hits)."""
        proc = PropositionProcessor()
        proc.define_class("A")
        proc.define_class("B", isa=["A"])
        proc.tell_individual("x", in_class="B")
        proc.tell_individual("y", in_class="B")
        proc.generalizations("B")
        baseline = dict(proc.stats)
        proc.tell_link("x", "likes", "y")
        proc.generalizations("B")
        assert proc.stats["closure_invalidations"] == baseline["closure_invalidations"]
        assert proc.stats["closure_hits"] > baseline["closure_hits"]

    def test_instanceof_tell_preserves_isa_cache_but_not_classes(self):
        """Without incremental maintenance (the PR 2 baseline) an
        instanceof tell rebuilds the classification families while the
        isa family stays warm."""
        proc = PropositionProcessor(incremental=False)
        proc.define_class("A")
        proc.tell_individual("x")
        proc.generalizations("A")          # warm isa family
        proc.classes_of("x")               # warm classification family
        invalidations = proc.stats["closure_invalidations"]
        hits = proc.stats["closure_hits"]
        proc.tell_instanceof("x", "A")     # classification change only
        assert "A" in proc.classes_of("x")
        proc.generalizations("A")
        # the isa family survived (served from cache) ...
        assert proc.stats["closure_hits"] > hits
        # ... while the classification family was rebuilt.
        assert proc.stats["closure_invalidations"] > invalidations

    def test_instanceof_tell_delta_maintains_classes(self):
        """With incremental maintenance (the default) the same tell
        updates the classification caches in place: correct answers,
        zero invalidations, delta counters moving instead."""
        proc = PropositionProcessor()
        proc.define_class("A")
        proc.tell_individual("x")
        proc.generalizations("A")
        proc.classes_of("x")
        invalidations = proc.stats["closure_invalidations"]
        proc.tell_instanceof("x", "A")
        assert "A" in proc.classes_of("x")
        assert proc.stats["closure_invalidations"] == invalidations
        assert proc.stats["closure_delta_applied"] > 0

    def test_clip_validity_invalidates(self):
        proc = PropositionProcessor()
        proc.define_class("A")
        proc.tell_individual("x")
        link = proc.tell_instanceof("x", "A", time=Interval.since(0))
        assert "x" in proc.instances_of("A")  # warm
        proc.clip_validity(link.pid, 10)
        assert "x" in proc.instances_of("A")  # at=None unaffected
        assert "x" not in proc.instances_of("A", at=20)
        assert "x" in proc.instances_of("A", at=5)

    def test_rollback_invalidates(self):
        proc = PropositionProcessor()
        proc.define_class("A")
        proc.define_class("B")
        with pytest.raises(RuntimeError):
            with proc.telling():
                proc.tell_isa("B", "A")
                assert "A" in proc.generalizations("B")  # warm mid-telling
                raise RuntimeError("abort")
        assert "A" not in proc.generalizations("B")
        assert "B" not in proc.specializations("A")

    def test_workspace_deactivation_invalidates(self):
        store = WorkspaceStore()
        proc = PropositionProcessor(store=store)
        proc.define_class("A")
        store.add_workspace("scratch")
        store.set_current("scratch")
        proc.define_class("B", isa=["A"])
        proc.tell_individual("x", in_class="B")
        assert "x" in proc.instances_of("A")  # warm
        assert "A" in proc.generalizations("B")
        store.deactivate("scratch")
        assert "x" not in proc.instances_of("A")
        assert proc.generalizations("B") == {"B"}
        store.activate("scratch")
        assert "x" in proc.instances_of("A")
        assert "A" in proc.generalizations("B")

    def test_stats_count_hits_and_misses(self):
        proc = PropositionProcessor()
        proc.define_class("A")
        proc.define_class("B", isa=["A"])
        before = proc.stats["closure_misses"]
        proc.generalizations("B")
        proc.generalizations("B")
        proc.generalizations("B")
        assert proc.stats["closure_misses"] >= before + 1
        assert proc.stats["closure_hits"] >= 2

    def test_unoptimised_processor_never_caches(self):
        proc = PropositionProcessor(optimise=False)
        proc.define_class("A")
        proc.generalizations("A")
        proc.generalizations("A")
        assert proc.stats["closure_hits"] == 0
        assert proc.stats["closure_misses"] == 0


# ---------------------------------------------------------------------------
# Randomized equivalence
# ---------------------------------------------------------------------------


def apply_to_both(pair, op):
    """Run ``op`` against both processors; outcomes must agree."""
    outcomes = []
    for proc in pair:
        try:
            op(proc)
            outcomes.append(None)
        except (AxiomViolation, PropositionError) as exc:
            outcomes.append(type(exc))
    assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_randomized_tell_retract_equivalence(seed):
    rng = random.Random(seed)
    pair = make_pair()
    classes = []
    individuals = []
    retractable = []

    def new_class(proc, name, sups):
        proc.define_class(name, isa=sups)

    for step in range(60):
        roll = rng.random()
        if roll < 0.25 or not classes:
            name = f"C{step}"
            sups = rng.sample(classes, k=min(len(classes), rng.randrange(3)))
            apply_to_both(pair, lambda p: new_class(p, name, list(sups)))
            classes.append(name)
        elif roll < 0.45:
            name = f"i{step}"
            cls = rng.choice(classes)
            apply_to_both(pair, lambda p: p.tell_individual(name, in_class=cls))
            individuals.append(name)
        elif roll < 0.6 and len(classes) >= 2:
            sub, sup = rng.sample(classes, 2)
            apply_to_both(pair, lambda p: p.tell_isa(sub, sup))
        elif roll < 0.75 and len(individuals) >= 2:
            source, destination = rng.sample(individuals, 2)
            label = rng.choice(["likes", "knows", "owns"])
            pid = f"l{step}"
            apply_to_both(
                pair,
                lambda p: p.tell_link(source, label, destination, pid=pid),
            )
            retractable.append(pid)
        elif roll < 0.85 and retractable:
            victim = rng.choice(retractable)
            retractable.remove(victim)

            def retract(p):
                if victim in p.store:
                    removed = p.retract(victim)
                    assert all(r.pid not in KERNEL_PIDS for r in removed)

            apply_to_both(pair, retract)
        elif roll < 0.93 and individuals:
            victim = rng.choice(individuals)
            individuals.remove(victim)
            apply_to_both(
                pair, lambda p: p.retract(victim) if victim in p.store else None
            )
        else:
            # telling rollback: created propositions must vanish again
            name = f"r{step}"

            def failed_telling(p):
                try:
                    with p.telling():
                        p.tell_individual(name, in_class=rng.choice(classes)
                                          if classes else None)
                        raise KeyboardInterrupt  # any non-axiom error
                except KeyboardInterrupt:
                    pass

            seed_state = rng.getstate()
            for proc in pair:
                rng.setstate(seed_state)  # same random class for both
                failed_telling(proc)
            assert name not in pair[0].store and name not in pair[1].store
        if step % 10 == 0:
            sample = (classes + individuals)[-8:]
            assert_same_answers(pair[0], pair[1], sample)

    cached, uncached = pair
    assert {p.pid for p in cached.store} == {p.pid for p in uncached.store}
    assert_same_answers(cached, uncached, classes[-10:] + individuals[-10:])
    assert cached.summary() == uncached.summary()


@pytest.mark.parametrize("seed", [3, 11])
def test_randomized_clip_and_retract_equivalence(seed):
    rng = random.Random(seed)
    pair = make_pair()
    for proc in pair:
        proc.define_class("Doc")
        proc.define_class("Note", isa=["Doc"])
    links = []
    for index in range(20):
        name = f"d{index}"
        cls = rng.choice(["Doc", "Note"])
        apply_to_both(
            pair,
            lambda p: p.tell_individual(
                name, in_class=cls, time=Interval.since(index)
            ),
        )
        links.append(f"p{index}")
    for _ in range(12):
        if rng.random() < 0.5 and links:
            victim = rng.choice(links)

            def clip(p):
                for prop in list(p.store):
                    if prop.is_instanceof and prop.source == victim.replace("p", "d"):
                        try:
                            p.clip_validity(prop.pid, rng.randrange(5, 40))
                        except PropositionError:
                            pass

            state = rng.getstate()
            for proc in pair:
                rng.setstate(state)
                clip(proc)
        at = rng.randrange(0, 40)
        assert (pair[0].instances_of("Doc", at=at)
                == pair[1].instances_of("Doc", at=at))
        assert pair[0].instances_of("Doc") == pair[1].instances_of("Doc")
