"""Delta maintenance of the materialised fixpoint (PR 7 tentpole).

Unit behaviour of :class:`MaterializedFixpoint` — counting maintenance
for acyclic strata, DRed for recursive ones, the negation fallback —
plus the :class:`RuleEngine` wiring that keeps the IDB warm across
knowledge-base epochs.  Every maintained database is compared against
the from-scratch :func:`evaluate` oracle on identical inputs.
"""

from repro.deduction import parse_rule
from repro.deduction.kb import RuleEngine
from repro.deduction.seminaive import Database, MaterializedFixpoint, evaluate
from repro.propositions import PropositionProcessor


def make_fixpoint(rule_texts, facts):
    rules = [parse_rule(text) for text in rule_texts]
    edb = Database({pred: set(rows) for pred, rows in facts.items()})
    return MaterializedFixpoint(rules, edb)


def oracle_db(rule_texts, facts):
    rules = [parse_rule(text) for text in rule_texts]
    edb = Database({pred: set(rows) for pred, rows in facts.items()})
    return evaluate(rules, edb)


def assert_identical(maintained, oracle):
    predicates = set(maintained.predicates()) | set(oracle.predicates())
    for pred in predicates:
        assert maintained.rows(pred) == oracle.rows(pred), pred


def apply_and_check(fixpoint, rule_texts, facts, added=None, removed=None):
    """Apply the delta to both the fixpoint and the plain fact dict,
    then compare against a from-scratch rebuild."""
    added = added or {}
    removed = removed or {}
    for pred, rows in removed.items():
        facts[pred] = set(facts.get(pred, set())) - set(rows)
    for pred, rows in added.items():
        facts[pred] = set(facts.get(pred, set())) | set(rows)
    net_added, net_removed = fixpoint.apply_delta(added, removed)
    assert_identical(fixpoint.database(), oracle_db(rule_texts, facts))
    return net_added, net_removed


TC_RULES = [
    "path(?x, ?y) :- edge(?x, ?y).",
    "path(?x, ?z) :- edge(?x, ?y), path(?y, ?z).",
]


class TestBuild:
    def test_initial_build_matches_evaluate(self):
        facts = {"edge": {("a", "b"), ("b", "c"), ("c", "d")}}
        fixpoint = make_fixpoint(TC_RULES, facts)
        assert_identical(fixpoint.database(), oracle_db(TC_RULES, facts))
        assert fixpoint.database().contains("path", ("a", "d"))

    def test_acyclic_stratum_is_counting_maintained(self):
        rules = ["p(?x) :- a(?x).", "p(?x) :- b(?x).", "q(?x) :- p(?x)."]
        facts = {"a": {("1",)}, "b": set()}
        fixpoint = make_fixpoint(rules, facts)
        apply_and_check(fixpoint, rules, facts, added={"b": {("1",)}})
        # the counting path moved, the DRed path did not
        assert fixpoint.stats["count_increments"] > 0
        assert fixpoint.stats["overdeletions"] == 0

    def test_recursive_stratum_is_dred_maintained(self):
        facts = {"edge": {("a", "b"), ("b", "c")}}
        fixpoint = make_fixpoint(TC_RULES, facts)
        apply_and_check(fixpoint, TC_RULES, facts,
                        removed={"edge": {("b", "c")}})
        assert fixpoint.stats["overdeletions"] > 0
        assert fixpoint.stats["count_increments"] == 0


class TestCountingMaintenance:
    RULES = ["p(?x) :- a(?x).", "p(?x) :- b(?x)."]

    def test_shared_support_survives_single_removal(self):
        facts = {"a": {("x",)}, "b": {("x",)}}
        fixpoint = make_fixpoint(self.RULES, facts)
        apply_and_check(fixpoint, self.RULES, facts, removed={"a": {("x",)}})
        # still derived through b
        assert fixpoint.database().contains("p", ("x",))
        apply_and_check(fixpoint, self.RULES, facts, removed={"b": {("x",)}})
        assert not fixpoint.database().contains("p", ("x",))
        assert fixpoint.stats["count_decrements"] >= 2

    def test_join_rule_delta(self):
        rules = ["grand(?x, ?z) :- parent(?x, ?y), parent(?y, ?z)."]
        facts = {"parent": {("a", "b"), ("b", "c")}}
        fixpoint = make_fixpoint(rules, facts)
        assert fixpoint.database().contains("grand", ("a", "c"))
        apply_and_check(fixpoint, rules, facts,
                        added={"parent": {("c", "d")}},
                        removed={"parent": {("a", "b")}})
        db = fixpoint.database()
        assert db.contains("grand", ("b", "d"))
        assert not db.contains("grand", ("a", "c"))

    def test_edb_row_also_derived_keeps_presence(self):
        rules = ["p(?x) :- a(?x)."]
        facts = {"a": {("x",)}, "p": {("x",)}}
        fixpoint = make_fixpoint(rules, facts)
        # retract the EDB assertion: the derivation keeps the fact alive
        apply_and_check(fixpoint, rules, facts, removed={"p": {("x",)}})
        assert fixpoint.database().contains("p", ("x",))
        # retract the support: now it disappears
        apply_and_check(fixpoint, rules, facts, removed={"a": {("x",)}})
        assert not fixpoint.database().contains("p", ("x",))


class TestDRedMaintenance:
    def test_alternate_path_rederives(self):
        facts = {"edge": {("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")}}
        fixpoint = make_fixpoint(TC_RULES, facts)
        apply_and_check(fixpoint, TC_RULES, facts,
                        removed={"edge": {("a", "b")}})
        # (a, d) was overdeleted but rederived through c
        assert fixpoint.database().contains("path", ("a", "d"))
        assert fixpoint.stats["rederivations"] > 0

    def test_doom_wave_removes_downstream(self):
        chain = {("n%d" % i, "n%d" % (i + 1)) for i in range(6)}
        facts = {"edge": set(chain)}
        fixpoint = make_fixpoint(TC_RULES, facts)
        apply_and_check(fixpoint, TC_RULES, facts,
                        removed={"edge": {("n2", "n3")}})
        db = fixpoint.database()
        assert not db.contains("path", ("n0", "n5"))
        assert db.contains("path", ("n0", "n2"))
        assert db.contains("path", ("n3", "n5"))

    def test_insertion_propagates_semi_naive(self):
        facts = {"edge": {("a", "b"), ("c", "d")}}
        fixpoint = make_fixpoint(TC_RULES, facts)
        apply_and_check(fixpoint, TC_RULES, facts,
                        added={"edge": {("b", "c")}})
        assert fixpoint.database().contains("path", ("a", "d"))

    def test_edb_asserted_path_survives_overdeletion(self):
        # path(a,c) is both EDB-asserted and derived; dropping the edges
        # must not remove the asserted row, nor propagate a doom wave
        # through it.
        facts = {"edge": {("a", "b"), ("b", "c")},
                 "path": {("a", "c")}}
        fixpoint = make_fixpoint(TC_RULES, facts)
        apply_and_check(fixpoint, TC_RULES, facts,
                        removed={"edge": {("a", "b")}})
        assert fixpoint.database().contains("path", ("a", "c"))
        assert not fixpoint.database().contains("path", ("a", "b"))


class TestNegationFallback:
    RULES = [
        "linked(?x) :- edge(?x, ?y).",
        "isolated(?x) :- node(?x), not linked(?x).",
    ]

    def test_delta_on_negated_pred_falls_back(self):
        facts = {"node": {("a",), ("b",)}, "edge": {("a", "b")}}
        fixpoint = make_fixpoint(self.RULES, facts)
        assert fixpoint.database().contains("isolated", ("b",))
        before = fixpoint.stats["delta_fallbacks"]
        apply_and_check(fixpoint, self.RULES, facts,
                        added={"edge": {("b", "a")}})
        assert not fixpoint.database().contains("isolated", ("b",))
        assert fixpoint.stats["delta_fallbacks"] > before

    def test_delta_below_negation_still_incremental(self):
        facts = {"node": {("a",), ("b",)}, "edge": {("a", "b")}}
        fixpoint = make_fixpoint(self.RULES, facts)
        before = fixpoint.stats["delta_fallbacks"]
        # node is never negated: adding one maintains incrementally
        apply_and_check(fixpoint, self.RULES, facts,
                        added={"node": {("c",)}})
        assert fixpoint.database().contains("isolated", ("c",))
        assert fixpoint.stats["delta_fallbacks"] == before


class TestNetDelta:
    def test_returns_exact_difference(self):
        facts = {"edge": {("a", "b")}}
        fixpoint = make_fixpoint(TC_RULES, facts)
        before = {p: fixpoint.database().rows(p)
                  for p in fixpoint.database().predicates()}
        added, removed = fixpoint.apply_delta({"edge": {("b", "c")}}, {})
        after_db = fixpoint.database()
        after = {p: after_db.rows(p) for p in after_db.predicates()}
        for pred in set(before) | set(after):
            gained = after.get(pred, frozenset()) - before.get(pred, frozenset())
            lost = before.get(pred, frozenset()) - after.get(pred, frozenset())
            assert added.get(pred, set()) == gained
            assert removed.get(pred, set()) == lost

    def test_same_batch_flip_cancels(self):
        facts = {"edge": {("a", "b")}}
        fixpoint = make_fixpoint(TC_RULES, facts)
        added, removed = fixpoint.apply_delta(
            {"edge": {("a", "b")}}, {"edge": {("a", "b")}}
        )
        assert not any(added.values())
        assert not any(removed.values())
        assert fixpoint.database().contains("path", ("a", "b"))


class TestRuleEngineWiring:
    def make_engine(self, incremental=True):
        proc = PropositionProcessor()
        proc.define_class("Person")
        engine = RuleEngine(proc, incremental=incremental)
        engine.add_rule(
            "attr(?x, colleague, ?y) :- attr(?x, works_with, ?y)."
        )
        return proc, engine

    def test_materialise_then_refresh_not_rebuild(self):
        proc, engine = self.make_engine()
        proc.tell_individual("ann", in_class="Person")
        proc.tell_individual("bob", in_class="Person")
        engine.materialise()
        assert engine.stats["materialisations"] == 1
        proc.tell_link("ann", "works_with", "bob")
        idb = engine.materialise()
        assert idb.contains("attr", ("ann", "colleague", "bob"))
        assert engine.stats["materialisations"] == 1  # no rebuild
        assert engine.stats["idb_refreshes"] == 1
        assert engine.stats["delta_applies"] >= 1

    def test_apply_delta_entry_point(self):
        proc, engine = self.make_engine()
        proc.tell_individual("ann", in_class="Person")
        proc.tell_individual("bob", in_class="Person")
        engine.materialise()
        link = proc.tell_link("ann", "works_with", "bob")
        idb = engine.apply_delta(added=[link])
        assert idb.contains("attr", ("ann", "colleague", "bob"))
        removed = proc.retract(link.pid)
        idb = engine.apply_delta(removed=removed)
        assert not idb.contains("attr", ("ann", "colleague", "bob"))

    def test_incremental_matches_rebuild_engine(self):
        proc_a, engine_a = self.make_engine(incremental=True)
        proc_b, engine_b = self.make_engine(incremental=False)
        for proc in (proc_a, proc_b):
            proc.tell_individual("ann", in_class="Person")
            proc.tell_individual("bob", in_class="Person")
            proc.tell_individual("eve", in_class="Person")
        for engine in (engine_a, engine_b):
            engine.materialise()
        for proc in (proc_a, proc_b):
            proc.tell_link("ann", "works_with", "bob")
            proc.tell_link("bob", "works_with", "eve")
        for proc, engine in ((proc_a, engine_a), (proc_b, engine_b)):
            engine.materialise()
        db_a, db_b = engine_a.materialise(), engine_b.materialise()
        for pred in set(db_a.predicates()) | set(db_b.predicates()):
            assert db_a.rows(pred) == db_b.rows(pred), pred

    def test_rule_change_forces_rebuild(self):
        proc, engine = self.make_engine()
        proc.tell_individual("ann", in_class="Person")
        engine.materialise()
        engine.add_rule("attr(?x, peer, ?y) :- attr(?x, colleague, ?y).",
                        name="peers")
        engine.materialise()
        assert engine.stats["materialisations"] == 2
