"""Tests for frames, the object transformer (fig 3-2) and the
relational view."""

import pytest

from repro.errors import PropositionError
from repro.objects import ObjectProcessor, RelationalView, parse_frame
from repro.objects.frame import parse_frames


@pytest.fixture
def op():
    processor = ObjectProcessor()
    processor.propositions.define_class("TDL_EntityClass", level="MetaClass")
    processor.tell("TELL Paper IN TDL_EntityClass END")
    processor.tell("TELL Person IN TDL_EntityClass END")
    processor.tell(
        """
        TELL Invitation IN TDL_EntityClass ISA Paper WITH
          attribute sender : Person
          attribute receiver : Person
        END
        """
    )
    return processor


class TestFrameParsing:
    def test_one_line_frame(self):
        frame = parse_frame("TELL Paper IN TDL_EntityClass END")
        assert frame.name == "Paper"
        assert frame.in_classes == ["TDL_EntityClass"]

    def test_full_frame(self):
        frame = parse_frame(
            """
            TELL Invitation IN TDL_EntityClass ISA Paper WITH
              attribute sender : Person
            END
            """
        )
        assert frame.isa == ["Paper"]
        assert frame.attributes[0].label == "sender"
        assert frame.attributes[0].target == "Person"

    def test_multiple_classifications(self):
        frame = parse_frame("TELL x IN A, B ISA C, D END")
        assert frame.in_classes == ["A", "B"]
        assert frame.isa == ["C", "D"]

    def test_set_valued_attribute_as_repeated_lines(self):
        frame = parse_frame(
            """
            TELL inv1 IN Invitation WITH
              receiver receiver : ann
              receiver receiver : eva
            END
            """
        )
        assert frame.values("receiver") == ["ann", "eva"]

    def test_render_roundtrip(self):
        original = parse_frame(
            """
            TELL Invitation IN TDL_EntityClass ISA Paper WITH
              attribute sender : Person
            END
            """
        )
        assert parse_frame(original.render()).attributes == original.attributes

    def test_parse_frames_script(self):
        frames = parse_frames(
            "TELL a END\nTELL b IN Class END\n"
        )
        assert [f.name for f in frames] == ["a", "b"]

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "TELL x",
            "TELL x WITH\n  broken line\nEND",
            "x IN y END",
            "TELL x IN y\n  a b : c\nEND",  # attributes without WITH
        ],
    )
    def test_bad_frames(self, bad):
        with pytest.raises(PropositionError):
            parse_frame(bad)


class TestTransformer:
    def test_fig_3_2_network(self, op):
        """The fig 3-2 propositions all exist after telling Invitation."""
        proc = op.propositions
        assert proc.is_instance_of("Invitation", "TDL_EntityClass")
        assert "Paper" in proc.generalizations("Invitation")
        sender = proc.attributes_of("Invitation", label="sender")
        assert len(sender) == 1
        assert sender[0].destination == "Person"
        # the sender link is classified under the omega Attribute class
        assert "Attribute" in proc.classification_of_link(sender[0].pid)

    def test_instance_attribute_classified_under_class_attribute(self, op):
        op.tell("TELL bob IN Person END")
        op.tell(
            """
            TELL inv1 IN Invitation WITH
              attribute sender : bob
            END
            """
        )
        proc = op.propositions
        links = proc.attributes_of("inv1", label="sender")
        assert len(links) == 1
        classes = proc.classification_of_link(links[0].pid)
        # default category 'attribute' resolves by label match to the
        # class-level sender attribute
        assert any("sender" in c for c in classes)

    def test_ask_reconstructs_frame(self, op):
        frame = op.ask("Invitation")
        assert frame.in_classes == ["TDL_EntityClass"]
        assert frame.isa == ["Paper"]
        assert {d.label for d in frame.attributes} == {"receiver", "sender"}

    def test_roundtrip_equal(self, op):
        assert op.transformer.roundtrip_equal(op.ask("Invitation"))

    def test_ask_unknown_object(self, op):
        with pytest.raises(PropositionError):
            op.ask("Ghost")

    def test_untell_removes_object(self, op):
        op.tell("TELL bob IN Person END")
        op.untell("bob")
        assert not op.exists("bob")

    def test_explicit_category(self, op):
        op.tell("TELL bob IN Person END")
        op.tell(
            """
            TELL inv2 IN Invitation WITH
              sender sender : bob
            END
            """
        )
        links = op.propositions.attributes_of("inv2", label="sender")
        assert "Invitation.sender" in op.propositions.classification_of_link(
            links[0].pid
        )

    def test_unknown_category_rejected(self, op):
        op.tell("TELL bob IN Person END")
        with pytest.raises(PropositionError):
            op.tell(
                """
                TELL inv3 IN Invitation WITH
                  nosuchcategory x : bob
                END
                """
            )


class TestObjectProcessorQueries:
    def test_instances_and_classes(self, op):
        op.tell("TELL inv1 IN Invitation END")
        assert op.instances("Paper") == ["inv1"]
        assert "Invitation" in op.classes("inv1")

    def test_attribute_values(self, op):
        op.tell("TELL ann IN Person END")
        op.tell("TELL eva IN Person END")
        op.tell(
            """
            TELL inv1 IN Invitation WITH
              receiver receiver : ann
              receiver receiver : eva
            END
            """
        )
        assert op.attribute_values("inv1", "receiver") == ["ann", "eva"]

    def test_attribute_dict(self, op):
        op.tell("TELL bob IN Person END")
        op.tell(
            """
            TELL inv1 IN Invitation WITH
              sender sender : bob
            END
            """
        )
        assert op.attribute_dict("inv1") == {"sender": ["bob"]}

    def test_objects_in(self, op):
        op.tell("TELL inv1 IN Invitation END")
        op.tell("TELL bob IN Person END")
        assert op.objects_in(["Paper", "Person"]) == ["bob", "inv1"]


class TestRelationalView:
    def test_schema(self, op):
        view = RelationalView(op.propositions)
        schema = view.schema("Invitation")
        assert schema.columns == ("receiver", "sender")
        assert schema.heading == ("object", "receiver", "sender")

    def test_rows(self, op):
        op.tell("TELL bob IN Person END")
        op.tell(
            """
            TELL inv1 IN Invitation WITH
              sender sender : bob
            END
            """
        )
        view = RelationalView(op.propositions)
        rows = view.rows("Invitation")
        assert rows == [("inv1", frozenset(), frozenset({"bob"}))]

    def test_select_and_project(self, op):
        op.tell("TELL bob IN Person END")
        op.tell("TELL inv1 IN Invitation END")
        op.tell(
            """
            TELL inv2 IN Invitation WITH
              sender sender : bob
            END
            """
        )
        view = RelationalView(op.propositions)
        chosen = view.select("Invitation", lambda cols: "bob" in cols["sender"])
        assert [row[0] for row in chosen] == ["inv2"]
        projected = view.project("Invitation", ["sender"])
        assert frozenset({"bob"}) in [p[0] for p in projected]

    def test_project_unknown_column(self, op):
        view = RelationalView(op.propositions)
        with pytest.raises(PropositionError):
            view.project("Invitation", ["colour"])

    def test_join(self, op):
        op.tell("TELL bob IN Person END")
        op.tell(
            """
            TELL inv1 IN Invitation WITH
              sender sender : bob
            END
            """
        )
        view = RelationalView(op.propositions)
        assert view.join("Invitation", "sender", "Person") == [("inv1", "bob")]

    def test_schema_of_non_class(self, op):
        op.tell("TELL bob IN Person END")
        view = RelationalView(op.propositions)
        with pytest.raises(PropositionError):
            view.schema("bob")

    def test_deduced_values_in_view(self, op):
        from repro.deduction import RuleEngine

        op.tell("TELL bob IN Person END")
        op.tell(
            """
            TELL inv1 IN Invitation WITH
              sender sender : bob
            END
            """
        )
        engine = RuleEngine(op.propositions)
        engine.add_rule(
            "attr(?x, receiver, ?y) :- attr(?x, sender, ?y).",
            name="sender_receives_copy", document=False,
        )
        engine.install_hook()
        view = RelationalView(op.propositions)
        rows = view.rows("Invitation")
        assert rows == [("inv1", frozenset({"bob"}), frozenset({"bob"}))]
