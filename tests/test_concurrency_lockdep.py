"""PR 6 — the runtime lockdep sanitizer and timed ReadWriteLock.

Three layers:

- :class:`LockDep` as a pure graph (ABBA detection without any real
  deadlock, read→write upgrade, reentrancy, install/restore isolation);
- the tracked primitives and the :class:`ReadWriteLock` ``timeout``
  contract (typed :class:`LockTimeout`, the timed-out-writer
  ``notify_all`` regression, service deadline wiring);
- the ISSUE acceptance run: the seeded 8-thread server stress under
  the sanitizer, asserting **zero** cycles and live metric export.
"""

import threading

import pytest

from repro.analysis.concurrency import lockdep
from repro.analysis.concurrency.lockdep import (
    LockDep,
    TrackedCondition,
    TrackedLock,
    TrackedRLock,
    TrackedReadWriteLock,
)
from repro.errors import LockTimeout, ServerError
from repro.obs.metrics import MetricsRegistry
from repro.scenario.workload import ConcurrentLoadGenerator
from repro.server.client import LocalClient
from repro.server.locks import ReadWriteLock
from repro.server.protocol import exception_for
from repro.server.service import GKBMSService

THREADS = 8
OPS_PER_THREAD = 30


@pytest.fixture
def disarmed(monkeypatch):
    """Force the sanitizer off regardless of CI's REPRO_LOCKDEP."""
    monkeypatch.setenv(lockdep.ENV_FLAG, "0")
    restore = lockdep.install(None)
    yield
    restore()


# ---------------------------------------------------------------------------
# the graph: ABBA without a hang
# ---------------------------------------------------------------------------

class TestCycleDetection:
    def test_abba_is_reported_without_deadlocking(self, lockdep_manager):
        """The point of lockdep: both orders run *sequentially* — no real
        deadlock ever happens — yet the inversion is still reported."""
        a = TrackedLock(lockdep_manager, "test.a")
        b = TrackedLock(lockdep_manager, "test.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        cycles = lockdep_manager.cycles()
        assert len(cycles) == 1
        assert set(cycles[0].nodes) == {"test.a", "test.b"}
        assert "closed by thread" in cycles[0].witness

    def test_abba_report_renders_ccy020(self, lockdep_manager):
        a = TrackedLock(lockdep_manager, "test.a")
        b = TrackedLock(lockdep_manager, "test.b")
        with a, b:
            pass
        with b, a:
            pass
        report = lockdep_manager.report()
        assert len(report.by_code("CCY020")) == 1
        assert "1 cycle(s)" in report.by_code("CCY021")[0].message
        assert report.errors()

    def test_consistent_order_stays_clean(self, lockdep_manager):
        a = TrackedLock(lockdep_manager, "test.a")
        b = TrackedLock(lockdep_manager, "test.b")
        for _ in range(3):
            with a, b:
                pass
        assert lockdep_manager.cycles() == []
        assert lockdep_manager.edges() == [("test.a", "test.b")]

    def test_three_lock_ring_is_one_cycle(self, lockdep_manager):
        a = TrackedLock(lockdep_manager, "t.a")
        b = TrackedLock(lockdep_manager, "t.b")
        c = TrackedLock(lockdep_manager, "t.c")
        with a, b:
            pass
        with b, c:
            pass
        with c, a:
            pass
        cycles = lockdep_manager.cycles()
        assert len(cycles) == 1
        assert set(cycles[0].nodes) == {"t.a", "t.b", "t.c"}

    def test_duplicate_inversions_report_once(self, lockdep_manager):
        a = TrackedLock(lockdep_manager, "test.a")
        b = TrackedLock(lockdep_manager, "test.b")
        for _ in range(3):
            with a, b:
                pass
            with b, a:
                pass
        assert len(lockdep_manager.cycles()) == 1

    def test_edges_are_keyed_by_class_not_instance(self, lockdep_manager):
        """Two *different* instances of the same lock class inverted
        against a peer still close the cycle — the lockdep move."""
        s1 = TrackedLock(lockdep_manager, "session.lock")
        s2 = TrackedLock(lockdep_manager, "session.lock")
        p = TrackedLock(lockdep_manager, "pipeline.lock")
        with s1, p:
            pass
        with p, s2:
            pass
        assert len(lockdep_manager.cycles()) == 1

    def test_rlock_reentrancy_is_not_an_edge(self, lockdep_manager):
        r = TrackedRLock(lockdep_manager, "test.r")
        with r:
            with r:
                assert lockdep_manager.held_nodes() == ["test.r", "test.r"]
        assert lockdep_manager.edges() == []
        assert lockdep_manager.cycles() == []

    def test_read_write_upgrade_is_an_immediate_cycle(self, lockdep_manager):
        """A thread that *could* hold both sides of one rwlock instance
        has found a self-deadlock; the graph flags it on the second
        acquisition, no path search needed."""
        instance = object()
        lockdep_manager.note_acquired("svc.rw", instance, side="read")
        lockdep_manager.note_acquired("svc.rw", instance, side="write")
        cycles = lockdep_manager.cycles()
        assert len(cycles) == 1
        assert cycles[0].nodes == ("svc.rw:read", "svc.rw:write", "svc.rw:read")

    def test_unmatched_release_is_a_noop(self, lockdep_manager):
        lockdep_manager.note_released("never.acquired", object())
        assert lockdep_manager.held_nodes() == []


# ---------------------------------------------------------------------------
# tracked primitives
# ---------------------------------------------------------------------------

class TestTrackedPrimitives:
    def test_tracked_lock_is_a_working_mutex(self, lockdep_manager):
        lock = TrackedLock(lockdep_manager, "t.l")
        assert lock.acquire()
        assert lock.locked()
        assert not lock.acquire(blocking=False)
        lock.release()
        assert not lock.locked()
        assert lockdep_manager.held_nodes() == []

    def test_condition_wait_drops_the_hold(self, lockdep_manager):
        cond = TrackedCondition(lockdep_manager, "t.c")
        with cond:
            assert lockdep_manager.held_nodes() == ["t.c"]
            assert cond.wait(timeout=0.01) is False
            # wait released and re-acquired: still exactly one hold,
            # and the round-trip must not fabricate a self-edge.
            assert lockdep_manager.held_nodes() == ["t.c"]
        assert lockdep_manager.edges() == []

    def test_condition_wait_for_predicate(self, lockdep_manager):
        cond = TrackedCondition(lockdep_manager, "t.c")
        box = {"ready": False}

        def flip():
            with cond:
                box["ready"] = True
                cond.notify_all()

        with cond:
            threading.Thread(target=flip).start()
            assert cond.wait_for(lambda: box["ready"], timeout=2.0)

    def test_tracked_rwlock_sides_are_distinct_nodes(self, lockdep_manager):
        rw = TrackedReadWriteLock(lockdep_manager, "t.rw")
        with rw.read_locked():
            assert lockdep_manager.held_nodes() == ["t.rw:read"]
        with rw.write_locked():
            assert lockdep_manager.held_nodes() == ["t.rw:write"]
        assert lockdep_manager.held_nodes() == []

    def test_tracked_rwlock_timeout_does_not_leak_a_hold(self,
                                                         lockdep_manager):
        rw = TrackedReadWriteLock(lockdep_manager, "t.rw")
        with rw.read_locked():
            with pytest.raises(LockTimeout):
                rw.acquire_write(timeout=0.02)
            # the failed acquisition recorded nothing
            assert lockdep_manager.held_nodes() == ["t.rw:read"]


# ---------------------------------------------------------------------------
# arming, factories, isolation
# ---------------------------------------------------------------------------

class TestArming:
    def test_factories_hand_out_bare_primitives_when_disarmed(self, disarmed):
        assert not lockdep.enabled()
        assert isinstance(lockdep.make_lock("x"), type(threading.Lock()))
        assert isinstance(lockdep.make_rlock("x"), type(threading.RLock()))
        assert isinstance(lockdep.make_condition("x"), threading.Condition)
        assert isinstance(lockdep.make_rwlock("x"), ReadWriteLock)

    def test_factories_hand_out_tracked_wrappers_when_armed(
            self, lockdep_manager):
        assert lockdep.enabled()
        assert isinstance(lockdep.make_lock("x"), TrackedLock)
        assert isinstance(lockdep.make_rlock("x"), TrackedRLock)
        assert isinstance(lockdep.make_condition("x"), TrackedCondition)
        assert isinstance(lockdep.make_rwlock("x"), TrackedReadWriteLock)

    def test_install_restore_isolates_findings(self, disarmed):
        """Cycles seeded into a fixture-installed manager never leak to
        the manager active outside it — why the deliberate ABBA tests
        above cannot trip the session-wide REPRO_LOCKDEP gate."""
        outer = LockDep()
        restore_outer = lockdep.install(outer)
        try:
            inner = LockDep()
            restore_inner = lockdep.install(inner)
            try:
                assert lockdep.manager() is inner
                a = TrackedLock(inner, "iso.a")
                b = TrackedLock(inner, "iso.b")
                with a, b:
                    pass
                with b, a:
                    pass
                assert len(inner.cycles()) == 1
            finally:
                restore_inner()
            assert lockdep.manager() is outer
            assert outer.cycles() == []
        finally:
            restore_outer()


# ---------------------------------------------------------------------------
# ReadWriteLock timeouts (satellite: typed LockTimeout)
# ---------------------------------------------------------------------------

class TestReadWriteLockTimeout:
    def _hold_write(self, rw):
        """A thread parked on the write side until told to let go."""
        held = threading.Event()
        done = threading.Event()

        def writer():
            with rw.write_locked():
                held.set()
                done.wait(5.0)

        thread = threading.Thread(target=writer)
        thread.start()
        assert held.wait(5.0)
        return done, thread

    def test_reader_times_out_while_writer_holds(self):
        rw = ReadWriteLock()
        done, thread = self._hold_write(rw)
        try:
            with pytest.raises(LockTimeout):
                rw.acquire_read(timeout=0.05)
        finally:
            done.set()
            thread.join()
        # and once the writer is gone the same call succeeds
        rw.acquire_read(timeout=0.5)
        rw.release_read()

    def test_writer_times_out_while_reader_holds(self):
        rw = ReadWriteLock()
        rw.acquire_read()
        try:
            with pytest.raises(LockTimeout):
                rw.acquire_write(timeout=0.05)
        finally:
            rw.release_read()
        rw.acquire_write(timeout=0.5)
        rw.release_write()

    def test_timed_out_writer_reopens_the_gate_for_readers(self):
        """Writer preference parks new readers behind a waiting writer;
        when that writer gives up on its deadline, queued readers must
        be woken — a missed notify here deadlocks readers forever."""
        rw = ReadWriteLock()
        rw.acquire_read()
        outcome = {}

        def impatient_writer():
            try:
                rw.acquire_write(timeout=0.1)
            except LockTimeout:
                outcome["timed_out"] = True

        thread = threading.Thread(target=impatient_writer)
        thread.start()
        thread.join(5.0)
        assert outcome.get("timed_out")
        # the write side is clear again: a second reader gets straight in
        rw.acquire_read(timeout=0.5)
        rw.release_read()
        rw.release_read()

    def test_zero_timeout_fails_fast_only_under_contention(self):
        rw = ReadWriteLock()
        rw.acquire_read(timeout=0.0)   # uncontended: instant success
        with pytest.raises(LockTimeout):
            rw.acquire_write(timeout=0.0)
        rw.release_read()

    def test_lock_timeout_is_a_typed_server_error(self):
        assert issubclass(LockTimeout, ServerError)
        rebuilt = exception_for({"type": "LockTimeout", "message": "budget"})
        assert isinstance(rebuilt, LockTimeout)


class TestServiceDeadlineWiring:
    def test_wedged_writer_surfaces_as_lock_timeout(self):
        """A request deadline bounds the serving-lock wait: with the
        write side wedged, a read with a 50 ms budget raises the typed
        error instead of stalling for the full ``max_wait``."""
        service = GKBMSService(batch_window=0.002)
        try:
            client = LocalClient(service)
            client.hello()
            client.tell("TELL Doc IN SimpleClass END")
            service._rwlock.acquire_write()
            try:
                with pytest.raises(LockTimeout):
                    client.ask("Known(Doc)", deadline_ms=50)
            finally:
                service._rwlock.release_write()
            assert client.ask("Known(Doc)", deadline_ms=2000)
        finally:
            service.close()


# ---------------------------------------------------------------------------
# the acceptance run: 8-thread stress under the sanitizer
# ---------------------------------------------------------------------------

class TestStressUnderSanitizer:
    def test_seeded_stress_has_zero_cycles(self, lockdep_manager):
        # the service is built *inside* the armed window so every lock
        # its constructor creates is a tracked wrapper
        service = GKBMSService(batch_window=0.002)
        try:
            stats = ConcurrentLoadGenerator(
                client_factory=lambda: LocalClient(service),
                threads=THREADS,
                ops_per_thread=OPS_PER_THREAD,
                seed=42,
            ).run()
        finally:
            service.close()
        assert stats.unexpected_errors == 0
        assert lockdep_manager.cycles() == []
        assert len(lockdep_manager.edges()) >= 1
        report = lockdep_manager.report()
        assert not report.by_code("CCY020")
        assert len(report.by_code("CCY021")) == 1

    def test_sanitizer_metrics_export_through_the_registry(
            self, lockdep_manager):
        service = GKBMSService(batch_window=0.002)
        try:
            ConcurrentLoadGenerator(
                client_factory=lambda: LocalClient(service),
                threads=4,
                ops_per_thread=10,
                seed=7,
            ).run()
            snapshot = service.registry.snapshot("sanitizer.")
        finally:
            service.close()
        assert snapshot["sanitizer.lock_cycles"] == 0
        assert snapshot["sanitizer.order_edges"] >= 1
        held = [name for name in snapshot
                if name.startswith("sanitizer.held_ms.")]
        assert held, "held-time histograms should be recorded"
        assert all(snapshot[name]["count"] > 0 for name in held)

    def test_bind_registry_backfills_existing_counts(self):
        manager = LockDep()
        a = TrackedLock(manager, "t.a")
        b = TrackedLock(manager, "t.b")
        with a, b:
            pass
        with b, a:
            pass
        registry = MetricsRegistry()
        manager.bind_registry(registry)
        snapshot = registry.snapshot("sanitizer.")
        assert snapshot["sanitizer.order_edges"] == 2
        assert snapshot["sanitizer.lock_cycles"] == 1
