"""Integration tests for paths the main scenario does not take:
the distribute strategy end-to-end, and the GKBMS running over a
workspace-partitioned (model-configured) proposition base."""

import pytest

from repro.core import GKBMS
from repro.errors import IntegrityError
from repro.models import ModelBase
from repro.scenario import DOCUMENT_DESIGN, MeetingScenario


class TestDistributeEndToEnd:
    """The scenario replayed with the distribute strategy: one relation
    per class, isa selectors, then normalisation of the set-valued
    receiver — exercising the assistants' interplay on the other branch
    of fig 2-1's menu."""

    @pytest.fixture
    def gkbms(self):
        scenario = MeetingScenario().setup()
        scenario.map_hierarchy("distribute")
        self.scenario = scenario
        return scenario.gkbms

    def test_one_relation_per_class(self, gkbms):
        module = gkbms.module
        assert {"PaperRel", "InvitationRel"} <= set(module.relations)
        # distribute keeps only own attributes per relation
        assert gkbms.module.relations["InvitationRel"].field_names() == [
            "paperkey", "sender", "receiver",
        ]
        assert module.relations["PaperRel"].field_names() == [
            "paperkey", "date", "author",
        ]

    def test_isa_selector_enforced_live(self, gkbms):
        db = gkbms.build_database()
        with db.transaction():
            db.relation("PaperRel").insert(
                {"paperkey": "k1", "date": "d", "author": "a"}
            )
            db.relation("InvitationRel").insert(
                {"paperkey": "k1", "sender": "s", "receiver": "r"}
            )
        with pytest.raises(IntegrityError):
            with db.transaction():
                db.relation("InvitationRel").insert(
                    {"paperkey": "orphan", "sender": "s", "receiver": "r"}
                )

    def test_full_constructor_joins_chain(self, gkbms):
        db = gkbms.build_database()
        with db.transaction():
            db.relation("PaperRel").insert(
                {"paperkey": "k1", "date": "d", "author": "a"}
            )
            db.relation("InvitationRel").insert(
                {"paperkey": "k1", "sender": "s", "receiver": "r"}
            )
        rows = db.rows("FullInvitations")
        assert rows == [
            {"paperkey": "k1", "date": "d", "author": "a",
             "sender": "s", "receiver": "r"}
        ]

    def test_normalize_after_distribute(self, gkbms):
        record = gkbms.execute(
            "DecNormalize", {"relation": "InvitationRel"}, tool="Normalizer",
        )
        module = gkbms.module
        base, detail = record.outputs["relations"]
        assert "receiver" not in module.relations[base].field_names()
        # the isa selector followed the split
        isa_selector = module.selectors["InvitationRelIsAPapers"]
        assert isa_selector.relation == base
        db = gkbms.build_database()
        assert base in db.relations

    def test_backtrack_distribute_mapping(self, gkbms):
        did = self.scenario.records["map"].did
        report = gkbms.backtracker.retract(did)
        assert gkbms.module.relations == {}
        assert gkbms.module.selectors == {}
        assert did in report.retracted_decisions


class TestGKBMSOverModelLattice:
    """The GKBMS's knowledge distributed over model-lattice workspaces:
    'configuring a model means the activation of the corresponding
    nodes', combined with decision documentation."""

    @pytest.fixture
    def composed(self):
        base = ModelBase()
        # the kernel + metamodel + library live in the default workspace;
        # the project's knowledge is split per life-cycle level
        base.define_model("design_level")
        base.define_model("impl_level", submodels=["design_level"])
        gkbms = GKBMS(processor=base.processor)
        gkbms.register_standard_library()
        with base.in_model("design_level"):
            gkbms.import_design(DOCUMENT_DESIGN)
        with base.in_model("impl_level"):
            gkbms.execute(
                "DecMoveDown", {"hierarchy": "Papers"},
                tool="MoveDownMapper",
                params={"only": ["Invitations"],
                        "names": {"Invitations": "InvitationRel"}},
            )
        return base, gkbms

    def test_objects_partitioned_by_model(self, composed):
        base, gkbms = composed
        assert "Papers" in base.objects_of("design_level")
        assert "InvitationRel" in base.objects_of("impl_level")
        assert "InvitationRel" not in base.objects_of(
            "design_level", transitive=False
        )

    def test_configuration_controls_visibility(self, composed):
        base, gkbms = composed
        base.configure(["design_level"])
        assert gkbms.processor.exists("Papers")
        assert not gkbms.processor.exists("InvitationRel")
        base.configure(["impl_level"])  # pulls design in transitively
        assert gkbms.processor.exists("InvitationRel")
        assert gkbms.processor.exists("Papers")

    def test_navigation_respects_configuration(self, composed):
        base, gkbms = composed
        nav = gkbms.navigator()
        base.configure(["design_level"])
        assert nav.status_view("implementation") == []
        base.configure(["impl_level"])
        assert "InvitationRel" in nav.status_view("implementation")
