"""Unit tests for the service layer: protocol, locks, sessions,
admission, pipeline, group commit, and the service dispatch itself."""

import threading
import time

import pytest

from repro.conceptbase import ConceptBase
from repro.errors import (
    CommitConflict,
    DeadlineExceeded,
    PersistenceError,
    ProtocolError,
    ReproError,
    ServerError,
    ServerOverloaded,
    SessionError,
)
from repro.faults import FaultPlan, FaultyIO, WriteFault
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import individual
from repro.propositions.store import WorkspaceStore
from repro.propositions.wal import WalStore
from repro.server import protocol
from repro.server.admission import AdmissionController
from repro.server.client import LocalClient
from repro.server.locks import ReadWriteLock
from repro.server.pipeline import CommitPipeline
from repro.server.service import GKBMSService
from repro.server.session import SessionManager


def _ns(prefix="server"):
    return MetricsRegistry().namespace(prefix)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip(self):
        payload = {"id": 3, "op": "tell", "params": {"source": "TELL X END"}}
        line = protocol.encode_frame(payload)
        assert line.endswith(b"\n")
        assert protocol.decode_frame(line) == payload

    def test_oversized_frame_refused(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"x" * (protocol.MAX_FRAME + 1))

    def test_non_json_refused(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"not json at all\n")

    def test_non_object_refused(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"[1, 2]\n")

    def test_unknown_op_refused(self):
        with pytest.raises(ProtocolError):
            protocol.validate_request({"op": "drop_all_tables"})

    def test_params_must_be_object(self):
        with pytest.raises(ProtocolError):
            protocol.validate_request({"op": "ask", "params": [1]})

    def test_deadline_must_be_numeric(self):
        with pytest.raises(ProtocolError):
            protocol.validate_request({"op": "ping", "deadline_ms": "soon"})

    def test_deadline_bool_refused(self):
        # Regression: bool is an int subclass, so `deadline_ms: true`
        # slipped through the numeric check and computed a 1ms budget.
        with pytest.raises(ProtocolError):
            protocol.validate_request({"op": "ping", "deadline_ms": True})

    def test_deadline_non_finite_refused(self):
        # Regression: Python's json parses NaN/Infinity, either of
        # which poisons every deadline comparison downstream.
        for poison in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ProtocolError):
                protocol.validate_request(
                    {"op": "ping", "deadline_ms": poison}
                )

    def test_poison_deadlines_refused_in_process(self):
        # The LocalClient transport round-trips the wire encoding, so
        # this covers the same frames a socket would deliver.
        service = GKBMSService()
        try:
            for poison in (True, float("nan"), float("inf")):
                response = service.handle(
                    {"id": 1, "op": "ping", "params": {},
                     "deadline_ms": poison}
                )
                assert response["ok"] is False
                assert response["error"]["type"] == "ProtocolError"
        finally:
            service.close()

    def test_negotiate_protocol_grants_min(self):
        assert protocol.negotiate_protocol({}) == 1
        assert protocol.negotiate_protocol({"protocol": 1}) == 1
        assert protocol.negotiate_protocol({"protocol": 2}) == 2
        # A future client never gets more than we speak.
        assert (protocol.negotiate_protocol({"protocol": 99})
                == protocol.PROTOCOL_VERSION)

    def test_negotiate_protocol_refuses_junk(self):
        for junk in ({"protocol": 0}, {"protocol": -1},
                     {"protocol": "2"}, {"protocol": True},
                     {"protocol": 2.0}):
            with pytest.raises(ProtocolError):
                protocol.negotiate_protocol(junk)

    def test_error_response_keeps_typed_name(self):
        response = protocol.error_response(9, CommitConflict("stale"))
        assert response["error"]["type"] == "CommitConflict"
        assert response["ok"] is False

    def test_error_response_hides_internal_errors(self):
        response = protocol.error_response(9, ValueError("boom"))
        assert response["error"]["type"] == "InternalError"

    def test_exception_round_trip(self):
        for exc in (CommitConflict("a"), ServerOverloaded("b"),
                    DeadlineExceeded("c"), SessionError("d")):
            error = protocol.error_response(1, exc)["error"]
            rebuilt = protocol.exception_for(error)
            assert type(rebuilt) is type(exc)
            assert str(exc) in str(rebuilt)

    def test_unknown_error_type_degrades_to_server_error(self):
        rebuilt = protocol.exception_for(
            {"type": "NoSuchError", "message": "x"}
        )
        assert isinstance(rebuilt, ServerError)
        assert "NoSuchError" in str(rebuilt)


# ----------------------------------------------------------------------
# Reader/writer lock
# ----------------------------------------------------------------------


class TestReadWriteLock:
    def test_readers_are_concurrent(self):
        lock = ReadWriteLock()
        both_in = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                both_in.wait()

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                order.append("read")

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        order.append("write-release")
        lock.release_write()
        t.join(timeout=5)
        assert order == ["write-release", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        got_write = threading.Event()
        late_read = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            late_read.set()
            lock.release_read()

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # writer is now queued
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        # The late reader must queue behind the waiting writer.
        assert not late_read.is_set()
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert got_write.is_set() and late_read.is_set()


# ----------------------------------------------------------------------
# Sessions and overlays
# ----------------------------------------------------------------------


class TestSessions:
    def test_open_get_close(self):
        manager = SessionManager(_ns(), max_sessions=2)
        session = manager.open(read_epoch=0)
        assert manager.get(session.sid) is session
        manager.close(session.sid)
        with pytest.raises(SessionError):
            manager.get(session.sid)

    def test_session_cap(self):
        manager = SessionManager(_ns(), max_sessions=1)
        manager.open(read_epoch=0)
        with pytest.raises(SessionError):
            manager.open(read_epoch=0)

    def test_missing_session_id(self):
        manager = SessionManager(_ns())
        with pytest.raises(SessionError):
            manager.get(None)

    def test_staging_records_write_set(self):
        manager = SessionManager(_ns())
        session = manager.open(read_epoch=7)
        session.begin(read_epoch=7)
        session.stage("tell", "TELL A END", ["A"])
        session.stage("untell", "B", ["B"])
        session.stage("tell", "TELL A END", ["A"])  # key dedup
        assert session.staged_keys() == ["A", "B"]
        assert [op[0] for op in session.staged_ops()] == [
            "tell", "untell", "tell"
        ]
        dropped = session.end_transaction()
        assert dropped == 2
        assert session.staged_keys() == []

    def test_nested_begin_refused(self):
        session = SessionManager(_ns()).open(read_epoch=0)
        session.begin(0)
        with pytest.raises(SessionError):
            session.begin(0)

    def test_stage_without_begin_refused(self):
        session = SessionManager(_ns()).open(read_epoch=0)
        with pytest.raises(SessionError):
            session.stage("tell", "TELL A END", ["A"])

    def test_close_discards_open_transaction(self):
        manager = SessionManager(_ns())
        session = manager.open(read_epoch=0)
        session.begin(0)
        session.stage("tell", "TELL A END", ["A"])
        manager.close(session.sid)
        assert not session.in_transaction


class TestOverlayDiscard:
    """Satellite: discarding a session overlay must not leak epoch bumps
    into the shared store's closure caches."""

    def test_remove_inactive_workspace_keeps_visibility(self):
        store = WorkspaceStore()
        before = store.visibility_epoch
        store.add_workspace("scratch", active=False)
        store.set_current("scratch")
        store.create(individual("Draft"))
        store.set_current(WorkspaceStore.DEFAULT)
        dropped = store.remove_workspace("scratch")
        assert dropped == 1
        # Never-visible content: dropping it changes nothing any reader
        # could have seen, so the global visibility epoch must not move.
        assert store.visibility_epoch == before

    def test_remove_active_workspace_bumps_visibility(self):
        store = WorkspaceStore()
        store.add_workspace("live", active=True)
        store.set_current("live")
        store.create(individual("Draft"))
        store.set_current(WorkspaceStore.DEFAULT)
        before = store.visibility_epoch
        store.remove_workspace("live")
        # Visible content disappeared: readers must revalidate.
        assert store.visibility_epoch > before

    def test_remove_kernel_refused(self):
        store = WorkspaceStore()
        with pytest.raises(ReproError):
            store.remove_workspace(WorkspaceStore.DEFAULT)

    def test_aborted_session_overlay_keeps_closure_caches_warm(self):
        service = GKBMSService()
        try:
            client = LocalClient(service)
            client.tell("TELL Doc IN SimpleClass END")
            client.tell("TELL D1 IN Doc END")
            client.instances("Doc")  # warm the closure caches
            hits_before = service.registry.snapshot()[
                "proposition.closure_hits"
            ]
            misses_before = service.registry.snapshot()[
                "proposition.closure_misses"
            ]
            client.begin()
            client.tell("TELL D2 IN Doc END")
            client.abort()
            assert client.instances("Doc") == ["D1"]
            after = service.registry.snapshot()
            # The abort only touched the session's private overlay: the
            # warm read must be servable from cache, not recomputed.
            assert after["proposition.closure_hits"] > hits_before
            assert after["proposition.closure_misses"] == misses_before
        finally:
            service.close()

    def test_commit_apply_delta_maintains_closure_caches(self):
        """A committed tell reaches the shared base through the delta
        hooks: the classification caches other sessions warmed are
        patched in place (answers move, invalidations do not)."""
        service = GKBMSService()
        try:
            client = LocalClient(service)
            client.tell("TELL Doc IN SimpleClass END")
            client.tell("TELL D1 IN Doc END")
            client.instances("Doc")  # warm the closure caches
            before = service.registry.snapshot()
            client.begin()
            client.tell("TELL D2 IN Doc END")
            client.commit()
            assert client.instances("Doc") == ["D1", "D2"]
            after = service.registry.snapshot()
            assert (after["proposition.closure_invalidations"]
                    == before["proposition.closure_invalidations"])
            assert (after["proposition.closure_delta_applied"]
                    > before["proposition.closure_delta_applied"])
        finally:
            service.close()


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmission:
    def test_sheds_when_queue_full(self):
        admission = AdmissionController(
            _ns(), max_in_flight=1, max_waiting=0
        )
        release = threading.Event()
        occupied = threading.Event()

        def occupant():
            with admission.admit():
                occupied.set()
                release.wait(5)

        t = threading.Thread(target=occupant)
        t.start()
        assert occupied.wait(5)
        with pytest.raises(ServerOverloaded):
            with admission.admit():
                pass
        release.set()
        t.join(timeout=5)

    def test_expired_deadline_refused_immediately(self):
        admission = AdmissionController(_ns())
        deadline = admission.deadline_from(0)
        time.sleep(0.001)
        with pytest.raises(DeadlineExceeded):
            with admission.admit(deadline=deadline):
                pass

    def test_deadline_while_queued(self):
        admission = AdmissionController(
            _ns(), max_in_flight=1, max_waiting=4, max_wait=5.0
        )
        release = threading.Event()
        occupied = threading.Event()

        def occupant():
            with admission.admit():
                occupied.set()
                release.wait(5)

        t = threading.Thread(target=occupant)
        t.start()
        assert occupied.wait(5)
        with pytest.raises(DeadlineExceeded):
            with admission.admit(deadline=admission.deadline_from(30)):
                pass
        release.set()
        t.join(timeout=5)

    def test_deadline_rechecked_on_wakeup(self):
        """Regression: a queued waiter whose deadline expired just
        before a slot freed was admitted anyway (the wait loop exited
        on admissibility without re-checking the clock) and burned
        worker time on an answer nobody was waiting for."""
        now = [0.0]
        registry = MetricsRegistry()
        admission = AdmissionController(
            registry.namespace("server"), max_in_flight=1, max_waiting=4,
            max_wait=60.0, clock=lambda: now[0],
        )
        deadline = admission.deadline_from(10_000)  # expires at t=10
        occupied = threading.Event()
        proceed = threading.Event()

        def occupant():
            with admission.admit():
                occupied.set()
                proceed.wait(5)
                # Expire the waiter's deadline *before* releasing the
                # slot: the release is the only wakeup, so the waiter
                # observes an open slot and a dead budget at once.
                now[0] = 20.0

        t = threading.Thread(target=occupant)
        t.start()
        assert occupied.wait(5)

        outcome = {}

        def waiter():
            try:
                with admission.admit(deadline=deadline):
                    outcome["admitted"] = True
            except DeadlineExceeded:
                outcome["refused"] = True

        w = threading.Thread(target=waiter)
        w.start()
        give_up = 100
        while admission._waiting == 0 and give_up > 0:
            time.sleep(0.005)
            give_up -= 1
        assert admission._waiting == 1
        proceed.set()
        t.join(timeout=5)
        w.join(timeout=5)
        assert outcome == {"refused": True}
        snapshot = registry.snapshot()
        assert snapshot["server.deadline_exceeded"] == 1

    def test_bounded_wait_sheds_without_deadline(self):
        admission = AdmissionController(
            _ns(), max_in_flight=1, max_waiting=4, max_wait=0.05
        )
        release = threading.Event()
        occupied = threading.Event()

        def occupant():
            with admission.admit():
                occupied.set()
                release.wait(5)

        t = threading.Thread(target=occupant)
        t.start()
        assert occupied.wait(5)
        with pytest.raises(ServerOverloaded):
            with admission.admit():
                pass
        release.set()
        t.join(timeout=5)

    def test_per_session_cap(self):
        ns = _ns()
        admission = AdmissionController(
            ns, max_in_flight=8, max_waiting=0, per_session=1
        )
        session = SessionManager(ns).open(read_epoch=0)
        release = threading.Event()
        occupied = threading.Event()

        def occupant():
            with admission.admit(session):
                occupied.set()
                release.wait(5)

        t = threading.Thread(target=occupant)
        t.start()
        assert occupied.wait(5)
        with pytest.raises(ServerOverloaded):
            with admission.admit(session):
                pass
        # A different session still gets in.
        with admission.admit():
            pass
        release.set()
        t.join(timeout=5)

    def test_slot_released_after_exit(self):
        registry = MetricsRegistry()
        admission = AdmissionController(
            registry.namespace("server"), max_in_flight=1
        )
        with admission.admit():
            pass
        with admission.admit():
            pass
        snapshot = registry.snapshot()
        assert snapshot["server.admitted"] == 2
        assert snapshot["server.in_flight"] == 0
        assert snapshot["server.queue_depth"] == 0


# ----------------------------------------------------------------------
# Commit pipeline
# ----------------------------------------------------------------------


class TestPipeline:
    def _pipeline(self, apply, **kw):
        registry = MetricsRegistry()
        pipeline = CommitPipeline(
            apply, registry.namespace("server.commit"),
            Tracer(enabled=False), **kw
        )
        return pipeline, registry

    def test_commit_order_and_log(self):
        applied = []

        def apply(pending):
            applied.append(pending.ops)
            return {"n": len(applied)}

        pipeline, _ = self._pipeline(apply)
        try:
            r1 = pipeline.submit([("tell", "a")], ["A"], None, "s1")
            r2 = pipeline.submit([("tell", "b")], ["B"], None, "s1")
            assert (r1["commit_seq"], r2["commit_seq"]) == (1, 2)
            log = pipeline.commit_log()
            assert [entry[0] for entry in log] == [1, 2]
            assert log[0][2] == [("tell", "a")]
        finally:
            pipeline.close()

    def test_first_committer_wins(self):
        pipeline, registry = self._pipeline(lambda pending: {})
        try:
            pipeline.submit([("tell", "a")], ["K"], None, "s1")
            with pytest.raises(CommitConflict):
                pipeline.submit([("tell", "b")], ["K"], 0, "s2")
            # Same keys, but pinned at the current head: accepted.
            pipeline.submit(
                [("tell", "c")], ["K"], pipeline.commit_seq, "s2"
            )
        finally:
            pipeline.close()
        snapshot = registry.snapshot()
        assert snapshot["server.commit.conflicts"] == 1
        assert snapshot["server.commit.committed"] == 2

    def test_autocommit_never_conflicts(self):
        pipeline, _ = self._pipeline(lambda pending: {})
        try:
            for _ in range(3):
                pipeline.submit([("tell", "x")], ["K"], None, "s1")
            assert pipeline.commit_seq == 3
        finally:
            pipeline.close()

    def test_apply_errors_reach_the_submitter(self):
        def apply(pending):
            raise ServerError("apply exploded")

        pipeline, registry = self._pipeline(apply)
        try:
            with pytest.raises(ServerError):
                pipeline.submit([("tell", "a")], [], None, "s1")
        finally:
            pipeline.close()
        assert registry.snapshot()["server.commit.errors"] == 1
        assert pipeline.commit_seq == 0

    def test_group_commit_batches(self):
        gate = threading.Event()

        def apply(pending):
            gate.wait(5)
            return {}

        pipeline, registry = self._pipeline(
            apply, max_batch=8, batch_window=0.2
        )
        try:
            threads = [
                threading.Thread(
                    target=pipeline.submit,
                    args=([("tell", "x")], [], None, f"s{i}"),
                )
                for i in range(4)
            ]
            for t in threads:
                t.start()
            time.sleep(0.05)  # let all four land in the queue
            gate.set()
            for t in threads:
                t.join(timeout=5)
        finally:
            pipeline.close()
        batch = registry.snapshot()["server.commit.batch_size"]
        assert batch["count"] >= 1
        assert batch["max"] >= 2  # at least one multi-commit fsync group

    def test_full_queue_sheds(self):
        started = threading.Event()
        gate = threading.Event()

        def apply(pending):
            started.set()
            gate.wait(5)
            return {}

        pipeline, _ = self._pipeline(apply, max_queue=1, batch_window=0.0)
        try:
            first = threading.Thread(
                target=pipeline.submit, args=([("tell", "a")], [], None, "s"),
            )
            first.start()
            assert started.wait(5)  # writer busy with the first commit
            second = threading.Thread(
                target=pipeline.submit, args=([("tell", "b")], [], None, "s"),
            )
            second.start()
            time.sleep(0.05)  # second now occupies the single queue slot
            with pytest.raises(ServerOverloaded):
                pipeline.submit([("tell", "c")], [], None, "s")
            gate.set()
            first.join(timeout=5)
            second.join(timeout=5)
        finally:
            pipeline.close()

    def test_submit_after_close_raises_typed(self):
        pipeline, _ = self._pipeline(lambda pending: {})
        pipeline.close()
        with pytest.raises(ServerError):
            pipeline.submit([("tell", "x")], [], None, "s1")


class _ExplodingBatchWal:
    """Duck-typed WAL whose batch scope fails on exit — the injected
    fsync fault the review's durability scenario describes."""

    def batch(self):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        raise PersistenceError("injected fsync failure")


class TestPipelineDurabilityFaults:
    def _pipeline(self, apply, **kw):
        registry = MetricsRegistry()
        pipeline = CommitPipeline(
            apply, registry.namespace("server.commit"),
            Tracer(enabled=False), **kw
        )
        return pipeline, registry

    def test_fault_fails_the_submitter_and_poisons_the_pipeline(self):
        pipeline, registry = self._pipeline(
            lambda pending: {}, wal=_ExplodingBatchWal()
        )
        try:
            # The batch-exit fault must surface as a typed error, not a
            # hang: the commit applied in memory but was never forced.
            with pytest.raises(ServerError, match="durability"):
                pipeline.submit([("tell", "a")], [], None, "s1")
            # Poisoned: later submits fail fast instead of building on
            # state that may not survive a restart.
            with pytest.raises(ServerError, match="failed"):
                pipeline.submit([("tell", "b")], [], None, "s1")
        finally:
            pipeline.close()
        assert registry.snapshot()["server.commit.errors"] == 1

    def test_fault_never_strands_any_submitter(self):
        gate = threading.Event()

        def apply(pending):
            gate.wait(5)
            return {}

        # max_batch=1: the first commit's batch faults and kills the
        # writer while three more sit in the queue — all four must be
        # woken with a typed error (none may hang on done.wait()).
        pipeline, _ = self._pipeline(
            apply, wal=_ExplodingBatchWal(), max_batch=1
        )
        errors = []
        errors_lock = threading.Lock()

        def submit(i):
            try:
                pipeline.submit([("tell", "x")], [], None, f"s{i}")
            except ServerError as exc:
                with errors_lock:
                    errors.append(str(exc))

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(4)
        ]
        try:
            for t in threads:
                t.start()
            time.sleep(0.05)  # let all four land in the queue
            gate.set()
            for t in threads:
                t.join(timeout=10)
            assert not any(t.is_alive() for t in threads)
            assert len(errors) == 4
        finally:
            pipeline.close()


class TestWalGroupCommit:
    def test_batch_defers_fsyncs(self, tmp_path):
        store = WalStore(str(tmp_path / "kb.wal"), fsync="commit")
        proc = PropositionProcessor(store=store)
        baseline = store.stats.snapshot()["fsyncs"]
        with store.batch():
            for name in ("A", "B", "C"):
                with proc.telling():
                    proc.tell_individual(name)
        stats = store.stats.snapshot()
        # One force for the whole batch instead of one per commit.
        assert stats["fsyncs"] == baseline + 1
        assert stats["deferred_fsyncs"] >= 2
        assert stats["group_batches"] == 1

    def test_batched_commits_survive_reopen(self, tmp_path):
        path = str(tmp_path / "kb.wal")
        store = WalStore(path, fsync="commit")
        proc = PropositionProcessor(store=store)
        with store.batch():
            for name in ("A", "B"):
                with proc.telling():
                    proc.tell_individual(name)
        rows = store.rows()
        reopened = WalStore(path)
        assert reopened.rows() == rows

    def test_always_policy_unaffected_by_batch(self, tmp_path):
        store = WalStore(str(tmp_path / "kb.wal"), fsync="always")
        proc = PropositionProcessor(store=store)
        baseline = store.stats.snapshot()["fsyncs"]
        with store.batch():
            with proc.telling():
                proc.tell_individual("A")
        stats = store.stats.snapshot()
        assert stats["fsyncs"] > baseline
        assert stats["deferred_fsyncs"] == 0

    def test_real_fsync_fault_is_typed_end_to_end(self, tmp_path):
        class _FsyncFaultIO(FaultyIO):
            fail_fsyncs = False

            def fsync(self, handle):
                if self.fail_fsyncs:
                    raise WriteFault("injected fsync failure")
                super().fsync(handle)

        io = _FsyncFaultIO(FaultPlan())
        store = WalStore(str(tmp_path / "kb.wal"), fsync="commit", io=io)
        service = GKBMSService(ConceptBase(store=store))
        client = LocalClient(service)
        client.tell("TELL Doc IN SimpleClass END")
        io.fail_fsyncs = True
        # The group-commit fsync fails on batch exit: a typed error,
        # never a hung writer thread nor an ambiguous acknowledgement.
        with pytest.raises(ServerError, match="durability"):
            client.tell("TELL D1 IN Doc END")
        with pytest.raises(ServerError):
            client.tell("TELL D2 IN Doc END")
        service.close()


# ----------------------------------------------------------------------
# Commit validators and pinned reads (processor substrate)
# ----------------------------------------------------------------------


class TestProcessorHooks:
    def test_commit_validator_refusal_rolls_back(self):
        cb = ConceptBase()

        def refuse(created):
            raise CommitConflict("refused by validator")

        cb.propositions.add_commit_validator(refuse)
        with pytest.raises(CommitConflict):
            with cb.transaction():
                cb.propositions.tell_individual("Doomed")
        assert not cb.propositions.exists("Doomed")

    def test_validator_runs_before_listeners(self):
        cb = ConceptBase()
        calls = []
        cb.propositions.add_commit_validator(
            lambda created: calls.append("validator")
        )
        cb.propositions.on_commit(lambda created: calls.append("listener"))
        with cb.transaction():
            cb.propositions.tell_individual("Ok")
        assert calls == ["validator", "listener"]

    def test_pinned_read_consistent_when_quiet(self):
        cb = ConceptBase()
        with cb.propositions.read_transaction() as pin:
            cb.propositions.exists("System")
        assert pin.consistent is True

    def test_pinned_read_detects_mutation(self):
        cb = ConceptBase()
        with cb.propositions.read_transaction() as pin:
            cb.propositions.tell_individual("Intruder")
        assert pin.consistent is False


# ----------------------------------------------------------------------
# The service, end to end through LocalClient
# ----------------------------------------------------------------------


@pytest.fixture
def service():
    svc = GKBMSService(batch_window=0.0)
    yield svc
    svc.close()


class TestServiceOps:
    def test_tell_ask_query_roundtrip(self, service):
        client = LocalClient(service)
        client.tell("TELL Doc IN SimpleClass END")
        result = client.tell("TELL D1 IN Doc END")
        assert result["created"] > 0 and result["commit_seq"] == 2
        assert client.instances("Doc") == ["D1"]
        assert "D1" in client.frame("D1")
        assert client.summary()["individuals"] > 0

    def test_transaction_commit_applies_atomically(self, service):
        client = LocalClient(service)
        client.tell("TELL Doc IN SimpleClass END")
        with client.transaction():
            client.tell("TELL D1 IN Doc END")
            client.tell("TELL D2 IN Doc END")
            # Staged, not visible yet.
            assert client.staged()["keys"] == ["D1", "D2"]
        assert client.instances("Doc") == ["D1", "D2"]

    def test_transaction_abort_discards(self, service):
        client = LocalClient(service)
        client.tell("TELL Doc IN SimpleClass END")
        client.begin()
        client.tell("TELL D1 IN Doc END")
        client.abort()
        assert client.instances("Doc") == []

    def test_empty_commit_is_a_noop(self, service):
        client = LocalClient(service)
        client.begin()
        result = client.commit()
        assert result.get("empty") is True
        assert service.pipeline.commit_seq == 0

    def test_stale_commit_rejected_conflict(self, service):
        writer = LocalClient(service)
        racer = LocalClient(service)
        writer.tell("TELL Doc IN SimpleClass END")
        racer.begin()
        racer.tell("TELL Shared IN Doc END")
        writer.tell("TELL Shared IN Doc END")  # first committer wins
        with pytest.raises(CommitConflict):
            racer.commit()
        # The refused transaction is gone; a retry at the new head works.
        racer.begin()
        racer.tell("TELL Shared IN Doc END")
        racer.commit()

    def test_conflict_consumes_no_pids(self, service):
        writer = LocalClient(service)
        racer = LocalClient(service)
        writer.tell("TELL Doc IN SimpleClass END")
        racer.begin()
        racer.tell("TELL Shared IN Doc END")
        writer.tell("TELL Shared IN Doc END")
        rows_before = service.cb.propositions.store.rows()
        with pytest.raises(CommitConflict):
            racer.commit()
        # A refused commit must leave the store bit-identical.
        assert service.cb.propositions.store.rows() == rows_before

    def test_unknown_session_typed_error(self, service):
        response = service.handle(
            {"id": 1, "op": "ask", "session": "s999",
             "params": {"assertion": "x"}}
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "SessionError"

    def test_parse_error_is_typed_not_internal(self, service):
        client = LocalClient(service)
        with pytest.raises(ReproError) as info:
            client.tell("THIS IS NOT A FRAME")
        assert not isinstance(info.value, ServerError)

    def test_expired_deadline_rejected(self, service):
        client = LocalClient(service)
        with pytest.raises(DeadlineExceeded):
            client.instances("SimpleClass", deadline_ms=0)

    def test_bye_closes_session(self, service):
        client = LocalClient(service)
        sid = client.session
        client.close()
        response = service.handle(
            {"id": 1, "op": "summary", "session": sid, "params": {}}
        )
        assert response["error"]["type"] == "SessionError"

    def test_explain_reports_attribution(self, service):
        client = LocalClient(service)
        client.tell("TELL Doc IN SimpleClass END")
        client.tell("TELL D1 IN Doc END")
        report = client.explain("in(?x, Doc)", kind="query")
        assert report["label"].startswith("query:")
        assert "headline" in report and "render" in report

    def test_stats_exposes_server_metrics(self, service):
        client = LocalClient(service)
        client.tell("TELL Doc IN SimpleClass END")
        stats = client.stats("server")
        assert stats["server.requests"] > 0
        assert stats["server.commit.committed"] == 1
        assert stats["server.sessions"] == 1

    def test_responses_are_wire_serializable(self, service):
        # LocalClient round-trips every frame through the JSON encoder,
        # so exercising each read op proves serializability.
        client = LocalClient(service)
        client.tell("TELL Doc IN SimpleClass END")
        client.ask_all("exists d/Doc (Known(d))")
        client.query("in(?x, Doc)")
        client.ping()
        client.summary()


# ----------------------------------------------------------------------
# Thread-safety of the obs substrate (satellite)
# ----------------------------------------------------------------------


class TestSessionSerialization:
    @staticmethod
    def _frame(op, sid=None, **params):
        frame = {"id": 1, "op": op, "params": params}
        if sid is not None:
            frame["session"] = sid
        return frame

    def test_shutdown_signals_propagate_out_of_handle(self, service):
        def interrupt(params):
            raise KeyboardInterrupt()

        service._op_ping = interrupt
        with pytest.raises(KeyboardInterrupt):
            service.handle(self._frame("ping"))

    def test_concurrent_tell_never_lost_around_commit(self, service):
        """A ``tell`` racing another request's commit on the *same*
        session must land somewhere — staged into the open transaction
        (and committed with it) or autocommitted — never silently
        dropped between the commit's snapshot and its clearing
        ``end_transaction``."""
        response = service.handle(self._frame("hello"))
        sid = response["result"]["session"]
        service.handle(self._frame(
            "tell", sid, source="TELL Doc IN SimpleClass END"
        ))
        rounds = 25
        barrier = threading.Barrier(2)
        failures = []
        failures_lock = threading.Lock()

        def run(op_source):
            for i in range(rounds):
                barrier.wait()
                for frame in op_source(i):
                    response = service.handle(frame)
                    if not response["ok"]:
                        with failures_lock:
                            failures.append(response["error"])

        def committer(i):
            yield self._frame("begin", sid)
            yield self._frame("tell", sid,
                              source=f"TELL A{i} IN Doc END")
            yield self._frame("commit", sid)

        def teller(i):
            yield self._frame("tell", sid,
                              source=f"TELL B{i} IN Doc END")

        threads = [threading.Thread(target=run, args=(committer,)),
                   threading.Thread(target=run, args=(teller,))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert failures == []
        instances = set(service.cb.instances("Doc"))
        expected = {f"A{i}" for i in range(rounds)} \
            | {f"B{i}" for i in range(rounds)}
        assert expected <= instances


class TestObsThreadSafety:
    def _hammer(self, fn, threads=8, iterations=500):
        workers = [
            threading.Thread(target=lambda: [fn() for _ in range(iterations)])
            for _ in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        return threads * iterations

    def test_counter_increments_are_not_lost(self):
        counter = MetricsRegistry().counter("c")
        expected = self._hammer(counter.inc)
        assert counter.value == expected

    def test_histogram_observations_are_not_lost(self):
        histogram = MetricsRegistry().histogram("h")
        expected = self._hammer(lambda: histogram.observe(1.0))
        summary = histogram.summary()
        assert summary["count"] == expected
        assert summary["sum"] == pytest.approx(float(expected))
        assert summary["mean"] == pytest.approx(1.0)

    def test_tracer_span_ids_unique_across_threads(self):
        tracer = Tracer(enabled=True)

        def one_span():
            with tracer.span("server.test"):
                pass

        expected = self._hammer(one_span, threads=8, iterations=200)
        ids = [span.span_id for span in tracer.spans]
        assert len(ids) == expected
        assert len(set(ids)) == expected
