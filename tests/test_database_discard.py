"""``Database.discard``: index- and snapshot-consistent deletion.

Before PR 7 the deduction database was insert-only (``add``/``merge``);
DRed-style maintenance needs physical deletion that keeps every lazily
built argument-position index and the cached ``rows()`` snapshot
consistent.  These regressions stand alone — they do not involve the
maintenance layer on top.
"""

from repro.deduction.seminaive import Database


class TestDiscardBasics:
    def test_discard_present_row(self):
        db = Database()
        db.add("edge", ("a", "b"))
        assert db.discard("edge", ("a", "b")) is True
        assert not db.contains("edge", ("a", "b"))
        assert db.rows("edge") == frozenset()
        assert len(db) == 0

    def test_discard_absent_row_is_noop(self):
        db = Database()
        db.add("edge", ("a", "b"))
        assert db.discard("edge", ("a", "c")) is False
        assert db.discard("missing", ("a",)) is False
        assert db.contains("edge", ("a", "b"))
        assert len(db) == 1

    def test_discard_then_readd(self):
        db = Database()
        db.add("edge", ("a", "b"))
        assert db.discard("edge", ("a", "b"))
        assert db.add("edge", ("a", "b")) is True
        assert db.contains("edge", ("a", "b"))

    def test_predicate_disappears_when_emptied(self):
        db = Database()
        db.add("edge", ("a", "b"))
        db.discard("edge", ("a", "b"))
        assert "edge" not in db.predicates()


class TestDiscardIndexConsistency:
    def test_built_index_loses_the_row(self):
        db = Database()
        db.add("edge", ("a", "b"))
        db.add("edge", ("a", "c"))
        index = db.index("edge", (0,))
        assert {row for row in index[("a",)]} == {("a", "b"), ("a", "c")}
        db.discard("edge", ("a", "b"))
        index = db.index("edge", (0,))
        assert list(index[("a",)]) == [("a", "c")]

    def test_emptied_bucket_is_pruned(self):
        db = Database()
        db.add("edge", ("a", "b"))
        db.index("edge", (0,))
        db.index("edge", (1,))
        db.discard("edge", ("a", "b"))
        assert ("a",) not in db.index("edge", (0,))
        assert ("b",) not in db.index("edge", (1,))

    def test_multi_position_indexes_all_updated(self):
        db = Database()
        rows = [("a", "b", "c"), ("a", "b", "d"), ("x", "b", "c")]
        for row in rows:
            db.add("fact", row)
        db.index("fact", (0,))
        db.index("fact", (0, 1))
        db.index("fact", (2,))
        db.discard("fact", ("a", "b", "c"))
        assert list(db.index("fact", (0, 1))[("a", "b")]) == [("a", "b", "d")]
        assert list(db.index("fact", (2,))[("c",)]) == [("x", "b", "c")]
        assert len(db.index("fact", (0,))[("a",)]) == 1

    def test_mixed_arity_rows_skip_short_indexes(self):
        # An index on position 2 never filed a 2-tuple; discarding the
        # 2-tuple must not touch (or crash on) that index.
        db = Database()
        db.add("fact", ("a", "b"))
        db.add("fact", ("a", "b", "c"))
        db.index("fact", (2,))
        assert db.discard("fact", ("a", "b"))
        assert list(db.index("fact", (2,))[("c",)]) == [("a", "b", "c")]

    def test_index_built_after_discard_is_correct(self):
        db = Database()
        db.add("edge", ("a", "b"))
        db.add("edge", ("c", "d"))
        db.discard("edge", ("a", "b"))
        index = db.index("edge", (0,))
        assert ("a",) not in index
        assert list(index[("c",)]) == [("c", "d")]


class TestDiscardSnapshotConsistency:
    def test_frozen_snapshot_invalidated(self):
        db = Database()
        db.add("edge", ("a", "b"))
        before = db.rows("edge")
        db.discard("edge", ("a", "b"))
        after = db.rows("edge")
        assert before == frozenset({("a", "b")})  # old snapshot unchanged
        assert after == frozenset()

    def test_copy_unaffected_by_discard(self):
        db = Database()
        db.add("edge", ("a", "b"))
        clone = db.copy()
        db.discard("edge", ("a", "b"))
        assert clone.contains("edge", ("a", "b"))

    def test_interleaved_add_discard_rows(self):
        db = Database()
        for i in range(20):
            db.add("n", (i,))
        for i in range(0, 20, 2):
            assert db.discard("n", (i,))
        assert db.rows("n") == frozenset((i,) for i in range(1, 20, 2))
        assert len(db) == 10
