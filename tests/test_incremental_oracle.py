"""Randomized oracle equivalence for delta-maintained state (PR 7).

Seeded interleavings of tell / untell (retract) / savepoint-rollback,
where the delta-maintained artefacts — the proposition processor's
closure caches and the rule engine's materialised IDB — are compared
against a **from-scratch oracle rebuild after every step**.  Any drift
between maintenance and rebuild is a correctness bug, not a perf bug;
these tests are the safety net under the Perf-9 ratios.
"""

import random

import pytest

from repro.deduction import parse_rule
from repro.deduction.kb import KnowledgeView, RuleEngine
from repro.deduction.seminaive import Database, MaterializedFixpoint, evaluate
from repro.errors import AxiomViolation, PropositionError
from repro.propositions import PropositionProcessor


# ---------------------------------------------------------------------------
# Fixpoint level: random fact batches vs evaluate()
# ---------------------------------------------------------------------------


FIXPOINT_RULES = [
    "path(?x, ?y) :- edge(?x, ?y).",
    "path(?x, ?z) :- edge(?x, ?y), path(?y, ?z).",
    "linked(?x) :- edge(?x, ?y).",
    "linked(?y) :- edge(?x, ?y).",
    "lonely(?x) :- node(?x), not linked(?x).",
]


def rebuild(rule_texts, facts):
    rules = [parse_rule(text) for text in rule_texts]
    edb = Database({pred: set(rows) for pred, rows in facts.items()})
    return evaluate(rules, edb)


def assert_identical(maintained, oracle, context=""):
    for pred in set(maintained.predicates()) | set(oracle.predicates()):
        assert maintained.rows(pred) == oracle.rows(pred), (pred, context)


@pytest.mark.parametrize("seed", [5, 17, 41])
def test_randomized_fixpoint_delta_oracle(seed):
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(7)]
    facts = {"node": {(n,) for n in nodes},
             "edge": {("n0", "n1"), ("n1", "n2")}}
    fixpoint = MaterializedFixpoint(
        [parse_rule(text) for text in FIXPOINT_RULES],
        Database({pred: set(rows) for pred, rows in facts.items()}),
    )
    for step in range(60):
        added, removed = {}, {}
        for _ in range(rng.randrange(1, 4)):
            edge = (rng.choice(nodes), rng.choice(nodes))
            if edge in facts["edge"] and edge not in added.get("edge", set()):
                removed.setdefault("edge", set()).add(edge)
            else:
                added.setdefault("edge", set()).add(edge)
        if rng.random() < 0.2:
            # EDB-assert a derivable fact, or retract the assertion again
            row = (rng.choice(nodes), rng.choice(nodes))
            target = removed if row in facts.get("path", set()) else added
            target.setdefault("path", set()).add(row)
        for pred, rows in removed.items():
            facts[pred] = facts.get(pred, set()) - rows
        for pred, rows in added.items():
            facts[pred] = facts.get(pred, set()) | rows
        fixpoint.apply_delta(added, removed)
        assert_identical(fixpoint.database(),
                         rebuild(FIXPOINT_RULES, facts),
                         context=f"seed={seed} step={step}")
    # the run exercised both maintenance algorithms
    assert fixpoint.stats["delta_applies"] == 60


# ---------------------------------------------------------------------------
# Processor level: closure caches vs a replayed-from-scratch processor
# ---------------------------------------------------------------------------


def closure_surface(proc, names):
    """The full closure-query answer set over ``names``."""
    surface = {}
    for name in names:
        surface[name] = (
            proc.generalizations(name),
            proc.specializations(name),
            proc.classes_of(name),
            proc.is_class(name),
            proc.instances_of(name),
            proc.instances_of(name, direct=True),
            tuple((p.source, p.label, p.destination)
                  for p in proc.attribute_classes(name)),
        )
    return surface


@pytest.mark.parametrize("seed", [2, 13])
def test_randomized_closure_oracle_with_rollback(seed):
    rng = random.Random(seed)
    proc = PropositionProcessor()          # incremental by default
    committed = []                         # op log for the oracle rebuild
    classes, individuals, links = [], [], []

    def run(target, op):
        """Apply one op; report whether it took effect."""
        try:
            op(target)
            return True
        except (AxiomViolation, PropositionError):
            return False

    def random_op(step):
        roll = rng.random()
        if roll < 0.22 or not classes:
            name = f"C{step}"
            sups = rng.sample(classes, k=min(len(classes), rng.randrange(3)))
            return ("class", name, tuple(sups)), lambda p: p.define_class(
                name, isa=list(sups))
        if roll < 0.42:
            name, cls = f"i{step}", rng.choice(classes)
            return ("ind", name, cls), lambda p: p.tell_individual(
                name, in_class=cls)
        if roll < 0.57 and len(classes) >= 2:
            sub, sup = rng.sample(classes, 2)
            return ("isa", sub, sup), lambda p: p.tell_isa(sub, sup)
        if roll < 0.70 and individuals and classes:
            ind, cls = rng.choice(individuals), rng.choice(classes)
            return ("inst", ind, cls), lambda p: p.tell_instanceof(ind, cls)
        if roll < 0.84 and len(individuals) >= 2:
            source, destination = rng.sample(individuals, 2)
            pid = f"l{step}"
            label = rng.choice(["likes", "knows"])
            return ("link", pid, source, destination), lambda p: p.tell_link(
                source, label, destination, pid=pid)
        if links:
            victim = rng.choice(links)
            return ("retract", victim), lambda p: (
                p.retract(victim) if victim in p.store else None)
        return None, None

    for step in range(45):
        if rng.random() < 0.2 and classes:
            # savepoint: tell a few things, then roll the whole unit back
            try:
                with proc.telling():
                    for sub in range(1 + rng.randrange(2)):
                        _, op = random_op(1000 * step + sub)
                        if op is not None:
                            run(proc, op)
                    raise KeyboardInterrupt("roll back the savepoint")
            except KeyboardInterrupt:
                pass
        else:
            key, op = random_op(step)
            if op is None:
                continue
            if run(proc, op):
                committed.append(op)
                kind = key[0]
                if kind == "class":
                    classes.append(key[1])
                elif kind == "ind":
                    individuals.append(key[1])
                elif kind == "link":
                    links.append(key[1])
                elif kind == "retract" and key[1] in links:
                    links.remove(key[1])

        # oracle: a fresh non-incremental processor replaying the
        # committed log from scratch — rolled-back savepoints absent
        oracle = PropositionProcessor(optimise=False)
        for op in committed:
            run(oracle, op)
        # rolled-back savepoints burn auto-pid counter values in the
        # live processor, so compare structure, not identifiers
        def shape(processor):
            return sorted(
                (p.source, p.label, p.destination, p.is_link)
                for p in processor.store
            )
        assert shape(proc) == shape(oracle)
        names = [n for n in classes + individuals if proc.exists(n)]
        sample = names[-10:]
        assert closure_surface(proc, sample) == closure_surface(oracle, sample)

    assert proc.stats["closure_delta_applied"] > 0


# ---------------------------------------------------------------------------
# Engine level: materialised IDB vs evaluate() over the live view
# ---------------------------------------------------------------------------


ENGINE_RULES = {
    "reach_base": "attr(?x, reach, ?y) :- attr(?x, link, ?y).",
    "reach_step": "attr(?x, reach, ?z) :- attr(?x, link, ?y), attr(?y, reach, ?z).",
    "member": "attr(?x, member, Person) :- in(?x, Person).",
}


@pytest.mark.parametrize("seed", [7, 29])
def test_randomized_engine_delta_oracle(seed):
    rng = random.Random(seed)
    proc = PropositionProcessor()
    proc.define_class("Person")
    engine = RuleEngine(proc, incremental=True)
    for name, text in ENGINE_RULES.items():
        engine.add_rule(text, name=name)
    engine.materialise()

    people, links = [], []
    for index in range(6):
        name = f"u{index}"
        proc.tell_individual(name, in_class="Person")
        people.append(name)

    for step in range(40):
        roll = rng.random()
        if roll < 0.45 or not links:
            source, destination = rng.sample(people, 2)
            pid = f"lk{step}"
            proc.tell_link(source, "link", destination, pid=pid)
            links.append(pid)
        elif roll < 0.8:
            victim = links.pop(rng.randrange(len(links)))
            if victim in proc.store:
                proc.retract(victim)
        else:
            # savepoint rollback: the IDB must end exactly where it was
            try:
                with proc.telling():
                    source, destination = rng.sample(people, 2)
                    proc.tell_link(source, "link", destination,
                                   pid=f"rb{step}")
                    raise KeyboardInterrupt("roll back")
            except KeyboardInterrupt:
                pass
        maintained = engine.materialise()
        oracle = evaluate(
            list(engine.rules().values()),
            KnowledgeView(proc).database(),
        )
        assert_identical(maintained, oracle,
                         context=f"seed={seed} step={step}")

    assert engine.stats["materialisations"] == 1
    assert engine.stats["idb_refreshes"] > 0
