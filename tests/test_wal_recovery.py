"""Crash-recovery property tests for the write-ahead logged store.

The central claim of the durability layer: **whatever the crash, a
reopened store shows exactly the last committed telling** — bit-identical
``rows()``, never a partial telling.  These tests prove it by brute
force.  A seeded history of tellings (creates, links, isa, clips,
retracts, nested savepoints, deliberate rollbacks) runs twice: once
fault-free, recording ``(log_offset, rows)`` at every commit boundary —
the *oracle* — and then once per kill point under a
:class:`~repro.faults.FaultyIO` that tears the write and kills the
process at the Nth IO op.  Because record bytes depend only on the
seeded op sequence, the oracle entry with the largest offset that still
fits in the surviving file *is* the expected recovered state, exactly.

Seeded via ``FAULT_SEED`` (CI runs a small seed matrix).  When
``RECOVERY_COUNTERS`` names a file, aggregated recovery counters are
dumped there for the non-gating CI artifact.
"""

import json
import os
import random

import pytest

from repro.core.gkbms import GKBMS
from repro.errors import PersistenceError
from repro.obs.metrics import MetricError
from repro.faults import CrashPoint, FaultPlan, FaultyIO, WriteFault
from repro.propositions import PropositionProcessor, WalStore
from repro.propositions.proposition import individual
from repro.propositions.wal import scan_records
from repro.scenario.workload import DesignEvolutionWorkload

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))
KILL_POINTS = 55  # acceptance floor is 50 randomized kill points

#: Aggregated across tests, dumped by the module fixture for CI.
RECOVERY_COUNTERS = {
    "seed": FAULT_SEED, "kill_points": 0, "replayed": 0,
    "truncated_tail": 0, "checksum_failures": 0,
    "discarded_uncommitted": 0, "snapshot_fallbacks": 0, "stale_logs": 0,
}


@pytest.fixture(scope="module", autouse=True)
def recovery_report():
    yield
    target = os.environ.get("RECOVERY_COUNTERS")
    if target:
        with open(target, "w") as handle:
            json.dump(RECOVERY_COUNTERS, handle, indent=1)


def _absorb(stats):
    for key in RECOVERY_COUNTERS:
        if key in stats:
            RECOVERY_COUNTERS[key] += stats[key]


class _Abort(Exception):
    """A deliberate, caught rollback in the generated history."""


def _history_step(proc, rng, names, classes, clipped, step):
    """One telling body; returns names created at *this* level."""
    added = []
    for i in range(rng.randint(1, 4)):
        choice = rng.random()
        if choice < 0.35 or len(names) < 2:
            name = f"n{step}_{i}"
            in_class = rng.choice(classes) if rng.random() < 0.5 else None
            proc.tell_individual(name, in_class=in_class)
            added.append(name)
        elif choice < 0.55:
            a, b = rng.sample(names, 2)
            proc.tell_link(a, f"ref{step}_{i}", b)
        elif choice < 0.7:
            victim = rng.choice(names)
            names.remove(victim)
            if proc.exists(victim):
                proc.retract(victim)
        elif choice < 0.85:
            target = rng.choice(names)
            if target not in clipped and proc.exists(target):
                clipped.add(target)
                proc.clip_validity(target, step * 100 + i)
        else:
            name = f"sp{step}_{i}"
            abort = rng.random() < 0.5
            try:
                with proc.telling():  # nested savepoint
                    proc.tell_individual(name)
                    if abort:
                        raise _Abort()
            except _Abort:
                pass
            else:
                added.append(name)
    return added


def run_history(io=None, path=None, seed=FAULT_SEED, tellings=28):
    """Drive a seeded telling history over a WalStore.

    Returns ``(store, commits)`` where ``commits`` is the oracle: the
    ``(log_offset, rows)`` pair after processor bootstrap and after
    every outermost commit/abort boundary.
    """
    store = WalStore(path, fsync="commit", io=io)
    proc = PropositionProcessor(store=store)
    rng = random.Random(seed)
    names, classes, clipped = [], [], set()
    with proc.telling():
        for c in range(3):
            proc.define_class(f"Cls{c}")
            classes.append(f"Cls{c}")
        proc.tell_isa("Cls1", "Cls0")
    commits = [(store.log_offset, store.rows())]
    for step in range(tellings):
        abort = rng.random() < 0.25
        try:
            with proc.telling():
                added = _history_step(proc, rng, names, classes, clipped, step)
                if abort:
                    raise _Abort()
        except _Abort:
            pass
        else:
            names.extend(added)
        commits.append((store.log_offset, store.rows()))
    return store, commits


class TestCrashRecoveryProperty:
    def test_randomized_kill_points_recover_last_commit(self, tmp_path):
        # Fault-free reference run: the oracle, plus the IO-op range.
        probe = FaultyIO(FaultPlan(lying_fsyncs=True))
        ref = str(tmp_path / "ref.wal")
        store, commits = run_history(io=probe, path=ref)
        store.close()
        total_ops = probe.ops
        # Ops consumed before the first oracle entry (store open + kernel
        # bootstrap + the class-defining telling).
        boot = FaultyIO(FaultPlan(lying_fsyncs=True))
        boot_store = WalStore(str(tmp_path / "boot.wal"), fsync="commit",
                              io=boot)
        proc = PropositionProcessor(store=boot_store)
        with proc.telling():
            for c in range(3):
                proc.define_class(f"Cls{c}")
            proc.tell_isa("Cls1", "Cls0")
        boot_ops = boot.ops
        boot_store.close()

        candidates = range(boot_ops + 1, total_ops + 1)
        assert len(candidates) > KILL_POINTS, "history too short to sweep"
        rng = random.Random(FAULT_SEED + 999)
        kills = sorted(rng.sample(candidates, KILL_POINTS))

        for n in kills:
            path = str(tmp_path / f"kill{n}.wal")
            plan = FaultPlan(crash_at=n, torn_writes=True, lying_fsyncs=True,
                             seed=FAULT_SEED * 1000 + n)
            with pytest.raises(CrashPoint):
                crashed_store, _ = run_history(io=FaultyIO(plan), path=path)
                crashed_store.close()
            durable = os.path.getsize(path)
            expected = None
            for offset, rows in commits:
                if offset <= durable:
                    expected = rows
            assert expected is not None, f"kill {n} lost the bootstrap"
            recovered = WalStore(path)  # clean IO: the restarted process
            assert recovered.rows() == expected, (
                f"kill point {n}: recovered state is not the last commit"
            )
            _absorb(recovered.stats)
            recovered.close()
        RECOVERY_COUNTERS["kill_points"] += len(kills)

    def test_corrupted_tail_truncates_instead_of_raising(self, tmp_path):
        path = str(tmp_path / "tail.wal")
        store, commits = run_history(path=path, tellings=6)
        store.close()
        with open(path, "ab") as handle:  # garbage after the last record
            handle.write(b"\xde\xad\xbe\xef" * 5)
        recovered = WalStore(path)
        assert recovered.stats["truncated_tail"] > 0
        assert recovered.rows() == commits[-1][1]
        _absorb(recovered.stats)
        recovered.close()
        # ... and the truncation is physical: a second reopen is clean.
        again = WalStore(path)
        assert again.stats["truncated_tail"] == 0
        assert again.rows() == commits[-1][1]
        again.close()

    def test_checksum_flip_discards_the_damaged_suffix(self, tmp_path):
        path = str(tmp_path / "flip.wal")
        store = WalStore(path, fsync="commit")
        proc = PropositionProcessor(store=store)
        with proc.telling():
            proc.tell_individual("a")
            proc.tell_individual("b")
        rows_first = store.rows()
        with proc.telling():
            proc.tell_individual("c")
        store.close()
        data = open(path, "rb").read()
        records, _, corruption = scan_records(data)
        assert corruption == ""
        # Flip one byte inside the final record (t2's commit marker):
        # the whole second telling must disappear on recovery.
        last_start = records[-2][0]
        mutated = bytearray(data)
        mutated[last_start + 9] ^= 0xFF
        open(path, "wb").write(bytes(mutated))
        recovered = WalStore(path)
        assert recovered.stats["checksum_failures"] >= 1
        assert recovered.stats["truncated_tail"] >= 1
        assert recovered.rows() == rows_first
        _absorb(recovered.stats)
        recovered.close()

    def test_uncommitted_tail_is_discarded(self, tmp_path):
        path = str(tmp_path / "open.wal")
        store = WalStore(path, fsync="commit")
        before = store.rows()
        store.txn("begin")
        store.create(individual("ghost"))
        store.close()  # crash with an open transaction on disk
        recovered = WalStore(path)
        assert recovered.stats["discarded_uncommitted"] >= 1
        assert recovered.rows() == before
        assert "ghost" not in recovered
        _absorb(recovered.stats)
        recovered.close()


class TestCheckpointRecovery:
    def _build(self, io, path, tellings=4):
        store, commits = run_history(io=io, path=path, seed=7,
                                     tellings=tellings)
        return store, commits

    def test_recovery_after_checkpoint_replays_only_the_suffix(self, tmp_path):
        path = str(tmp_path / "ckpt.wal")
        store, _ = self._build(None, path)
        replayed_full = store.stats["wal_records"]
        dropped = store.checkpoint()
        assert dropped > 0
        proc = PropositionProcessor(store=store)
        with proc.telling():
            proc.tell_individual("after_ckpt")
        rows = store.rows()
        store.close()
        recovered = WalStore(path)
        assert recovered.rows() == rows
        assert recovered.generation == 1
        # Only the post-checkpoint suffix is replayed, not the history.
        assert 0 < recovered.stats["replayed"] < replayed_full
        recovered.close()

    def test_crash_anywhere_inside_checkpoint_loses_nothing(self, tmp_path):
        # Probe: ops before checkpoint, and ops checkpoint itself takes.
        probe = FaultyIO(FaultPlan(lying_fsyncs=True))
        path0 = str(tmp_path / "probe.wal")
        store, _ = self._build(probe, path0)
        base_ops = probe.ops
        rows_before = store.rows()
        store.checkpoint()
        ckpt_ops = probe.ops - base_ops
        store.close()
        assert ckpt_ops >= 3  # snapshot write, replace, new log header...

        for k in range(1, ckpt_ops + 1):
            subdir = tmp_path / f"ck{k}"
            subdir.mkdir()
            path = str(subdir / "ckpt.wal")
            plan = FaultPlan(crash_at=base_ops + k, torn_writes=True,
                             lying_fsyncs=True, seed=k)
            io = FaultyIO(plan)
            with pytest.raises(CrashPoint):
                crashed, _ = self._build(io, path)
                crashed.checkpoint()
                crashed.close()
            recovered = WalStore(path)  # clean IO
            assert recovered.rows() == rows_before, (
                f"crash at checkpoint op {k} changed the logical state"
            )
            _absorb(recovered.stats)
            recovered.close()
        RECOVERY_COUNTERS["kill_points"] += ckpt_ops

    def test_corrupt_snapshot_falls_back_to_previous(self, tmp_path):
        path = str(tmp_path / "fb.wal")
        store, _ = self._build(None, path)
        proc = PropositionProcessor(store=store)
        store.checkpoint()  # generation 1: .snapshot
        rows_gen1 = store.rows()
        with proc.telling():
            proc.tell_individual("second_era")
        store.checkpoint()  # generation 2: rotates gen-1 to .prev
        with proc.telling():
            proc.tell_individual("third_era")
        store.close()
        # Corrupt the current snapshot's payload bytes.
        data = bytearray(open(store.snapshot_path, "rb").read())
        mid = len(data) // 2
        data[mid:mid + 4] = b"ruin"
        open(store.snapshot_path, "wb").write(bytes(data))
        recovered = WalStore(path)
        # Gen-1 snapshot + a gen-2 log: the log is stale relative to the
        # snapshot we could load, so recovery degrades to generation 1.
        assert recovered.stats["snapshot_fallbacks"] == 1
        assert recovered.stats["checksum_failures"] >= 1
        assert recovered.stats["stale_logs"] == 1
        assert recovered.rows() == rows_gen1
        assert "third_era" not in recovered
        _absorb(recovered.stats)
        recovered.close()


class TestCleanFailures:
    def test_failed_append_keeps_memory_and_disk_agreeing(self, tmp_path):
        path = str(tmp_path / "fail.wal")
        probe = FaultyIO(FaultPlan(lying_fsyncs=True))
        store = WalStore(str(tmp_path / "probe.wal"), fsync="commit", io=probe)
        PropositionProcessor(store=store)
        setup_ops = probe.ops

        io = FaultyIO(FaultPlan(fail_write_at=setup_ops + 1,
                                lying_fsyncs=True))
        store = WalStore(path, fsync="commit", io=io)
        proc = PropositionProcessor(store=store)
        with pytest.raises(PersistenceError):
            proc.tell_individual("lost")
        assert not proc.exists("lost")  # memory change was undone
        prop = proc.tell_individual("kept")  # store is still usable
        assert prop.pid == "kept"
        store.close()
        recovered = WalStore(path)
        assert recovered.rows() == store.rows()
        assert "kept" in recovered and "lost" not in recovered
        recovered.close()

    def test_write_fault_is_an_oserror(self):
        assert issubclass(WriteFault, OSError)
        assert not issubclass(CrashPoint, Exception)

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            WalStore(str(tmp_path / "x.wal"), fsync="sometimes")


class TestProcessorIntegration:
    def test_processor_surfaces_store_stats_read_only(self, tmp_path):
        store = WalStore(str(tmp_path / "s.wal"))
        proc = PropositionProcessor(store=store)
        # The durability counters are visible through the processor's
        # stats view, but NOT by dict aliasing: the view is a distinct
        # object and the durable keys are read-only on it.
        assert proc.stats is not store.stats
        assert "replayed" in proc.stats and "closure_hits" in proc.stats
        assert proc.stats["wal_records"] == store.stats["wal_records"]
        with pytest.raises(MetricError):
            proc.stats["replayed"] = 99

    def test_two_processors_one_store_count_independently(self, tmp_path):
        """Regression for the PR 3 aliasing bug: two processors opened on
        the same WalStore shared one stats dict and double-counted
        closure work.  Each must now own its counters."""
        store = WalStore(str(tmp_path / "shared.wal"))
        first = PropositionProcessor(store=store)
        first.define_class("A")
        first.define_class("B", isa=["A"])
        first.specializations("A")
        assert first.stats["isa_expansions"] > 0
        second = PropositionProcessor(store=store, bootstrap=False)
        assert second.stats["isa_expansions"] == 0
        assert second.stats["closure_misses"] == 0
        before = first.stats["isa_expansions"]
        second.specializations("A")
        assert second.stats["isa_expansions"] > 0
        assert first.stats["isa_expansions"] == before  # no cross-count

    def test_reopened_processor_starts_with_fresh_closure_counters(
            self, tmp_path):
        """Regression: a processor reopened after recovery used to
        inherit the previous processor's closure numbers through the
        store's surviving stats dict."""
        path = str(tmp_path / "reopen.wal")
        store = WalStore(path)
        proc = PropositionProcessor(store=store)
        proc.define_class("Thing")
        proc.classes_of("Thing")
        assert proc.stats["closure_misses"] > 0
        store.close()
        recovered_store = WalStore(path)
        reopened = PropositionProcessor(store=recovered_store,
                                        bootstrap=False)
        assert reopened.stats["closure_misses"] == 0
        assert reopened.stats["closure_hits"] == 0
        assert reopened.stats["isa_expansions"] == 0
        # ... while the recovery counters of the *new* store are live.
        assert reopened.stats["replayed"] > 0
        recovered_store.close()

    def test_s28_workload_survives_reopen(self, tmp_path):
        path = str(tmp_path / "s28.wal")
        store = WalStore(path, fsync="never")
        gkbms = GKBMS(processor=PropositionProcessor(store=store))
        gkbms.register_standard_library()
        DesignEvolutionWorkload(seed=FAULT_SEED, steps=8).run(gkbms)
        rows = store.rows()
        assert len(rows) > 50  # the workload actually built something
        store.close()
        recovered = WalStore(path)
        assert recovered.rows() == rows
        recovered.close()
