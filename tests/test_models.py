"""Tests for the model lattice, configuration and displays."""

import pytest

from repro.errors import ModelError
from repro.models import (
    Browser,
    FormEditor,
    GraphDAGRenderer,
    MenuItem,
    ModelBase,
    RelationalDisplay,
    TextDAGBrowser,
)
from repro.objects import ObjectProcessor, RelationalView
from repro.propositions import PropositionProcessor


class TestModelBase:
    def test_define_and_closure(self):
        base = ModelBase()
        base.define_model("world")
        base.define_model("design", submodels=["world"])
        base.define_model("impl", submodels=["design"])
        assert base.closure(["impl"]) == {"impl", "design", "world"}

    def test_duplicate_model_rejected(self):
        base = ModelBase()
        base.define_model("m")
        with pytest.raises(ModelError):
            base.define_model("m")

    def test_unknown_submodel_rejected(self):
        base = ModelBase()
        with pytest.raises(ModelError):
            base.define_model("m", submodels=["ghost"])

    def test_cycle_rejected(self):
        base = ModelBase()
        base.define_model("a")
        base.define_model("b", submodels=["a"])
        with pytest.raises(ModelError):
            base.add_submodel("a", "b")

    def test_sharing(self):
        base = ModelBase()
        base.define_model("shared")
        base.define_model("left", submodels=["shared"])
        base.define_model("right", submodels=["shared"])
        assert base.sharing("left", "right") == {"shared"}

    def test_population_and_objects_of(self):
        base = ModelBase()
        base.define_model("world")
        with base.in_model("world"):
            base.processor.define_class("Meeting")
        assert "Meeting" in base.objects_of("world")

    def test_configuration_hides_inactive_models(self):
        base = ModelBase()
        base.define_model("world")
        base.define_model("design")
        with base.in_model("world"):
            base.processor.define_class("Meeting")
        with base.in_model("design"):
            base.processor.define_class("MeetingDoc")
        base.configure(["world"])
        assert base.processor.exists("Meeting")
        assert not base.processor.exists("MeetingDoc")
        base.configure(["design"])
        assert base.processor.exists("MeetingDoc")

    def test_configure_activates_submodels(self):
        base = ModelBase()
        base.define_model("world")
        base.define_model("system", submodels=["world"])
        with base.in_model("world"):
            base.processor.define_class("Meeting")
        base.configure(["system"])
        assert base.processor.exists("Meeting")

    def test_requires_workspace_store(self):
        with pytest.raises(ModelError):
            ModelBase(processor=PropositionProcessor())


class TestTextDAGBrowser:
    CHILDREN = {
        "Papers": ["Invitations", "Minutes"],
        "Invitations": ["inv1", "inv2", "inv3"],
    }

    def _browser(self, **kwargs):
        return TextDAGBrowser(
            children=lambda n: self.CHILDREN.get(n, []), **kwargs
        )

    def test_render_depth(self):
        browser = self._browser(depth=1)
        text = browser.render("Papers")
        assert "Invitations" in text
        assert "inv1" not in text

    def test_width_window_and_scrolling(self):
        browser = self._browser(depth=2, width=2)
        assert "inv3" not in browser.render("Papers")
        assert "more..." in browser.render("Papers")
        browser.scroll("Invitations", 1)
        text = browser.render("Papers")
        assert "inv2" in text and "inv3" in text and "inv1" not in text

    def test_zoom(self):
        browser = self._browser(depth=1)
        browser.zoom(depth=2)
        assert "inv1" in browser.render("Papers")

    def test_flatten(self):
        browser = self._browser(depth=2)
        assert browser.flatten("Papers") == [
            "Papers", "Invitations", "inv1", "inv2", "inv3", "Minutes"
        ]

    def test_cycle_marker(self):
        browser = TextDAGBrowser(children=lambda n: ["a"], depth=5)
        assert "(...)" in browser.render("a")


class TestGraphDAGRenderer:
    def _graph(self):
        g = GraphDAGRenderer()
        g.add_edge("Invitations", "input_to", "DecMoveDown")
        g.add_edge("DecMoveDown", "output", "InvitationRel")
        g.add_edge("DecMoveDown", "by", "MapTool")
        return g

    def test_layers(self):
        layers = self._graph().layers()
        assert layers[0] == ["Invitations"]
        assert layers[1] == ["DecMoveDown"]
        assert set(layers[2]) == {"InvitationRel", "MapTool"}

    def test_dot_output(self):
        dot = self._graph().to_dot()
        assert '"Invitations" -> "DecMoveDown" [label="input_to"];' in dot
        assert dot.startswith("digraph")

    def test_highlight_in_ascii(self):
        g = self._graph()
        g.highlight.add("InvitationRel")
        assert "[InvitationRel]" in g.to_ascii()

    def test_persistent_layout(self):
        g = self._graph()
        g.place("MapTool", 3, 4)
        assert g.position("MapTool") == (3, 4)
        assert 'pos="3,4!"' in g.to_dot()

    def test_duplicate_edges_ignored(self):
        g = self._graph()
        before = len(g.edges)
        g.add_edge("Invitations", "input_to", "DecMoveDown")
        assert len(g.edges) == before

    def test_neighbours(self):
        g = self._graph()
        near = g.neighbours("DecMoveDown")
        assert ("input_to", "Invitations") in near["in"]
        assert ("output", "InvitationRel") in near["out"]

    def test_cycle_layering_terminates(self):
        g = GraphDAGRenderer()
        g.add_edge("a", "x", "b")
        g.add_edge("b", "x", "a")
        assert g.layers()  # no infinite loop


@pytest.fixture
def populated_objects():
    op = ObjectProcessor()
    op.propositions.define_class("TDL_EntityClass", level="MetaClass")
    op.tell("TELL Person IN TDL_EntityClass END")
    op.tell(
        """
        TELL Invitation IN TDL_EntityClass WITH
          attribute sender : Person
          attribute receiver : Person
        END
        """
    )
    op.tell("TELL ann IN Person END")
    op.tell("TELL eva IN Person END")
    op.tell(
        """
        TELL inv1 IN Invitation WITH
          receiver receiver : ann
          receiver receiver : eva
        END
        """
    )
    return op


class TestRelationalDisplay:
    def test_nf2_rendering(self, populated_objects):
        display = RelationalDisplay(RelationalView(populated_objects.propositions))
        text = display.render("Invitation")
        assert "{ann,eva}" in text
        assert "object" in text

    def test_first_normal_form_explodes_sets(self, populated_objects):
        display = RelationalDisplay(RelationalView(populated_objects.propositions))
        text = display.render("Invitation", first_normal_form=True)
        lines = [ln for ln in text.splitlines() if "ann" in ln or "eva" in ln]
        assert len(lines) == 2  # one row per receiver

    def test_column_width_clipping(self, populated_objects):
        display = RelationalDisplay(RelationalView(populated_objects.propositions))
        display.set_column_width("receiver", 4)
        assert "{an~" in display.render("Invitation")

    def test_scrolling(self, populated_objects):
        display = RelationalDisplay(
            RelationalView(populated_objects.propositions), page_size=1
        )
        populated_objects.tell("TELL inv2 IN Invitation END")
        first_page = display.page("Invitation")
        display.scroll_to(1)
        second_page = display.page("Invitation")
        assert first_page != second_page
        assert len(first_page) == len(second_page) == 1


class TestFormEditor:
    def test_load_and_render(self, populated_objects):
        editor = FormEditor(populated_objects)
        form = editor.load("inv1")
        assert form.fields["receiver"] == {"ann", "eva"}
        assert "inv1" in form.render()

    def test_save_minimal_diff(self, populated_objects):
        editor = FormEditor(populated_objects)
        form = editor.load("inv1")
        form.remove_value("receiver", "eva")
        form.add_value("sender", "ann")
        result = editor.save(form)
        assert result == {"added": 1, "retracted": 1}
        assert populated_objects.attribute_values("inv1", "receiver") == ["ann"]
        assert populated_objects.attribute_values("inv1", "sender") == ["ann"]

    def test_noop_save(self, populated_objects):
        editor = FormEditor(populated_objects)
        form = editor.load("inv1")
        assert editor.save(form) == {"added": 0, "retracted": 0}

    def test_load_unknown(self, populated_objects):
        editor = FormEditor(populated_objects)
        with pytest.raises(Exception):
            editor.load("ghost")


class TestBrowser:
    def _browser(self):
        def provider(focus):
            return [
                MenuItem(
                    "map",
                    submenu=(
                        MenuItem("move-down", action=lambda: f"mapped {focus}"),
                        MenuItem("distribute", action=lambda: "dist"),
                    ),
                ),
                MenuItem("boom", action=self._explode),
            ]

        return Browser(menu_provider=provider)

    @staticmethod
    def _explode():
        raise RuntimeError("tool failed")

    def test_focus_and_history(self):
        browser = self._browser()
        browser.focus_on("Papers")
        browser.focus_on("Invitations")
        assert browser.focus == "Invitations"
        assert browser.back() == "Papers"
        assert browser.back() is None

    def test_menu_and_selection(self):
        browser = self._browser()
        browser.focus_on("Invitations")
        assert browser.select(["map", "move-down"]) == "mapped Invitations"

    def test_render_menu(self):
        browser = self._browser()
        browser.focus_on("Invitations")
        text = browser.render_menu()
        assert "- map" in text and "- move-down" in text

    def test_bad_menu_path(self):
        browser = self._browser()
        browser.focus_on("x")
        with pytest.raises(ModelError):
            browser.select(["nope"])
        with pytest.raises(ModelError):
            browser.select(["map"])  # no action on non-leaf

    def test_error_recovery_restores_focus(self):
        browser = self._browser()
        browser.focus_on("a")
        browser.focus_on("b")
        with pytest.raises(RuntimeError):
            browser.select(["boom"])
        assert browser.focus == "b"
        assert browser.history == ["a"]

    def test_focus_on_unknown_rejected(self):
        browser = Browser(menu_provider=lambda f: [], exists=lambda n: n == "ok")
        with pytest.raises(ModelError):
            browser.focus_on("missing")
        browser.focus_on("ok")
