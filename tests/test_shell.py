"""Tests for the GKBMS shell (scripted, via run_commands)."""


from repro.shell import GKBMSShell, run_commands

DESIGN_INLINE = (
    "design entity class Things with ; owner : Things ; end ; "
    "entity class Gadgets isa Things with ; battery : Things ; end"
)


def test_design_and_objects():
    out = run_commands([DESIGN_INLINE, "objects design"])
    assert "design loaded" in out[0]
    assert "Gadgets" in out[1] and "Things" in out[1]


def test_menu_and_map_and_frames():
    out = run_commands([
        DESIGN_INLINE,
        "menu Things",
        "map DecMoveDown hierarchy=Things MoveDownMapper",
        "frames",
    ])
    assert "DecMoveDown" in out[1]
    assert "executed dec1" in out[2]
    assert "GadgetRel = RELATION" in out[3]


def test_deps_explain_history():
    out = run_commands([
        DESIGN_INLINE,
        "map DecMoveDown hierarchy=Things MoveDownMapper",
        "deps",
        "explain GadgetRel",
        "explain dec1",
        "history",
    ])
    assert "hierarchy" in out[2]
    assert "justified by dec1" in out[3]
    assert "execution of decision class DecMoveDown" in out[4]
    assert "created" in out[5]


def test_backtrack_and_versions_and_configure():
    out = run_commands([
        DESIGN_INLINE,
        "map DecMoveDown hierarchy=Things MoveDownMapper",
        "versions GadgetRel",
        "backtrack dec1",
        "configure implementation",
    ])
    assert "ACTIVE" in out[2]
    assert "retracted ['dec1']" in out[3]
    assert "missing: Things" in out[4]


def test_obligations_and_sign():
    out = run_commands([
        DESIGN_INLINE,
        "map DecMoveDown hierarchy=Things MoveDownMapper",
        "obligations",
        "map DecNormalize relation=GadgetRel Normalizer",
        "obligations",
    ])
    assert out[2] == "no open obligations"
    assert "error" in out[3]  # no set-valued field: decision fails cleanly
    # failed decision left nothing behind
    assert out[4] == "no open obligations"


def test_save_and_load(tmp_path):
    path = str(tmp_path / "state.json")
    out = run_commands([
        DESIGN_INLINE,
        "map DecMoveDown hierarchy=Things MoveDownMapper",
        f"save {path}",
    ])
    assert "saved" in out[2]
    out2 = run_commands([f"load {path}", "objects implementation"])
    assert "loaded" in out2[0]
    assert "GadgetRel" in out2[1]


def test_error_recovery_keeps_session():
    shell = GKBMSShell()
    assert "error" in shell.execute("map NoSuchDecision x=y")
    assert "error" in shell.execute("wibble")
    assert "unterminated" in shell.execute('menu "unclosed') or "error" in (
        shell.execute('menu "unclosed')
    )
    # the session still works afterwards
    assert "design loaded" in shell.execute(DESIGN_INLINE)


def test_usage_messages():
    out = run_commands([
        "menu",
        "map DecMoveDown",
        "versions",
        "explain",
        "backtrack",
        "sign x",
        "save",
        "load",
    ])
    assert all("usage:" in line or "error" in line for line in out)


def test_help_quit_and_comments():
    shell = GKBMSShell()
    assert "commands:" in shell.execute("help")
    assert shell.execute("# a comment") == ""
    assert shell.execute("") == ""
    assert shell.execute("quit") == "bye"
    assert shell.done


def test_extend_design_second_call():
    out = run_commands([
        DESIGN_INLINE,
        "design entity class Widgets isa Things with ; mass : Things ; end",
    ])
    assert "extended design: Widgets" in out[1]
