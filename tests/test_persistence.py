"""Tests for proposition serialisation and GKBMS persistence."""

import json

import pytest

from repro.errors import GKBMSError, PropositionError
from repro.core import GKBMS
from repro.core.persistence import (
    load_from_file,
    load_gkbms,
    save_gkbms,
    save_to_file,
)
from repro.propositions import PropositionProcessor
from repro.propositions.serialization import (
    dump_processor,
    dumps,
    load_processor,
    loads,
    proposition_from_json,
    proposition_to_json,
)
from repro.scenario import MeetingScenario
from repro.timecalc import Interval


class TestPropositionSerialization:
    def test_roundtrip_plain(self):
        proc = PropositionProcessor()
        proc.define_class("Doc")
        proc.tell_individual("d1", in_class="Doc")
        proc.tell_link("d1", "title", "Doc")
        restored = loads(dumps(proc))
        assert restored.exists("d1")
        assert restored.is_instance_of("d1", "Doc")
        assert {p.pid for p in restored.store} == {p.pid for p in proc.store}

    def test_intervals_survive(self):
        proc = PropositionProcessor()
        proc.define_class("Doc")
        proc.tell_individual("d1", in_class="Doc",
                             time=Interval.from_ticks(3, 9))
        restored = loads(dumps(proc))
        prop = restored.get("d1")
        assert prop.time.contains_point(5)
        assert not prop.time.contains_point(9)

    def test_open_interval_survives(self):
        proc = PropositionProcessor()
        proc.tell_individual("v", time=Interval.since(7))
        restored = loads(dumps(proc))
        assert restored.get("v").time.contains_point(10**9)

    def test_kernel_not_dumped_but_reconstructed(self):
        proc = PropositionProcessor()
        data = dump_processor(proc)
        assert all(
            item["pid"] != "InstanceOf_omega"
            for item in data["propositions"]
        )
        restored = load_processor(data)
        assert restored.exists("InstanceOf_omega")

    def test_validated_load_orders_dependencies(self):
        proc = PropositionProcessor()
        proc.define_class("Doc")
        proc.tell_individual("d1", in_class="Doc")
        data = dump_processor(proc)
        # shuffle: links first
        data["propositions"].sort(key=lambda item: item["pid"])
        restored = load_processor(data, validate=True)
        assert restored.is_instance_of("d1", "Doc")

    def test_validated_load_rejects_dangling(self):
        data = {
            "format": 1,
            "propositions": [
                {"pid": "x", "source": "ghost", "label": "l",
                 "destination": "ghost"},
            ],
        }
        with pytest.raises(PropositionError):
            load_processor(data, validate=True)

    def test_bad_format_rejected(self):
        with pytest.raises(PropositionError):
            load_processor({"format": 99, "propositions": []})

    def test_single_proposition_roundtrip(self):
        from repro.propositions import link

        prop = link("p", "a", "l", "b", time=Interval.from_ticks(1, 2))
        assert proposition_from_json(proposition_to_json(prop)) == prop


class TestGKBMSPersistence:
    @pytest.fixture(scope="class")
    def dump(self):
        scenario = MeetingScenario().run_all()
        return save_gkbms(scenario.gkbms), scenario

    def test_dump_is_json_compatible(self, dump):
        data, _scenario = dump
        assert json.loads(json.dumps(data)) == data

    def test_module_restored(self, dump):
        data, scenario = dump
        restored = load_gkbms(json.loads(json.dumps(data)))
        assert sorted(restored.module.names()) == sorted(
            scenario.gkbms.module.names()
        )
        assert restored.module.relations["InvitationRel2"].key == (
            "paperkey",
        )

    def test_history_restored(self, dump):
        data, scenario = dump
        restored = load_gkbms(json.loads(json.dumps(data)))
        assert restored.decisions.order == scenario.gkbms.decisions.order
        keys_did = scenario.records["keys"].did
        assert restored.decisions.records[keys_did].is_retracted
        assert restored.decisions.records[keys_did].assumptions == [
            "OnlyInvitationsArePapers"
        ]

    def test_services_work_on_restored_state(self, dump):
        data, _scenario = dump
        restored = load_gkbms(json.loads(json.dumps(data)))
        config = restored.versions().configure("implementation")
        assert config.complete
        graph = restored.dependency_graph(include_retracted=True)
        assert graph.nodes()
        text = restored.explainer().explain_object("InvitationRel2")
        assert "justified by" in text

    def test_decision_ids_continue(self, dump):
        data, _scenario = dump
        restored = load_gkbms(json.loads(json.dumps(data)))
        before = set(restored.decisions.order)
        record = restored.execute(
            "DecMapTransaction", {"transaction": "SendInvitation"},
            tool="TransactionMapper",
        )
        assert record.did not in before

    def test_backtracking_works_after_reload(self, dump):
        data, _scenario = dump
        restored = load_gkbms(json.loads(json.dumps(data)))
        victim = [
            did for did in restored.decisions.order
            if not restored.decisions.records[did].is_retracted
        ][-1]
        report = restored.backtracker.retract(victim)
        assert victim in report.retracted_decisions

    def test_file_roundtrip(self, dump, tmp_path):
        data, scenario = dump
        path = tmp_path / "gkbms.json"
        save_to_file(scenario.gkbms, str(path))
        restored = load_from_file(str(path))
        assert restored.clock == scenario.gkbms.clock

    def test_unknown_decision_class_rejected(self, dump):
        data, _scenario = dump
        mutated = json.loads(json.dumps(data))
        mutated["decisions"][0]["decision_class"] = "DecFromTheFuture"
        with pytest.raises(GKBMSError):
            load_gkbms(mutated)

    def test_bad_format_rejected(self):
        with pytest.raises(GKBMSError):
            load_gkbms({"format": 99})

    def test_retired_stacks_restored(self, dump):
        data, scenario = dump
        restored = load_gkbms(json.loads(json.dumps(data)))
        # normalisation retired the unnormalised InvitationRel
        assert "InvitationRel" in restored._retired
        restored.restore_artifact("InvitationRel")
        assert "InvitationRel" in restored.module.relations


class TestSingleRelationStrategy:
    @pytest.fixture
    def gkbms(self):
        g = GKBMS()
        g.register_standard_library()
        g.import_design(
            """
            entity class Items with
              owner : Items
            end
            entity class Books isa Items with
              author : Items
            end
            entity class Journals isa Items with
              volume : Items
            end
            """
        )
        return g

    def test_universal_relation(self, gkbms):
        record = gkbms.execute(
            "DecSingleRelation", {"hierarchy": "Items"},
            tool="SingleRelationMapper",
        )
        rel = gkbms.module.relations["ItemsAllRel"]
        assert rel.field_names() == [
            "paperkey", "kind", "owner", "author", "volume",
        ]
        assert set(record.outputs["constructors"]) == {
            "OnlyItems", "OnlyBooks", "OnlyJournals",
        }

    def test_views_discriminate(self, gkbms):
        gkbms.execute("DecSingleRelation", {"hierarchy": "Items"},
                      tool="SingleRelationMapper")
        db = gkbms.build_database()
        with db.transaction():
            db.relation("ItemsAllRel").insert(
                {"paperkey": "b1", "kind": "Books", "owner": "o",
                 "author": "knuth"}
            )
            db.relation("ItemsAllRel").insert(
                {"paperkey": "j1", "kind": "Journals", "owner": "o",
                 "volume": "42"}
            )
        books = db.rows("OnlyBooks")
        assert [row["paperkey"] for row in books] == ["b1"]
        everything = db.rows("OnlyItems")
        assert {row["paperkey"] for row in everything} == {"b1", "j1"}

    def test_backtrackable(self, gkbms):
        record = gkbms.execute(
            "DecSingleRelation", {"hierarchy": "Items"},
            tool="SingleRelationMapper",
        )
        gkbms.backtracker.retract(record.did)
        assert "ItemsAllRel" not in gkbms.module.relations
        assert not gkbms.processor.exists("OnlyBooks")

    def test_menu_offers_all_three_strategies(self, gkbms):
        names = [
            dc.name
            for dc, _r, _t in gkbms.decisions.applicable_decisions("Items")
        ]
        assert {"DecMoveDown", "DecDistribute", "DecSingleRelation"} <= set(
            names
        )


class TestAtomicSave:
    """Regression: a failed save must never clobber the previous dump."""

    @pytest.fixture
    def saved(self, tmp_path):
        gkbms = GKBMS()
        gkbms.register_standard_library()
        path = str(tmp_path / "state.json")
        save_to_file(gkbms, path)
        return gkbms, path

    def test_unserialisable_state_leaves_old_file_intact(self, saved):
        gkbms, path = saved
        before = open(path, "rb").read()
        gkbms._assumptions["poison"] = object()  # not JSON-serialisable
        with pytest.raises(TypeError):
            save_to_file(gkbms, path)
        assert open(path, "rb").read() == before
        load_from_file(path)  # still loadable

    def test_failed_write_leaves_old_file_intact(self, saved):
        from repro.faults import FaultPlan, FaultyIO, WriteFault

        gkbms, path = saved
        before = open(path, "rb").read()
        with pytest.raises(WriteFault):
            save_to_file(gkbms, path, io=FaultyIO(FaultPlan(fail_write_at=1)))
        assert open(path, "rb").read() == before
        load_from_file(path)

    def test_no_tmp_file_left_behind(self, saved, tmp_path):
        gkbms, path = saved
        gkbms._assumptions["poison"] = object()
        with pytest.raises(TypeError):
            save_to_file(gkbms, path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["state.json"]
