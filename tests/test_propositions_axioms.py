"""Tests for the CML axiom base and the kernel bootstrap."""

import pytest

from repro.errors import AxiomViolation
from repro.propositions import (
    AxiomBase,
    BOOTSTRAP,
    CMLAxiom,
    PropositionProcessor,
)
from repro.propositions.axioms import KERNEL_PIDS


@pytest.fixture
def proc():
    return PropositionProcessor()


class TestBootstrap:
    def test_kernel_present(self, proc):
        for name in ("Proposition", "Class", "SimpleClass", "Attribute"):
            assert proc.exists(name)

    def test_omega_instanceof_is_itself_a_link(self, proc):
        omega = proc.get("InstanceOf_omega")
        assert omega.is_instanceof
        assert omega.source == "Proposition"
        assert omega.destination == "Class"

    def test_levels_are_classes(self, proc):
        for level in ("Token", "SimpleClass", "MetaClass", "MetametaClass"):
            assert proc.is_class(level)

    def test_axioms_reflected_as_propositions(self, proc):
        assert proc.exists("Axiom_reference")
        assert proc.exists("Axiom_attribute_typing")

    def test_bootstrap_is_self_consistent(self):
        # Every bootstrap link's endpoints are themselves bootstrapped.
        pids = {p.pid for p in BOOTSTRAP}
        for prop in BOOTSTRAP:
            if prop.is_link:
                assert prop.source in pids
                assert prop.destination in pids


class TestReferenceAxiom:
    def test_dangling_link_rejected(self, proc):
        with pytest.raises(AxiomViolation) as exc:
            proc.tell_link("ghost", "attr", "Class")
        assert exc.value.axiom == "reference"

    def test_individuals_always_allowed(self, proc):
        proc.tell_individual("thing")
        assert proc.exists("thing")


class TestIsaAxiom:
    def test_cycle_rejected(self, proc):
        proc.define_class("A")
        proc.define_class("B", isa=["A"])
        proc.define_class("C", isa=["B"])
        with pytest.raises(AxiomViolation) as exc:
            proc.tell_isa("A", "C")
        assert exc.value.axiom == "isa_acyclic"

    def test_reflexive_isa_allowed(self, proc):
        proc.define_class("A")
        proc.tell_isa("A", "A")  # harmless


class TestInstanceofAxiom:
    def test_instanceof_non_class_rejected(self, proc):
        proc.tell_individual("pebble", in_class="Token")
        proc.tell_individual("rock", in_class="Token")
        with pytest.raises(AxiomViolation) as exc:
            proc.tell_instanceof("rock", "pebble")
        assert exc.value.axiom == "instanceof_class"

    def test_attribute_class_counts_as_class(self, proc):
        proc.define_class("Doc")
        proc.define_class("Person")
        proc.tell_link("Doc", "author", "Person", pid="Doc.author",
                       of_class="Attribute")
        proc.tell_individual("d1", in_class="Doc")
        proc.tell_individual("per1", in_class="Person")
        # classifying a link under the attribute class is allowed
        proc.tell_link("d1", "author", "per1", of_class="Doc.author")


class TestAttributeTypingAxiom:
    def setup_class(cls):
        pass

    def test_instantiation_principle_enforced(self, proc):
        proc.define_class("Doc")
        proc.define_class("Person")
        proc.define_class("Machine")
        proc.tell_link("Doc", "author", "Person", pid="Doc.author",
                       of_class="Attribute")
        proc.tell_individual("d1", in_class="Doc")
        proc.tell_individual("m1", in_class="Machine")
        with pytest.raises(AxiomViolation) as exc:
            proc.tell_link("d1", "author", "m1", of_class="Doc.author")
        assert exc.value.axiom == "attribute_typing"

    def test_inherited_source_accepted(self, proc):
        proc.define_class("Paper")
        proc.define_class("Invitation", isa=["Paper"])
        proc.define_class("Person")
        proc.tell_link("Paper", "author", "Person", pid="Paper.author",
                       of_class="Attribute")
        proc.tell_individual("inv", in_class="Invitation")
        proc.tell_individual("bob", in_class="Person")
        # inv is a Paper through isa, so the inherited attribute applies
        proc.tell_link("inv", "author", "bob", of_class="Paper.author")


class TestKernelProtection:
    def test_kernel_cannot_be_redefined(self, proc):
        from repro.propositions import individual

        with pytest.raises(Exception):
            proc.create_proposition(individual("Proposition"))

    def test_kernel_cannot_be_retracted(self, proc):
        from repro.errors import PropositionError

        for pid in list(KERNEL_PIDS)[:3]:
            with pytest.raises(PropositionError):
                proc.retract(pid)


class TestAxiomBase:
    def test_disable_enable(self, proc):
        proc.axioms.disable("reference")
        proc.tell_link("ghost", "attr", "Class")  # now allowed
        proc.axioms.enable("reference")
        with pytest.raises(AxiomViolation):
            proc.tell_link("ghost2", "attr", "Class")

    def test_unknown_axiom_toggles_rejected(self, proc):
        with pytest.raises(AxiomViolation):
            proc.axioms.disable("gravity")
        with pytest.raises(AxiomViolation):
            proc.axioms.enable("gravity")

    def test_custom_axiom_registration(self, proc):
        def no_foo(processor, prop):
            if prop.label == "foo":
                return "label foo is forbidden"
            return None

        proc.axioms.register(CMLAxiom("no_foo", "forbids foo labels", no_foo))
        proc.tell_individual("a")
        proc.tell_individual("b")
        with pytest.raises(AxiomViolation) as exc:
            proc.tell_link("a", "foo", "b")
        assert exc.value.axiom == "no_foo"

    def test_names_listing(self):
        base = AxiomBase()
        assert "reference" in base.names()
        assert base.is_enabled("reference")
