"""Coverage for GKBMS facade odds and ends and the error hierarchy."""

import pytest

import repro.errors as errors
from repro.core import GKBMS
from repro.errors import GKBMSError
from repro.scenario import MeetingScenario


@pytest.fixture
def gkbms():
    g = GKBMS()
    g.register_standard_library()
    g.import_design(
        """
        entity class Things with
          owner : Things
        end
        entity class Gadgets isa Things with
          battery : Things
        end
        """
    )
    return g


class TestArtifactManagement:
    def test_restore_without_retired_version(self, gkbms):
        with pytest.raises(GKBMSError):
            gkbms.restore_artifact("Nothing")

    def test_unrevise_without_earlier_version(self, gkbms):
        with pytest.raises(GKBMSError):
            gkbms.unrevise_artifact("Nothing")

    def test_drop_unknown_artifact_is_noop(self, gkbms):
        gkbms.drop_artifact("Nothing")  # must not raise

    def test_artifact_kb_class(self, gkbms):
        gkbms.execute("DecMoveDown", {"hierarchy": "Things"},
                      tool="MoveDownMapper")
        assert gkbms.artifact_kb_class("GadgetRel") == "DBPL_Rel"
        assert gkbms.artifact_kb_class("Nothing") is None

    def test_register_source_unknown_object(self, gkbms):
        with pytest.raises(GKBMSError):
            gkbms.register_source("Ghost", "file.dbpl")

    def test_register_source_token_reused(self, gkbms):
        gkbms.execute("DecMoveDown", {"hierarchy": "Things"},
                      tool="MoveDownMapper")
        token1 = gkbms.register_source("GadgetRel", "x.dbpl")
        token2 = gkbms.register_source("ConsThings", "x.dbpl")
        assert token1 == token2  # same external source, one token

    def test_snapshot_restore_roundtrip(self, gkbms):
        gkbms.execute("DecMoveDown", {"hierarchy": "Things"},
                      tool="MoveDownMapper")
        snapshot = gkbms.snapshot_artifacts()
        gkbms.drop_artifact("GadgetRel")
        assert "GadgetRel" not in gkbms.module.relations
        gkbms.restore_artifacts(snapshot)
        assert "GadgetRel" in gkbms.module.relations


class TestAssumptions:
    def test_unchecked_assumption_never_violated(self, gkbms):
        gkbms.assume("JustAVibe")
        assert gkbms.violated_assumptions() == []

    def test_global_assumption_checked_without_decisions(self, gkbms):
        gkbms.assume("NoGadgets",
                     "not (exists g/TDL_EntityClass (g = Gadgets))")
        assert gkbms.violated_assumptions() == ["NoGadgets"]


class TestNavigationMisc:
    def test_menu_action_executes_decision(self, gkbms):
        nav = gkbms.navigator()
        items = nav.menu_for("Things")
        move_down = next(i for i in items if i.title == "DecMoveDown")
        tool_item = next(s for s in move_down.submenu
                         if s.title == "MoveDownMapper")
        record = tool_item.action()
        assert record.decision_class == "DecMoveDown"

    def test_levels_listing(self, gkbms):
        nav = gkbms.navigator()
        assert nav.levels() == ["design", "implementation", "requirements"]

    def test_justification_of_underived(self, gkbms):
        nav = gkbms.navigator()
        assert nav.justification_of("Things") is None

    def test_level_of_via_navigator(self, gkbms):
        assert gkbms.navigator().level_of("Things") == "design"


class TestExplanationMisc:
    def test_trace_of_underived_object(self, gkbms):
        text = gkbms.explainer().trace("Things")
        assert text.strip() == "Things"

    def test_explain_directly_told_object(self, gkbms):
        text = gkbms.explainer().explain_object("Things")
        assert "told directly" in text

    def test_explain_unknown_decision(self, gkbms):
        with pytest.raises(GKBMSError):
            gkbms.explainer().explain_decision("dec999")
        with pytest.raises(GKBMSError):
            gkbms.explainer().why_retracted("dec999")

    def test_explain_manual_decision(self, gkbms):
        gkbms.processor.tell_individual("HandMade", in_class="DBPL_Rel")
        record = gkbms.execute(
            "DBPL_MappingDec", {"source": "Things"},
            outputs={"result": ["HandMade"]}, actor="rose",
        )
        text = gkbms.explainer().explain_object("HandMade")
        assert "executed manually by rose" in text


class TestScenarioMisc:
    def test_unknown_strategy_rejected(self):
        scenario = MeetingScenario().setup()
        with pytest.raises(ValueError):
            scenario.map_hierarchy("teleport")

    def test_distribute_path(self):
        scenario = MeetingScenario().setup()
        record = scenario.map_hierarchy("distribute")
        assert record.decision_class == "DecDistribute"

    def test_world_model_time_network(self):
        scenario = MeetingScenario().setup()
        from repro.timecalc import AllenRelation

        relations = scenario.gkbms.world_time.network.relations(
            "invite", "meet"
        )
        assert relations == frozenset({AllenRelation.BEFORE})


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_consistency_error_carries_violations(self):
        err = errors.ConsistencyError("C1", ["v1", "v2"])
        assert err.constraint == "C1"
        assert err.violations == ["v1", "v2"]

    def test_axiom_violation_carries_axiom(self):
        err = errors.AxiomViolation("reference", "dangling")
        assert err.axiom == "reference"
        assert "reference" in str(err)

    def test_assertion_syntax_error_position(self):
        err = errors.AssertionSyntaxError("bad token", position=7)
        assert "offset 7" in str(err)
