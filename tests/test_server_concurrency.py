"""Concurrency tests: multi-threaded service traffic checked against a
fault-free single-threaded oracle.

The oracle protocol: the commit pipeline keeps the accepted commit log
(sequence, session, staged ops).  Replaying exactly those ops, in
exactly that order, into a fresh single-threaded ConceptBase must
reproduce the live store bit-for-bit (``rows()`` equality) — if any
interleaving tore a commit, leaked an aborted overlay, or double-applied
a batch entry, the serialized states diverge."""

import threading

import pytest

from repro.conceptbase import ConceptBase
from repro.errors import CommitConflict
from repro.scenario.workload import ConcurrentLoadGenerator
from repro.server.client import LocalClient
from repro.server.service import GKBMSService

THREADS = 8
OPS_PER_THREAD = 30


def replay_oracle(commit_log):
    """Apply an accepted commit log single-threaded, in order."""
    oracle = ConceptBase()
    for _seq, _sid, ops in commit_log:
        with oracle.transaction():
            for kind, arg in ops:
                if kind == "tell":
                    oracle.tell(arg)
                else:
                    oracle.untell(arg)
    return oracle


@pytest.fixture
def loaded_service():
    """A service that has survived the seeded 8-thread mixed workload."""
    service = GKBMSService(batch_window=0.002)
    generator = ConcurrentLoadGenerator(
        client_factory=lambda: LocalClient(service),
        threads=THREADS,
        ops_per_thread=OPS_PER_THREAD,
        seed=42,
    )
    stats = generator.run()
    yield service, stats
    service.close()


class TestStressVersusOracle:
    def test_no_unexpected_errors(self, loaded_service):
        _service, stats = loaded_service
        assert stats.unexpected_errors == 0
        assert stats.requests > THREADS * OPS_PER_THREAD / 2

    def test_final_state_matches_single_threaded_oracle(self, loaded_service):
        service, _stats = loaded_service
        log = service.pipeline.commit_log()
        assert len(log) > 0
        assert [entry[0] for entry in log] == list(range(1, len(log) + 1))
        oracle = replay_oracle(log)
        assert (oracle.propositions.store.rows()
                == service.cb.propositions.store.rows())
        assert oracle.summary() == service.cb.summary()

    def test_zero_torn_reads(self, loaded_service):
        service, _stats = loaded_service
        snapshot = service.registry.snapshot()
        assert snapshot["server.torn_reads"] == 0

    def test_group_commit_batched_under_load(self, loaded_service):
        service, _stats = loaded_service
        batch = service.registry.snapshot()["server.commit.batch_size"]
        assert batch["count"] > 0
        # The acceptance bar: commits actually grouped, not serialized
        # one fsync each.
        assert batch["mean"] > 1.0

    def test_conflicts_happened_and_were_counted(self, loaded_service):
        service, stats = loaded_service
        snapshot = service.registry.snapshot()
        # The hot-key transactions guarantee real write-write races.
        assert stats.conflicts > 0
        assert snapshot["server.commit.conflicts"] == stats.conflicts


class TestTargetedRaces:
    def test_concurrent_sessions_share_committed_state(self):
        service = GKBMSService(batch_window=0.001)
        try:
            primer = LocalClient(service)
            primer.tell("TELL Doc IN SimpleClass END")

            def worker(wid):
                client = LocalClient(service)
                for n in range(10):
                    client.tell(f"TELL W{wid}n{n} IN Doc END")
                client.close()

            threads = [
                threading.Thread(target=worker, args=(wid,))
                for wid in range(THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(primer.instances("Doc")) == THREADS * 10
            oracle = replay_oracle(service.pipeline.commit_log())
            assert (oracle.propositions.store.rows()
                    == service.cb.propositions.store.rows())
        finally:
            service.close()

    def test_racing_transactions_one_winner_per_round(self):
        service = GKBMSService(batch_window=0.0)
        try:
            primer = LocalClient(service)
            primer.tell("TELL Doc IN SimpleClass END")
            outcomes = []
            lock = threading.Lock()
            rounds = 6
            barriers = [threading.Barrier(2, timeout=10)
                        for _ in range(rounds)]

            def racer():
                client = LocalClient(service)
                for r in range(rounds):
                    barriers[r].wait()
                    client.begin()
                    client.tell(f"TELL Contended{r} IN Doc END")
                    try:
                        client.commit()
                        with lock:
                            outcomes.append((r, "win"))
                    except CommitConflict:
                        with lock:
                            outcomes.append((r, "conflict"))
                client.close()

            threads = [threading.Thread(target=racer) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for r in range(rounds):
                per_round = [o for rr, o in outcomes if rr == r]
                # Every round has a winner; conflicts only ever remove
                # the second committer, never both.
                assert "win" in per_round
            oracle = replay_oracle(service.pipeline.commit_log())
            assert (oracle.propositions.store.rows()
                    == service.cb.propositions.store.rows())
        finally:
            service.close()

    def test_readers_run_during_writes_without_tearing(self):
        service = GKBMSService(batch_window=0.001)
        try:
            primer = LocalClient(service)
            primer.tell("TELL Doc IN SimpleClass END")
            stop = threading.Event()
            seen = []

            def reader():
                client = LocalClient(service)
                while not stop.is_set():
                    seen.append(len(client.instances("Doc")))
                client.close()

            readers = [threading.Thread(target=reader) for _ in range(4)]
            for t in readers:
                t.start()
            for n in range(30):
                primer.tell(f"TELL R{n} IN Doc END")
            stop.set()
            for t in readers:
                t.join(timeout=10)
            # Reads observed monotonically growing prefixes, never a
            # half-applied commit, and the structural witness agrees.
            assert max(seen) <= 30
            snapshot = service.registry.snapshot()
            assert snapshot["server.torn_reads"] == 0
        finally:
            service.close()
