"""Tests for query classes (queries with computed extents)."""

import pytest

from repro import ConceptBase
from repro.errors import ReproError
from repro.queries import QueryCatalog


@pytest.fixture
def cb():
    conceptbase = ConceptBase()
    conceptbase.define_metaclass("TDL_EntityClass")
    conceptbase.tell(
        """
        TELL Person IN TDL_EntityClass END

        TELL Invitation IN TDL_EntityClass WITH
          attribute sender : Person
          attribute sent : Person
        END
        """
    )
    conceptbase.tell("TELL bob IN Person END")
    conceptbase.tell(
        """
        TELL inv1 IN Invitation WITH
          sender sender : bob
        END
        """
    )
    conceptbase.tell("TELL inv2 IN Invitation END")
    return conceptbase


@pytest.fixture
def catalog(cb):
    return QueryCatalog(cb.propositions)


class TestDefinition:
    def test_define_and_list(self, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        assert catalog.names() == ["WithSender"]
        assert "WithSender" in repr(catalog.get("WithSender"))

    def test_query_class_specialises_base(self, cb, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        assert "Invitation" in cb.propositions.generalizations("WithSender")

    def test_condition_documented(self, cb, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        links = cb.propositions.attributes_of("WithSender",
                                              label="constraint")
        assert len(links) == 1

    def test_duplicate_rejected(self, catalog):
        catalog.define("Q", "i", "Invitation", "Known(i.sender)")
        with pytest.raises(ReproError):
            catalog.define("Q", "i", "Invitation", "Known(i.sender)")

    def test_unknown_base_class(self, catalog):
        with pytest.raises(ReproError):
            catalog.define("Q", "x", "Nothing", "Known(x.sender)")

    def test_unused_variable_rejected(self, catalog):
        with pytest.raises(ReproError):
            catalog.define("Q", "i", "Invitation", "Known(other.sender)")

    def test_unknown_query(self, catalog):
        with pytest.raises(ReproError):
            catalog.extent("Nothing")


class TestEvaluation:
    def test_extent(self, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        assert catalog.extent("WithSender") == ["inv1"]

    def test_negated_condition(self, catalog):
        catalog.define("Unsent", "i", "Invitation", "not Known(i.sent)")
        assert catalog.extent("Unsent") == ["inv1", "inv2"]

    def test_membership_ask(self, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        assert catalog.ask("WithSender", "inv1")
        assert not catalog.ask("WithSender", "inv2")
        assert not catalog.ask("WithSender", "bob")  # wrong base class

    def test_extent_tracks_updates(self, cb, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        cb.tell(
            """
            TELL inv2 WITH
              sender sender : bob
            END
            """
        )
        assert catalog.extent("WithSender") == ["inv1", "inv2"]

    def test_deduced_attributes_participate(self, cb, catalog):
        cb.add_rule(
            "attr(?x, sender, bob) :- attr(?x, delegate, bob).",
            name="delegation",
        )
        cb.tell(
            """
            TELL inv2 WITH
              attribute delegate : bob
            END
            """
        )
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        assert catalog.extent("WithSender") == ["inv1", "inv2"]


class TestMaterialisation:
    def test_materialise_asserts_membership(self, cb, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        result = catalog.materialise("WithSender")
        assert result == {"added": 1, "removed": 0}
        assert cb.propositions.is_instance_of("inv1", "WithSender")

    def test_rematerialise_removes_stale(self, cb, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        catalog.materialise("WithSender")
        sender_link = cb.propositions.attributes_of("inv1", label="sender")[0]
        cb.propositions.retract(sender_link.pid)
        result = catalog.materialise("WithSender")
        assert result == {"added": 0, "removed": 1}
        assert not cb.propositions.is_instance_of("inv1", "WithSender")

    def test_materialise_idempotent(self, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        catalog.materialise("WithSender")
        assert catalog.materialise("WithSender") == {"added": 0, "removed": 0}

    def test_materialised_extent_usable_as_class(self, cb, catalog):
        catalog.define("WithSender", "i", "Invitation", "Known(i.sender)")
        catalog.materialise("WithSender")
        assert cb.instances("WithSender") == ["inv1"]

    def test_undocumented_query_cannot_materialise(self, cb):
        catalog = QueryCatalog(cb.propositions)
        catalog.define("Q", "i", "Invitation", "Known(i.sender)",
                       document=False)
        assert catalog.extent("Q") == ["inv1"]
        with pytest.raises(ReproError):
            catalog.materialise("Q")
