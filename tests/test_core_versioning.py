"""Tests for version/configuration management and navigation."""

import pytest

from repro.errors import VersionError
from repro.scenario import MeetingScenario


@pytest.fixture(scope="module")
def full():
    """The completed scenario (fig 2-4 state) — module-scoped because
    it is read-only in these tests."""
    return MeetingScenario().run_all()


@pytest.fixture
def fig_2_3():
    return MeetingScenario().run_to_fig_2_3()


class TestVersions:
    def test_versions_of_revised_object(self, fig_2_3):
        vm = fig_2_3.gkbms.versions()
        nodes = vm.versions_of("InvitationRel2")
        assert len(nodes) == 2
        base, revision = nodes
        assert base.name == "InvitationRel2"
        assert "~" in revision.name
        # while the key decision stands, the revision is current
        assert not base.active
        assert revision.active
        assert vm.current("InvitationRel2") == revision.name

    def test_versions_after_backtrack(self, full):
        vm = full.gkbms.versions()
        nodes = vm.versions_of("InvitationRel2")
        # the key revision was backtracked: base version is active again
        base = nodes[0]
        assert base.active
        assert vm.current("InvitationRel2") == "InvitationRel2"

    def test_alternatives_are_choice_versions(self, full):
        vm = full.gkbms.versions()
        alternatives = vm.alternatives("InvitationRel2")
        assert len(alternatives) == 1
        assert alternatives[0].decision == full.records["keys"].did

    def test_unknown_object(self, full):
        with pytest.raises(VersionError):
            full.gkbms.versions().versions_of("Ghost")

    def test_unversioned_object_single_node(self, full):
        vm = full.gkbms.versions()
        nodes = vm.versions_of("MinutesRel")
        assert len(nodes) == 1
        assert nodes[0].active


class TestConfigurations:
    def test_vertical_configuration(self, full):
        vm = full.gkbms.versions()
        grouped = vm.vertical_configuration("InvitationRel2")
        assert "Papers" in grouped.get("design", [])
        assert "InvitationRel2" in grouped.get("implementation", [])

    def test_configure_implementation(self, full):
        vm = full.gkbms.versions()
        config = vm.configure("implementation")
        assert config.complete
        assert "InvitationRel2" in config.objects
        assert "MinutesRel" in config.objects
        # version bookkeeping objects are not components
        assert not any("~" in name for name in config.objects)

    def test_open_obligations_make_inconsistent(self, full):
        vm = full.gkbms.versions()
        config = vm.configure("implementation")
        # KeysCorrect of the normalisation decision is still open
        assert not config.consistent
        assert any("KeysCorrect" in issue for issue in config.issues)

    def test_discharged_obligations_clean_configuration(self):
        scenario = MeetingScenario().run_all()
        gkbms = scenario.gkbms
        for obligation in gkbms.decisions.open_obligations():
            gkbms.decisions.sign(obligation.oid, "jarke")
        config = gkbms.versions().configure("implementation")
        assert config.consistent

    def test_design_level_configuration(self, full):
        config = full.gkbms.versions().configure("design")
        assert "Papers" in config.objects
        assert "Minutes" in config.objects


class TestDerivationLattice:
    def test_edge_kinds(self, full):
        edges = full.gkbms.versions().derivation_lattice()
        kinds = {kind for _s, kind, _t in edges}
        assert {"mapping", "refinement", "choice"} <= kinds

    def test_choice_edge_targets_version(self, full):
        edges = full.gkbms.versions().derivation_lattice()
        choice_targets = [t for _s, kind, t in edges if kind == "choice"]
        assert any("~" in t for t in choice_targets)

    def test_render(self, full):
        text = full.gkbms.versions().render_lattice()
        assert "mapping" in text


class TestNavigation:
    def test_status_views(self, full):
        nav = full.gkbms.navigator()
        assert "Papers" in nav.status_view("design")
        assert "InvitationRel2" in nav.status_view("implementation")
        assert "Meeting" in nav.status_view("requirements")

    def test_interrelations(self, full):
        nav = full.gkbms.navigator()
        rel = nav.interrelations("InvitationRel")
        assert rel["implements"] == ["Invitations"]
        rel2 = nav.interrelations("Invitations")
        assert "InvitationRel" in rel2["implemented_by"]

    def test_justification_prefers_active(self, full):
        nav = full.gkbms.navigator()
        did = nav.justification_of("InvitationRel2")
        assert did == full.records["normalize"].did

    def test_causal_chain_reaches_design(self, full):
        nav = full.gkbms.navigator()
        chain = nav.causal_chain("InvitationRel2")
        objects = {obj for _d, obj in chain}
        assert "InvitationRel" in objects
        assert "Papers" in objects

    def test_derived_from(self, full):
        nav = full.gkbms.navigator()
        derived = nav.derived_from("Papers")
        assert "InvitationRel2" in derived

    def test_timeline_ordered(self, full):
        nav = full.gkbms.navigator()
        ticks = [event.tick for event in nav.timeline()]
        assert ticks == sorted(ticks)

    def test_history_of_object(self, full):
        nav = full.gkbms.navigator()
        history = nav.history_of("InvitationRel")
        kinds = [event.kind for event in history]
        assert "created" in kinds and "used" in kinds

    def test_retraction_in_timeline(self, full):
        nav = full.gkbms.navigator()
        keys_did = full.records["keys"].did
        events = [e for e in nav.timeline() if e.kind == "retracted"]
        assert any(e.decision == keys_did for e in events)

    def test_browser_menu_drives_decision(self):
        scenario = MeetingScenario().setup()
        nav = scenario.gkbms.navigator()
        browser = nav.browser()
        browser.focus_on("Invitations")
        text = browser.render_menu()
        assert "DecMoveDown" in text
        assert "explore" in text
        record = browser.select(["DecMoveDown", "MoveDownMapper"])
        assert record.decision_class == "DecMoveDown"

    def test_browser_explore_actions(self, full):
        nav = full.gkbms.navigator()
        browser = nav.browser()
        browser.focus_on("InvitationRel2")
        history = browser.select(["explore", "history"])
        assert history  # non-empty list of events


class TestExplanation:
    def test_explain_object(self, full):
        text = full.gkbms.explainer().explain_object("InvitationRel2")
        assert "justified by" in text
        assert "Normalizer" in text
        assert "rationale" in text

    def test_explain_decision(self, full):
        did = full.records["normalize"].did
        text = full.gkbms.explainer().explain_decision(did)
        assert "DecNormalize" in text
        assert "from relation = InvitationRel" in text

    def test_trace_to_design(self, full):
        text = full.gkbms.explainer().trace("InvitationRel2")
        assert "Papers" in text

    def test_why_retracted(self, full):
        text = full.gkbms.explainer().why_retracted(full.records["keys"].did)
        assert "OnlyInvitationsArePapers" in text

    def test_why_retracted_standing_decision(self, full):
        text = full.gkbms.explainer().why_retracted(full.records["map"].did)
        assert "stands" in text

    def test_unknown_object(self, full):
        from repro.errors import GKBMSError

        with pytest.raises(GKBMSError):
            full.gkbms.explainer().explain_object("Ghost")
