"""Tests for the assertion language: parser and evaluator."""

import pytest

from repro.errors import AssertionSyntaxError, EvaluationError
from repro.assertions import (
    BinaryOp,
    Comparison,
    Evaluator,
    InAtom,
    Not,
    PathTerm,
    Quantifier,
    parse_assertion,
)
from repro.propositions import PropositionProcessor


class TestParser:
    def test_quantifier(self):
        expr = parse_assertion("forall i/Invitation (In(i.sender, Person))")
        assert isinstance(expr, Quantifier)
        assert expr.kind == "forall"
        assert expr.bindings == (("i", "Invitation"),)
        assert isinstance(expr.body, InAtom)

    def test_multiple_bindings(self):
        expr = parse_assertion("exists a/Doc, b/Doc (a != b)")
        assert expr.bindings == (("a", "Doc"), ("b", "Doc"))

    def test_precedence_and_binds_tighter_than_or(self):
        expr = parse_assertion("a = b or c = d and e = f")
        assert isinstance(expr, BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"

    def test_implication(self):
        expr = parse_assertion("Known(x.key) ==> In(x, Keyed)")
        assert isinstance(expr, BinaryOp) and expr.op == "==>"

    def test_negation(self):
        expr = parse_assertion("not a = b")
        assert isinstance(expr, Not)

    def test_path_term(self):
        expr = parse_assertion("x.a.b = y")
        assert isinstance(expr, Comparison)
        assert isinstance(expr.left, PathTerm)
        assert expr.left.label == "b"

    def test_parenthesised_expression(self):
        expr = parse_assertion("(a = b or c = d) and e = f")
        assert isinstance(expr, BinaryOp) and expr.op == "and"

    def test_string_and_number_literals(self):
        expr = parse_assertion("x.name = 'Invitation Rel' and x.count >= 2")
        assert isinstance(expr, BinaryOp)

    def test_free_variables(self):
        expr = parse_assertion("forall i/Invitation (In(i.sender, Person))")
        assert expr.free_variables() == frozenset()
        expr2 = parse_assertion("In(self.sender, Person)")
        assert "self" in expr2.free_variables()

    @pytest.mark.parametrize(
        "bad",
        [
            "forall (x = y)",
            "In(x Person)",
            "x =",
            "x = y extra",
            "exists x/ (x = x)",
            "@bad",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(AssertionSyntaxError):
            parse_assertion(bad)


@pytest.fixture
def kb():
    proc = PropositionProcessor()
    proc.define_class("Paper")
    proc.define_class("Invitation", isa=["Paper"])
    proc.define_class("Person")
    proc.tell_link("Invitation", "sender", "Person", pid="Invitation.sender",
                   of_class="Attribute")
    proc.tell_link("Invitation", "receiver", "Person", pid="Invitation.receiver",
                   of_class="Attribute")
    for name in ("bob", "ann", "eva"):
        proc.tell_individual(name, in_class="Person")
    proc.tell_individual("inv1", in_class="Invitation")
    proc.tell_link("inv1", "sender", "bob", of_class="Invitation.sender")
    proc.tell_link("inv1", "receiver", "ann", of_class="Invitation.receiver")
    proc.tell_link("inv1", "receiver", "eva", of_class="Invitation.receiver")
    return proc


class TestEvaluator:
    def test_typing_constraint_holds(self, kb):
        ev = Evaluator(kb)
        assert ev.evaluate(parse_assertion("forall i/Invitation (In(i.sender, Person))"))

    def test_set_valued_attribute(self, kb):
        ev = Evaluator(kb)
        # receiver is set-valued: both members are found
        assert ev.evaluate(parse_assertion("inv1.receiver = ann"))
        assert ev.evaluate(parse_assertion("inv1.receiver = eva"))
        assert not ev.evaluate(parse_assertion("inv1.receiver = bob"))

    def test_in_is_universal_over_sets(self, kb):
        ev = Evaluator(kb)
        assert ev.evaluate(parse_assertion("In(inv1.receiver, Person)"))
        kb.define_class("Robot")
        kb.tell_individual("r2", in_class="Robot")
        kb.axioms.disable("attribute_typing")
        kb.tell_link("inv1", "receiver", "r2")
        assert not ev.evaluate(parse_assertion("In(inv1.receiver, Person)"))

    def test_in_vacuous_on_empty_set(self, kb):
        ev = Evaluator(kb)
        kb.tell_individual("inv2", in_class="Invitation")
        assert ev.evaluate(parse_assertion("In(inv2.sender, Person)"))
        assert not ev.evaluate(parse_assertion("Known(inv2.sender)"))

    def test_exists_quantifier(self, kb):
        ev = Evaluator(kb)
        assert ev.evaluate(parse_assertion("exists p/Paper (p.sender = bob)"))
        assert not ev.evaluate(parse_assertion("exists p/Paper (p.sender = ann)"))

    def test_isa_atom(self, kb):
        ev = Evaluator(kb)
        assert ev.evaluate(parse_assertion("Isa(Invitation, Paper)"))
        assert not ev.evaluate(parse_assertion("Isa(Paper, Invitation)"))

    def test_attribute_atom(self, kb):
        ev = Evaluator(kb)
        assert ev.evaluate(parse_assertion("A(inv1, sender, bob)"))
        assert not ev.evaluate(parse_assertion("A(inv1, sender, ann)"))

    def test_implication(self, kb):
        ev = Evaluator(kb)
        assert ev.evaluate(
            parse_assertion(
                "forall i/Invitation (Known(i.sender) ==> In(i.sender, Person))"
            )
        )

    def test_numeric_comparison(self, kb):
        ev = Evaluator(kb)
        kb.tell_individual("rel1", in_class="Paper")
        kb.tell_individual("n40", in_class="Token")
        kb.axioms.disable("attribute_typing")
        kb.tell_link("rel1", "size", "n40")
        # names that parse as numbers compare numerically: "n40" does not
        assert not ev.evaluate(parse_assertion("rel1.size < 100"))
        assert ev.evaluate(parse_assertion("3 < 20"))
        assert not ev.evaluate(parse_assertion("100 < 20"))

    def test_environment_binding(self, kb):
        ev = Evaluator(kb)
        expr = parse_assertion("In(self.sender, Person)")
        assert ev.evaluate(expr, {"self": "inv1"})

    def test_satisfying_witnesses(self, kb):
        ev = Evaluator(kb)
        expr = parse_assertion("exists p/Person (A(inv1, receiver, p))")
        witnesses = [b["p"] for b in ev.satisfying(expr)]
        assert witnesses == ["ann", "eva"]

    def test_satisfying_requires_exists(self, kb):
        ev = Evaluator(kb)
        expr = parse_assertion("forall p/Person (p = p)")
        with pytest.raises(EvaluationError):
            list(ev.satisfying(expr))

    def test_forall_multiple_bindings(self, kb):
        ev = Evaluator(kb)
        assert ev.evaluate(
            parse_assertion("forall a/Invitation, b/Invitation (a = b)")
        )
        kb.tell_individual("inv9", in_class="Invitation")
        assert not ev.evaluate(
            parse_assertion("forall a/Invitation, b/Invitation (a = b)")
        )
