"""The five decision ops over the wire, on every transport.

``decide`` / ``backtrack`` / ``replay`` / ``history`` / ``versions``
must behave identically through the in-process :class:`LocalClient`,
the threaded TCP transport and the asyncio pipelined transport — and
keep the acceptance promises: a backtracked mid-history decision leaves
a base bit-identical to one that never executed it or its consequents,
an idempotency token makes decide exactly-once under retry, and a
writer killed mid-backtrack loses no acked decision.
"""

import random

import pytest

from repro.conceptbase import ConceptBase
from repro.errors import (
    BacktrackError,
    DecisionError,
    ProtocolError,
    SessionError,
)
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore
from repro.scenario.chaos import PowerCutIO, oracle_prefix
from repro.server.client import LocalClient, PipelinedTCPClient, TCPClient
from repro.server.service import GKBMSService
from repro.server.tcp import AsyncGKBMSServer, GKBMSServer


@pytest.fixture
def service():
    svc = GKBMSService(batch_window=0.0)
    yield svc
    svc.close()


@pytest.fixture
def client(service):
    c = LocalClient(service)
    yield c
    c.close()


def seed_schema(client):
    client.tell("TELL K IN SimpleClass END")


class TestServedOps:
    def test_decide_result_shape(self, client):
        seed_schema(client)
        result = client.decide(
            "DecMap", kind="mapping", tell=["TELL R IN K END"],
            rationale="first",
        )
        assert result["did"] == "d1"
        assert result["outputs"] == ["R"]
        assert result["told"] == 2  # individual + instanceof link
        assert result["untold"] == 0
        assert "epoch" in result and "commit_seq" in result

    def test_backtrack_cascades_over_the_wire(self, client):
        seed_schema(client)
        d1 = client.decide("A", tell=["TELL R IN K END"])
        d2 = client.decide("B", inputs={"x": "R"},
                           tell=["TELL R2 IN K END"])
        report = client.backtrack(d1["did"])
        assert report["retracted"] == [d2["did"], d1["did"]]
        assert report["reapplied"] >= 4
        assert client.instances("K") == []

    def test_history_and_graph_over_the_wire(self, client):
        seed_schema(client)
        client.decide("A", tell=["TELL R IN K END"])
        client.decide("B", inputs={"x": "R"})
        history = client.history()
        assert history["recorded"] == 2 and history["active"] == 2
        assert history["edges"] == [
            {"from": "d1", "to": "d2", "reason": "from-to"},
        ]

    def test_replay_and_versions_over_the_wire(self, client):
        seed_schema(client)
        d1 = client.decide("Choice", kind="choice",
                           tell=["TELL R~alt IN K END", "TELL R IN K END"])
        client.backtrack(d1["did"])
        outcome = client.replay(d1["did"])
        assert outcome["applicable"] is True
        versions = client.versions()
        # both variants of base R fell with the backtrack
        assert [v["active"] for v in versions["versions"]["R"]] == \
            [False, False]
        assert versions["alternatives"][0]["decision"] == d1["did"]

    def test_decide_refused_inside_open_transaction(self, client):
        seed_schema(client)
        client.begin()
        with pytest.raises(SessionError):
            client.decide("A", tell=["TELL R IN K END"])
        client.abort()
        client.decide("A", tell=["TELL R IN K END"])  # fine again

    def test_bad_specs_are_typed_errors(self, client):
        with pytest.raises(ProtocolError):
            client.decide("")
        with pytest.raises(DecisionError):
            client.decide("A", kind="hunch")
        with pytest.raises(DecisionError):
            client.decide("A", inputs={"x": "Ghost"})
        with pytest.raises(DecisionError):
            client.backtrack("d99")
        with pytest.raises(BacktrackError):
            seed_schema(client)
            did = client.decide("A", tell=["TELL R IN K END"])["did"]
            client.backtrack(did)
            client.backtrack(did)

    def test_failed_decide_burns_no_did(self, client):
        seed_schema(client)
        with pytest.raises(DecisionError):
            client.decide("A", inputs={"x": "Ghost"})
        assert client.decide("B", tell=["TELL R IN K END"])["did"] == "d1"

    def test_decide_token_is_idempotent(self, client):
        seed_schema(client)
        params = {"decision_class": "A", "tell": ["TELL R IN K END"],
                  "token": "dec-tok-1"}
        first = client._call("decide", dict(params))
        again = client._call("decide", dict(params))
        assert again["did"] == first["did"]
        assert client.history()["recorded"] == 1


class TestOverTCP:
    @pytest.fixture
    def server(self, service):
        tcp = GKBMSServer(("127.0.0.1", 0), service)
        tcp.serve_in_thread()
        yield tcp
        tcp.close()

    def test_five_ops_round_trip(self, server):
        c = TCPClient(server.host, server.port)
        seed_schema(c)
        d1 = c.decide("A", kind="mapping", tell=["TELL R IN K END"])
        d2 = c.decide("B", kind="choice", inputs={"x": "R"},
                      tell=["TELL R~alt IN K END"])
        assert c.history()["edges"][0]["reason"] == "from-to"
        report = c.backtrack(d2["did"])
        assert report["retracted"] == [d2["did"]]
        assert c.replay(d2["did"])["applicable"] is True
        assert c.versions()["versions"]["R"][1]["active"] is False
        assert d1["did"] == "d1"
        c.close()


class TestOverAsync:
    def test_five_ops_round_trip_pipelined(self):
        service = GKBMSService(batch_window=0.0)
        tcp = AsyncGKBMSServer(("127.0.0.1", 0), service)
        tcp.serve_in_thread()
        try:
            c = PipelinedTCPClient(tcp.host, tcp.port)
            seed_schema(c)
            d1 = c.decide("A", tell=["TELL R IN K END"])
            d2 = c.decide("B", inputs={"x": "R"})
            assert c.history()["recorded"] == 2
            report = c.backtrack(d1["did"])
            assert set(report["retracted"]) == {d1["did"], d2["did"]}
            assert c.replay(d1["did"])["status"] == "retracted"
            assert "versions" in c.versions()
            c.close()
        finally:
            tcp.close()


class TestAcceptance:
    """The tentpole's acceptance criteria, directly."""

    def _random_history(self, client, rng, count):
        """Bare-individual decides (name-determined pids) chained by
        from-to inputs, so the never-executed oracle can be compared
        bit-for-bit."""
        outputs = []
        for n in range(count):
            spec = {"tell": [f"TELL Obj{n} END"]}
            if outputs and rng.random() < 0.45:
                spec["inputs"] = {"src": rng.choice(outputs)}
            client.decide(f"Dec{n % 5}", **spec)
            outputs.append(f"Obj{n}")
        return outputs

    @pytest.mark.parametrize("seed", [3, 11])
    def test_backtrack_state_identical_to_never_executed_oracle(self, seed):
        rng = random.Random(seed)
        service = GKBMSService(batch_window=0.0)
        live = LocalClient(service)
        self._random_history(live, rng, 24)
        target = f"d{rng.randrange(5, 12)}"
        report = live.backtrack(target)
        condemned = set(report["retracted"])
        # oracle: same history, but the condemned decides never ran
        survivors = [
            entry for entry in live.history()["decisions"]
            if entry["did"] not in condemned
        ]
        oracle_service = GKBMSService(batch_window=0.0)
        oracle = LocalClient(oracle_service)
        for entry in survivors:
            oracle.decide(
                entry["decision_class"],
                tell=[f"TELL {name} END" for name in entry["outputs"]],
                inputs=entry["inputs"], kind=entry["kind"],
            )
        assert service.cb.propositions.store.rows() == \
            oracle_service.cb.propositions.store.rows()
        live.close()
        oracle.close()

    def test_writer_kill_mid_backtrack_loses_nothing(self, tmp_path):
        """SIGKILL the (simulated) writer while the backtrack's WAL
        records are being appended: the un-acked backtrack vanishes
        wholesale, every acked decision survives with its status."""
        path = str(tmp_path / "kill.wal")
        plan = FaultPlan(seed=17)
        io = PowerCutIO(plan)
        registry = MetricsRegistry()
        store = WalStore(path, io=io, registry=registry)
        service = GKBMSService(ConceptBase(store=store, registry=registry),
                               batch_window=0.0)
        client = LocalClient(service)
        seed_schema(client)
        dids = []
        for n in range(5):
            spec = {"tell": [f"TELL R{n} IN K END"]}
            if dids:
                spec["inputs"] = {"x": f"R{n - 1}"}
            dids.append(client.decide(f"Dec{n}", **spec)["did"])
        acked = service.pipeline.acked_log()
        # arm the power cut inside the next WAL write burst
        plan.crash_at = io.ops + 2
        with pytest.raises(BaseException):
            client.backtrack(dids[1])
        io.powercut()
        recovered = WalStore(path, registry=MetricsRegistry())
        cb = ConceptBase(store=recovered)
        from repro.decisions import DecisionHistory
        ledger = DecisionHistory(cb).ledger
        assert [(r.did, r.status) for r in ledger.records] == \
            [(did, "done") for did in dids]
        assert oracle_prefix(recovered.rows(), acked) == len(acked)
        recovered.close()

    def test_decide_spec_rides_wal_not_memory(self, tmp_path):
        """Replayable from the WAL alone: a fresh process (new store,
        new service) serves the full history and can still backtrack."""
        path = str(tmp_path / "replay.wal")
        store = WalStore(path, registry=MetricsRegistry())
        service = GKBMSService(ConceptBase(store=store))
        client = LocalClient(service)
        seed_schema(client)
        client.decide("A", kind="mapping", tell=["TELL R IN K END"],
                      rationale="keep me")
        client.decide("B", inputs={"x": "R"}, tell=["TELL R2 IN K END"])
        service.drain()

        store2 = WalStore(path, registry=MetricsRegistry())
        service2 = GKBMSService(ConceptBase(store=store2))
        client2 = LocalClient(service2)
        history = client2.history()
        assert [d["did"] for d in history["decisions"]] == ["d1", "d2"]
        assert history["decisions"][0]["rationale"] == "keep me"
        report = client2.backtrack("d1")
        assert report["retracted"] == ["d2", "d1"]
        assert client2.instances("K") == []
        service2.cb.propositions.store.close()
