"""Tests for the proposition processor: closures, retraction, tellings."""

import pytest

from repro.errors import PropositionError, UnknownPropositionError
from repro.propositions import Pattern, PropositionProcessor
from repro.timecalc import Interval


@pytest.fixture
def proc():
    p = PropositionProcessor()
    p.define_class("Paper")
    p.define_class("Invitation", isa=["Paper"])
    p.define_class("Minutes", isa=["Paper"])
    p.define_class("Person")
    p.tell_link("Paper", "author", "Person", pid="Paper.author",
                of_class="Attribute")
    p.tell_link("Invitation", "sender", "Person", pid="Invitation.sender",
                of_class="Attribute")
    return p


class TestClosures:
    def test_generalizations(self, proc):
        assert "Paper" in proc.generalizations("Invitation")
        assert "Invitation" in proc.generalizations("Invitation")
        assert "Invitation" not in proc.generalizations("Invitation", strict=True)

    def test_specializations(self, proc):
        subs = proc.specializations("Paper")
        assert {"Invitation", "Minutes", "Paper"} <= subs

    def test_classes_of_includes_superclasses(self, proc):
        proc.tell_individual("inv1", in_class="Invitation")
        classes = proc.classes_of("inv1")
        assert {"Invitation", "Paper", "Proposition"} <= classes

    def test_instances_of_closes_over_isa(self, proc):
        proc.tell_individual("inv1", in_class="Invitation")
        proc.tell_individual("min1", in_class="Minutes")
        assert proc.instances_of("Paper") == {"inv1", "min1"}
        assert proc.instances_of("Paper", direct=True) == set()

    def test_is_instance_of(self, proc):
        proc.tell_individual("inv1", in_class="Invitation")
        assert proc.is_instance_of("inv1", "Paper")
        assert proc.is_instance_of("inv1", "Proposition")
        assert not proc.is_instance_of("inv1", "Person")

    def test_multiple_classification(self, proc):
        proc.define_class("Urgent")
        proc.tell_individual("inv1", in_class="Invitation")
        proc.tell_instanceof("inv1", "Urgent")
        assert {"Invitation", "Urgent"} <= proc.classes_of("inv1")


class TestAttributes:
    def test_attributes_of_excludes_reserved(self, proc):
        attrs = proc.attributes_of("Invitation")
        assert [a.label for a in attrs] == ["sender"]

    def test_attribute_classes_inherited(self, proc):
        labels = {a.label for a in proc.attribute_classes("Invitation")}
        assert labels == {"author", "sender"}
        # Minutes only inherits author
        labels = {a.label for a in proc.attribute_classes("Minutes")}
        assert labels == {"author"}

    def test_links_instantiating(self, proc):
        proc.tell_individual("inv1", in_class="Invitation")
        proc.tell_individual("bob", in_class="Person")
        lk = proc.tell_link("inv1", "sender", "bob", of_class="Invitation.sender")
        instances = proc.links_instantiating("Invitation.sender")
        assert [p.pid for p in instances] == [lk.pid]

    def test_classification_of_link(self, proc):
        proc.tell_individual("inv1", in_class="Invitation")
        proc.tell_individual("bob", in_class="Person")
        lk = proc.tell_link("inv1", "sender", "bob", of_class="Invitation.sender")
        assert "Invitation.sender" in proc.classification_of_link(lk.pid)


class TestRetraction:
    def test_retract_cascades_to_dependents(self, proc):
        proc.tell_individual("inv1", in_class="Invitation")
        proc.tell_individual("bob", in_class="Person")
        proc.tell_link("inv1", "sender", "bob", of_class="Invitation.sender")
        removed = proc.retract("inv1")
        removed_pids = {p.pid for p in removed}
        assert "inv1" in removed_pids
        assert len(removed_pids) >= 3  # node + instanceof + sender link + its classification
        assert not proc.exists("inv1")
        assert proc.exists("bob")

    def test_retract_without_cascade_raises_when_referenced(self, proc):
        proc.tell_individual("inv1", in_class="Invitation")
        with pytest.raises(PropositionError):
            proc.retract("inv1", cascade=False)

    def test_retract_unknown(self, proc):
        with pytest.raises(UnknownPropositionError):
            proc.retract("nothing")

    def test_retract_bumps_epoch(self, proc):
        proc.tell_individual("x")
        before = proc.epoch
        proc.retract("x")
        assert proc.epoch > before

    def test_clip_validity(self, proc):
        p = proc.tell_individual("v", time=Interval.since(0))
        clipped = proc.clip_validity("v", 100)
        assert clipped.time.contains_point(50)
        assert not clipped.time.contains_point(100)

    def test_clip_before_start_raises(self, proc):
        proc.tell_individual("v", time=Interval.since(50))
        with pytest.raises(PropositionError):
            proc.clip_validity("v", 10)


class TestTelling:
    def test_successful_telling_commits(self, proc):
        with proc.telling() as t:
            proc.tell_individual("a")
            proc.tell_individual("b")
        assert len(t.created) == 2
        assert proc.exists("a") and proc.exists("b")

    def test_failed_telling_rolls_back(self, proc):
        with pytest.raises(PropositionError):
            with proc.telling():
                proc.tell_individual("a")
                raise PropositionError("boom")
        assert not proc.exists("a")

    def test_commit_listener_sees_batch(self, proc):
        batches = []
        proc.on_commit(batches.append)
        with proc.telling():
            proc.tell_individual("a")
        assert len(batches) == 1
        assert [p.pid for p in batches[0]] == ["a"]

    def test_nested_telling_is_a_savepoint(self, proc):
        with proc.telling() as outer:
            proc.tell_individual("kept")
            with pytest.raises(PropositionError):
                with proc.telling():
                    proc.tell_individual("doomed")
                    raise PropositionError("boom")
            assert not proc.exists("doomed")
            assert proc.exists("kept")
        assert proc.exists("kept")
        assert [p.pid for p in outer.created] == ["kept"]


class TestIntrospection:
    def test_summary(self, proc):
        counts = proc.summary()
        assert counts["individuals"] > 0
        assert counts["isa"] > 0
        assert counts["attribute"] >= 2

    def test_fresh_pid_unique(self, proc):
        pids = {proc.fresh_pid() for _ in range(5)}
        assert len(pids) == 5

    def test_len(self, proc):
        assert len(proc) == len(list(proc.store))

    def test_retrieve_proposition_patterns(self, proc):
        results = list(
            proc.retrieve_proposition(Pattern(source="Invitation", label="sender"))
        )
        assert [p.pid for p in results] == ["Invitation.sender"]
