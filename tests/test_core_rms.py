"""Tests for the reason maintenance systems and their GKBMS integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RMSError
from repro.core.rms import ATMS, JTMS, DecisionRMS, PartitionedDecisionRMS
from repro.scenario import MeetingScenario


class TestJTMS:
    def test_premises_are_in(self):
        tms = JTMS()
        tms.add_premise("p")
        assert tms.is_in("p")

    def test_justification_propagates(self):
        tms = JTMS()
        tms.add_premise("a")
        tms.justify("b", in_list=["a"])
        tms.justify("c", in_list=["b"])
        assert tms.is_in("c")

    def test_assumption_retraction_propagates(self):
        tms = JTMS()
        tms.add_assumption("dec")
        tms.add_premise("input")
        tms.justify("out1", in_list=["dec", "input"])
        tms.justify("out2", in_list=["out1"])
        assert tms.is_in("out2")
        tms.retract("dec")
        assert not tms.is_in("out1")
        assert not tms.is_in("out2")
        assert tms.is_in("input")

    def test_reinstate(self):
        tms = JTMS()
        tms.add_assumption("a")
        tms.justify("b", in_list=["a"])
        tms.retract("a")
        tms.reinstate("a")
        assert tms.is_in("b")

    def test_retract_non_assumption_rejected(self):
        tms = JTMS()
        tms.add_premise("p")
        tms.justify("q", in_list=["p"])
        with pytest.raises(RMSError):
            tms.retract("q")

    def test_out_list(self):
        tms = JTMS()
        tms.add_assumption("blocker")
        tms.add_premise("base")
        tms.justify("default", in_list=["base"], out_list=["blocker"])
        assert not tms.is_in("default")
        tms.retract("blocker")
        assert tms.is_in("default")

    def test_multiple_justifications(self):
        tms = JTMS()
        tms.add_assumption("a1")
        tms.add_assumption("a2")
        tms.justify("goal", in_list=["a1"])
        tms.justify("goal", in_list=["a2"])
        tms.retract("a1")
        assert tms.is_in("goal")  # second justification still supports
        tms.retract("a2")
        assert not tms.is_in("goal")

    def test_supporting_assumptions(self):
        tms = JTMS()
        tms.add_assumption("a")
        tms.add_premise("p")
        tms.justify("b", in_list=["a", "p"])
        tms.justify("c", in_list=["b"])
        assert tms.supporting_assumptions("c") == {"a"}
        assert tms.supporting_assumptions("missing") == set()

    def test_contradiction_diagnosis(self):
        tms = JTMS()
        tms.add_assumption("keysub")
        tms.add_premise("minutes_mapped")
        tms.justify("conflict", in_list=["keysub", "minutes_mapped"])
        tms.mark_contradiction("conflict")
        assert tms.active_contradictions() == ["conflict"]
        assert tms.diagnose() == [{"keysub"}]
        tms.retract("keysub")
        assert tms.active_contradictions() == []


class TestATMS:
    def test_assumption_label(self):
        atms = ATMS()
        atms.add_assumption("a")
        assert atms.label("a") == {frozenset({"a"})}

    def test_premise_holds_everywhere(self):
        atms = ATMS()
        atms.add_premise("p")
        assert atms.holds_in("p", [])

    def test_label_propagation(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.justify("c", ["a", "b"])
        assert atms.label("c") == {frozenset({"a", "b"})}
        assert atms.holds_in("c", ["a", "b"])
        assert not atms.holds_in("c", ["a"])

    def test_minimality(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.justify("c", ["a"])
        atms.justify("c", ["a", "b"])  # subsumed
        assert atms.label("c") == {frozenset({"a"})}

    def test_disjunctive_labels(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.justify("c", ["a"])
        atms.justify("c", ["b"])
        assert atms.label("c") == {frozenset({"a"}), frozenset({"b"})}

    def test_nogood_prunes(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.add_assumption("b")
        atms.justify("c", ["a", "b"])
        atms.declare_nogood(["a", "b"])
        assert atms.label("c") == set()
        assert not atms.holds_in("c", ["a", "b"])

    def test_consistent_environments(self):
        atms = ATMS()
        for name in ("a", "b"):
            atms.add_assumption(name)
        atms.justify("x", ["a"])
        atms.justify("y", ["b"])
        envs = atms.consistent_environments(["x", "y"])
        assert envs == {frozenset({"a", "b"})}
        atms.declare_nogood(["a", "b"])
        assert atms.consistent_environments(["x", "y"]) == set()

    def test_chained_justifications(self):
        atms = ATMS()
        atms.add_assumption("a")
        atms.justify("b", ["a"])
        atms.justify("c", ["b"])
        assert atms.label("c") == {frozenset({"a"})}


class TestDecisionRMS:
    def test_scenario_propagation(self):
        scenario = MeetingScenario().run_to_fig_2_3()
        rms = DecisionRMS()
        rms.load(scenario.gkbms.decisions.records.values())
        keys_did = scenario.records["keys"].did
        assert rms.is_current("InvitationRel2")
        fell_out = rms.retract_decision(keys_did)
        # the key revision objects fall out; the rest stand
        assert any("~" in name for name in fell_out)
        assert rms.is_current("InvitationRel2")
        assert rms.is_current("InvitationRel")

    def test_cascading_retraction(self):
        scenario = MeetingScenario().run_to_fig_2_3()
        rms = DecisionRMS()
        rms.load(scenario.gkbms.decisions.records.values())
        norm_did = scenario.records["normalize"].did
        fell_out = rms.retract_decision(norm_did)
        assert "InvitationRel2" in fell_out
        # everything derived from the normalisation fell with it
        assert not rms.is_current("InvReceivRel")

    def test_retracted_records_loaded_out(self):
        scenario = MeetingScenario().run_all()
        rms = DecisionRMS()
        rms.load(scenario.gkbms.decisions.records.values())
        keys_outputs = scenario.records["keys"].all_outputs()
        assert all(not rms.is_current(name) for name in keys_outputs)


class TestPartitionedRMS:
    def _load(self, scope_of=None):
        scenario = MeetingScenario().run_to_fig_2_3()
        rms = PartitionedDecisionRMS(scope_of)
        rms.load(scenario.gkbms.decisions.records.values())
        return scenario, rms

    def test_agrees_with_flat_rms(self):
        scenario, partitioned = self._load()
        flat = DecisionRMS()
        flat.load(scenario.gkbms.decisions.records.values())
        assert partitioned.believed_objects() == flat.believed_objects()

    def test_retraction_agrees_with_flat(self):
        scenario, partitioned = self._load()
        flat = DecisionRMS()
        flat.load(scenario.gkbms.decisions.records.values())
        did = scenario.records["normalize"].did
        out_partitioned = partitioned.retract_decision(did)
        out_flat = flat.retract_decision(did)
        # the same design objects fall out (modulo decision nodes)
        assert out_partitioned == out_flat

    def test_partitions_are_smaller_than_whole(self):
        _scenario, partitioned = self._load()
        sizes = partitioned.partition_sizes()
        assert len(sizes) >= 2
        total = sum(sizes.values())
        assert max(sizes.values()) < total

    def test_unknown_decision(self):
        _scenario, partitioned = self._load()
        with pytest.raises(RMSError):
            partitioned.retract_decision("dec999")

    def test_custom_scope_function(self):
        scenario, partitioned = self._load(
            scope_of=lambda record: "single"
        )
        assert list(partitioned.partition_sizes()) == ["single"]


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=1, max_size=16
    )
)
def test_jtms_monotone_under_premises(edges):
    """Property: with only premises and positive justifications, every
    node reachable from a premise is IN."""
    tms = JTMS()
    tms.add_premise("n0")
    for src, dst in edges:
        tms.justify(f"n{dst}", in_list=[f"n{src}"])
    reachable = {"n0"}
    changed = True
    while changed:
        changed = False
        for src, dst in edges:
            if f"n{src}" in reachable and f"n{dst}" not in reachable:
                reachable.add(f"n{dst}")
                changed = True
    for node in reachable:
        assert tms.is_in(node)


class TestDependencyDirectedBacktracking:
    """Doyle-style advice: which decision to retract to resolve a
    conflict (the fig 2-4 diagnosis, automated)."""

    def _scenario(self):
        from repro.scenario import MeetingScenario

        scenario = MeetingScenario().run_to_fig_2_3()
        scenario.add_minutes()
        return scenario

    def test_key_decision_recommended_first(self):
        from repro.core.rms import suggest_retractions

        scenario = self._scenario()
        culprits = suggest_retractions(
            scenario.gkbms.decisions.records.values(),
            ["InvitationRel2~3"],  # the associative-key version
        )
        # least-damage-first: the key decision leads its ancestors
        assert culprits[0] == scenario.records["keys"].did
        assert set(culprits) >= {
            scenario.records["map"].did,
            scenario.records["normalize"].did,
            scenario.records["keys"].did,
        }

    def test_retracting_recommendation_resolves(self):
        from repro.core.rms import DecisionRMS, suggest_retractions

        scenario = self._scenario()
        records = list(scenario.gkbms.decisions.records.values())
        recommended = suggest_retractions(records, ["InvitationRel2~3"])[0]
        rms = DecisionRMS()
        rms.load(records)
        rms.jtms.justify("conflict!", in_list=["InvitationRel2~3"])
        rms.jtms.mark_contradiction("conflict!")
        assert rms.jtms.active_contradictions() == ["conflict!"]
        rms.retract_decision(recommended)
        assert rms.jtms.active_contradictions() == []

    def test_no_conflict_no_culprits(self):
        from repro.core.rms import suggest_retractions

        scenario = self._scenario()
        assert suggest_retractions(
            scenario.gkbms.decisions.records.values(), ["NeverProduced"]
        ) == []
