"""Nested tellings (savepoints), rollback fidelity and epoch restore.

The paper's selective backtracking presupposes that an *aborted* unit
of work leaves no trace: these tests pin down that a telling rollback
undoes creates, retractions and validity clips exactly, that nested
tellings roll back independently of their parents, and that the
closure-cache epoch counters are restored without ever revalidating a
stale memo (the trap: a mid-telling cache entry must not come back to
life when a later, unrelated bump lands on the same counter value).
"""

import pytest

from repro.conceptbase import ConceptBase
from repro.errors import ConsistencyError, PropositionError
from repro.propositions import PropositionProcessor


@pytest.fixture
def proc():
    processor = PropositionProcessor()
    processor.define_class("Doc")
    return processor


class TestSavepoints:
    def test_savepoint_commit_merges_into_parent(self, proc):
        with proc.telling() as outer:
            proc.tell_individual("a")
            with proc.telling() as inner:
                proc.tell_individual("b")
            assert [p.pid for p in inner.created] == ["b"]
        assert [p.pid for p in outer.created] == ["a", "b"]
        assert proc.exists("a") and proc.exists("b")

    def test_savepoint_rollback_preserves_outer(self, proc):
        with proc.telling():
            proc.tell_individual("kept")
            with pytest.raises(PropositionError):
                with proc.telling():
                    proc.tell_individual("doomed")
                    raise PropositionError("boom")
            assert proc.exists("kept")
            assert not proc.exists("doomed")
        assert proc.exists("kept")
        assert not proc.exists("doomed")

    def test_three_levels_mixed(self, proc):
        with proc.telling():
            proc.tell_individual("l1")
            with proc.telling():
                proc.tell_individual("l2")
                with pytest.raises(RuntimeError):
                    with proc.telling():
                        proc.tell_individual("l3")
                        raise RuntimeError("innermost dies")
                assert not proc.exists("l3")
            assert proc.exists("l2")
        assert proc.exists("l1") and proc.exists("l2")
        assert not proc.exists("l3")

    def test_listener_fires_once_with_full_batch(self, proc):
        batches = []
        proc.on_commit(batches.append)
        with proc.telling():
            proc.tell_individual("a")
            with proc.telling():
                proc.tell_individual("b")
        assert len(batches) == 1
        assert [p.pid for p in batches[0]] == ["a", "b"]

    def test_rolled_back_savepoint_hidden_from_listener(self, proc):
        batches = []
        proc.on_commit(batches.append)
        with proc.telling():
            proc.tell_individual("a")
            with pytest.raises(RuntimeError):
                with proc.telling():
                    proc.tell_individual("b")
                    raise RuntimeError("abort savepoint")
        assert [p.pid for p in batches[0]] == ["a"]

    def test_outer_rollback_undoes_committed_savepoint(self, proc):
        with pytest.raises(RuntimeError):
            with proc.telling():
                with proc.telling():
                    proc.tell_individual("b")
                assert proc.exists("b")
                raise RuntimeError("outer dies")
        assert not proc.exists("b")

    def test_depth_and_repr(self, proc):
        telling = proc.telling()
        assert "closed" in repr(telling)
        with telling:
            assert telling.depth == 1
            proc.tell_individual("a")
            text = repr(telling)
            assert "depth=1" in text and "created=1" in text and "active" in text
            with proc.telling() as inner:
                assert inner.depth == 2
        assert "closed" in repr(telling)

    def test_in_telling_flag(self, proc):
        assert not proc.in_telling
        with proc.telling():
            assert proc.in_telling
            with proc.telling():
                assert proc.in_telling
        assert not proc.in_telling


class TestRollbackFidelity:
    def test_rollback_restores_retract(self, proc):
        proc.tell_individual("d1", in_class="Doc")
        proc.tell_link("d1", "title", "Doc")
        before = proc.store.rows()
        with pytest.raises(RuntimeError):
            with proc.telling():
                proc.retract("d1")
                assert not proc.exists("d1")
                raise RuntimeError("abort")
        assert proc.store.rows() == before
        assert proc.is_instance_of("d1", "Doc")

    def test_rollback_restores_clip(self, proc):
        prop = proc.tell_individual("v")
        before = proc.store.rows()
        with pytest.raises(RuntimeError):
            with proc.telling():
                proc.clip_validity(prop.pid, 10)
                raise RuntimeError("abort")
        assert proc.store.rows() == before
        assert proc.get("v").time.contains_point(10**9)

    def test_rollback_restores_mixed_sequence(self, proc):
        proc.tell_individual("d1", in_class="Doc")
        before = proc.store.rows()
        with pytest.raises(RuntimeError):
            with proc.telling():
                proc.tell_individual("d2", in_class="Doc")
                proc.retract("d1")
                proc.tell_link("d2", "title", "Doc")
                raise RuntimeError("abort")
        assert proc.store.rows() == before


class TestEpochRestore:
    def test_rollback_restores_fine_grained_epochs(self, proc):
        proc.define_class("A")
        proc.define_class("B")
        snapshot = (proc._isa_epoch, proc._instanceof_epoch,
                    proc._attribute_epoch)
        with pytest.raises(RuntimeError):
            with proc.telling():
                proc.tell_isa("A", "B")
                proc.tell_individual("x", in_class="A")
                proc.tell_link("A", "note", "B")
                raise RuntimeError("abort")
        assert (proc._isa_epoch, proc._instanceof_epoch,
                proc._attribute_epoch) == snapshot

    def test_rollback_does_not_leave_stale_closure_cache(self, proc):
        """The satellite's cache-correctness trap: a closure memoised
        *during* a rolled-back telling must not be revalidated when a
        later isa tell bumps the counter back onto the same value."""
        proc.define_class("A")
        proc.define_class("B")
        proc.define_class("C")
        with pytest.raises(RuntimeError):
            with proc.telling():
                proc.tell_isa("A", "B")
                # Memoise under the mid-telling epoch.
                assert proc.generalizations("A") == {"A", "B"}
                raise RuntimeError("abort")
        # Same counter value as mid-telling, different isa network:
        proc.tell_isa("A", "C")
        assert proc.generalizations("A") == {"A", "C"}
        assert "B" not in proc.specializations("B") - {"B"}

    def test_rollback_keeps_pre_telling_caches_warm(self, proc):
        proc.define_class("A")
        proc.define_class("B")
        proc.tell_isa("A", "B")
        assert proc.generalizations("A") == {"A", "B"}  # warm the cache
        hits_before = proc.stats["closure_hits"]
        with pytest.raises(RuntimeError):
            with proc.telling():
                proc.tell_individual("x")  # no isa change at all
                raise RuntimeError("abort")
        assert proc.generalizations("A") == {"A", "B"}
        assert proc.stats["closure_hits"] > hits_before

    def test_savepoint_rollback_epochs_inside_outer_telling(self, proc):
        proc.define_class("A")
        proc.define_class("B")
        proc.define_class("C")
        with proc.telling():
            proc.tell_isa("A", "B")
            with pytest.raises(RuntimeError):
                with proc.telling():
                    proc.tell_isa("B", "C")
                    assert proc.generalizations("A") == {"A", "B", "C"}
                    raise RuntimeError("abort savepoint")
            # The outer telling's own isa tell must survive the inner
            # rollback, and the closure must drop only the inner link.
            assert proc.generalizations("A") == {"A", "B"}
        assert proc.generalizations("A") == {"A", "B"}


class TestConceptBaseTransaction:
    @pytest.fixture
    def cb(self):
        base = ConceptBase()
        base.define_metaclass("TDL_EntityClass")
        base.tell("TELL Person IN TDL_EntityClass END")
        base.tell(
            """
            TELL Invitation IN TDL_EntityClass WITH
              attribute sender : Person
            END
            """
        )
        base.tell("TELL bob IN Person END")
        return base

    def test_transaction_commits_consistent_batch(self, cb):
        cb.add_constraint("Invitation", "HasSender", "Known(self.sender)")
        cb.enforce_on_commit()
        with cb.transaction():
            cb.tell(
                """
                TELL inv1 IN Invitation WITH
                  sender sender : bob
                END
                """
            )
        assert cb.propositions.exists("inv1")

    def test_transaction_rolls_back_on_consistency_failure(self, cb):
        cb.add_constraint("Invitation", "HasSender", "Known(self.sender)")
        cb.enforce_on_commit()
        with pytest.raises(ConsistencyError):
            with cb.transaction():
                cb.tell("TELL inv2 IN Invitation END")
        assert not cb.propositions.exists("inv2")

    def test_telling_keeps_legacy_commit_semantics(self, cb):
        """`telling()` still leaves a rejected batch committed so the
        caller can inspect and repair it — only `transaction()` adds the
        automatic rollback."""
        cb.add_constraint("Invitation", "HasSender", "Known(self.sender)")
        cb.enforce_on_commit()
        with pytest.raises(ConsistencyError):
            with cb.telling():
                cb.tell("TELL inv3 IN Invitation END")
        assert cb.propositions.exists("inv3")

    def test_transaction_nests(self, cb):
        with cb.transaction():
            cb.tell("TELL outer_obj IN Invitation END")
            with pytest.raises(RuntimeError):
                with cb.transaction():
                    cb.tell("TELL inner_obj IN Invitation END")
                    raise RuntimeError("abort")
            assert not cb.propositions.exists("inner_obj")
        assert cb.propositions.exists("outer_obj")
