"""Stress tests: global invariants over randomised evolution histories.

Whatever random sequence of mappings, normalisations, backtrackings and
replays a workload performs, the GKBMS must end in a state where:

1. the module is loadable into the execution engine (no dangling
   selectors/constructors);
2. every active decision's outputs exist in the knowledge base, every
   retracted decision's outputs are gone;
3. the RMS view of the history agrees with the record statuses;
4. configurations are derivable and name their missing pieces;
5. the whole state survives a persistence roundtrip.
"""

import json

import pytest

from repro.core.persistence import load_gkbms, save_gkbms
from repro.core.rms import DecisionRMS
from repro.scenario.workload import DesignEvolutionWorkload

SEEDS = [1, 7, 23, 42, 99]


@pytest.fixture(params=SEEDS)
def evolved(request):
    workload = DesignEvolutionWorkload(seed=request.param,
                                       hierarchies=3, steps=14)
    gkbms = workload.run()
    return workload, gkbms


class TestWorkloadInvariants:
    def test_history_produced_events(self, evolved):
        workload, _gkbms = evolved
        assert len(workload.events) == workload.steps
        kinds = {event.kind for event in workload.events}
        assert kinds <= {"map", "normalize", "map_txn", "backtrack",
                         "replay", "skip"}

    def test_module_always_executable(self, evolved):
        _workload, gkbms = evolved
        database = gkbms.build_database()
        # every base relation accepts a row with just its key fields
        for name, instance in database.relations.items():
            row = {part: f"v_{part}" for part in instance.decl.key}
            instance.insert(row)
        # every constructor evaluates
        for name in gkbms.module.constructors:
            database.rows(name)

    def test_active_outputs_exist_retracted_gone(self, evolved):
        """An object exists iff *some* active decision produced it —
        names may be re-created after a backtrack, e.g. when a hierarchy
        is remapped by a different strategy."""
        _workload, gkbms = evolved
        produced_by_active = {
            name
            for record in gkbms.decisions.records.values()
            if not record.is_retracted
            for name in record.all_outputs()
        }
        produced_ever = {
            name
            for record in gkbms.decisions.records.values()
            for name in record.all_outputs()
        }
        for name in produced_ever:
            assert gkbms.processor.exists(name) == (
                name in produced_by_active
            ), name

    def test_rms_agrees_with_record_statuses(self, evolved):
        _workload, gkbms = evolved
        rms = DecisionRMS()
        rms.load(
            gkbms.decisions.records[did] for did in gkbms.decisions.order
        )
        for record in gkbms.decisions.records.values():
            for name in record.all_outputs():
                if gkbms.processor.exists(name):
                    assert rms.is_current(name) or any(
                        name in other.all_outputs()
                        and not other.is_retracted
                        for other in gkbms.decisions.records.values()
                    )

    def test_configuration_derivable(self, evolved):
        _workload, gkbms = evolved
        config = gkbms.versions().configure("implementation")
        assert isinstance(config.objects, list)
        if not config.complete:
            assert config.missing

    def test_dependency_graph_consistent(self, evolved):
        _workload, gkbms = evolved
        graph = gkbms.dependency_graph()
        for source, _label, destination in graph.edges:
            # every edge endpoint is a decision, tool, or existing object
            known = (
                source in gkbms.decisions.records
                or gkbms.processor.exists(source)
                or source in gkbms.tools.names()
            )
            assert known, source

    def test_persistence_roundtrip(self, evolved):
        _workload, gkbms = evolved
        data = json.loads(json.dumps(save_gkbms(gkbms)))
        restored = load_gkbms(data)
        assert sorted(restored.module.names()) == sorted(gkbms.module.names())
        assert restored.decisions.order == gkbms.decisions.order
        restored.build_database()  # still executable

    def test_reproducible(self, evolved):
        workload, gkbms = evolved
        again = DesignEvolutionWorkload(seed=workload.seed,
                                        hierarchies=3, steps=14)
        gkbms2 = again.run()
        assert [e.kind for e in again.events] == [
            e.kind for e in workload.events
        ]
        assert sorted(gkbms2.module.names()) == sorted(gkbms.module.names())
        assert gkbms2.decisions.order == gkbms.decisions.order
