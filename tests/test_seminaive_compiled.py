"""Compiled join-plan evaluation vs the interpreted baseline.

``evaluate(..., optimise=True)`` compiles each rule into an index-joined
plan; ``optimise=False`` keeps the original unify-per-row interpreter.
Both must compute bit-identical stratified fixpoints on every program
shape: recursion, negation across strata, constants in body literals,
repeated variables, and cross-products.
"""

from repro.deduction import Database, evaluate, parse_program
from repro.deduction.seminaive import new_stats


def both(program_text, edb_facts):
    rules = parse_program(program_text)
    results = []
    for optimise in (True, False):
        edb = Database({pred: set(rows) for pred, rows in edb_facts.items()})
        results.append(evaluate(rules, edb, optimise=optimise))
    return results


def assert_identical(compiled, interpreted):
    predicates = set(compiled.predicates()) | set(interpreted.predicates())
    for predicate in predicates:
        assert compiled.rows(predicate) == interpreted.rows(predicate), predicate


class TestEquivalence:
    def test_linear_recursion(self):
        compiled, interpreted = both(
            """
            path(?x, ?y) :- edge(?x, ?y).
            path(?x, ?z) :- path(?x, ?y), edge(?y, ?z).
            """,
            {"edge": {("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")}},
        )
        assert_identical(compiled, interpreted)
        assert ("a", "d") in compiled.rows("path")

    def test_negation_across_strata(self):
        compiled, interpreted = both(
            """
            reach(?x) :- start(?x).
            reach(?y) :- reach(?x), edge(?x, ?y).
            unreached(?x) :- node(?x), not reach(?x).
            """,
            {
                "edge": {("a", "b"), ("c", "d")},
                "start": {("a",)},
                "node": {("a",), ("b",), ("c",), ("d",)},
            },
        )
        assert_identical(compiled, interpreted)
        assert compiled.rows("unreached") == frozenset({("c",), ("d",)})

    def test_constants_in_body(self):
        compiled, interpreted = both(
            """
            special(?x) :- edge(?x, hub).
            onward(?x, ?y) :- edge(hub, ?y), special(?x).
            """,
            {"edge": {("a", "hub"), ("b", "hub"), ("hub", "z"), ("a", "b")}},
        )
        assert_identical(compiled, interpreted)
        assert compiled.rows("special") == frozenset({("a",), ("b",)})
        assert compiled.rows("onward") == frozenset({("a", "z"), ("b", "z")})

    def test_repeated_variables(self):
        compiled, interpreted = both(
            """
            loop(?x) :- edge(?x, ?x).
            mirror(?x, ?y) :- pair(?x, ?y, ?x).
            """,
            {
                "edge": {("a", "a"), ("a", "b"), ("b", "b")},
                "pair": {("a", "b", "a"), ("a", "b", "c"), ("d", "d", "d")},
            },
        )
        assert_identical(compiled, interpreted)
        assert compiled.rows("loop") == frozenset({("a",), ("b",)})
        assert compiled.rows("mirror") == frozenset({("a", "b"), ("d", "d")})

    def test_cross_product_body(self):
        compiled, interpreted = both(
            "combo(?x, ?y) :- left(?x), right(?y).",
            {"left": {("a",), ("b",)}, "right": {("1",), ("2",)}},
        )
        assert_identical(compiled, interpreted)
        assert len(compiled.rows("combo")) == 4

    def test_same_generation(self):
        compiled, interpreted = both(
            """
            sg(?x, ?x) :- node(?x).
            sg(?x, ?y) :- edge(?px, ?x), sg(?px, ?py), edge(?py, ?y).
            """,
            {
                "edge": {("r", "a"), ("r", "b"), ("a", "c"), ("b", "d")},
                "node": {("r",), ("a",), ("b",), ("c",), ("d",)},
            },
        )
        assert_identical(compiled, interpreted)
        assert ("c", "d") in compiled.rows("sg")

    def test_empty_program_and_empty_edb(self):
        compiled, interpreted = both("p(?x) :- q(?x).", {})
        assert_identical(compiled, interpreted)
        assert compiled.rows("p") == frozenset()

    def test_stats_populated_only_when_requested(self):
        rules = parse_program(
            """
            path(?x, ?y) :- edge(?x, ?y).
            path(?x, ?z) :- path(?x, ?y), edge(?y, ?z).
            """
        )
        edb = Database({"edge": {(f"n{i}", f"n{i+1}") for i in range(10)}})
        stats = new_stats()
        evaluate(rules, edb, optimise=True, stats=stats)
        assert stats["join_probes"] > 0
        assert stats["index_probes"] > 0
        assert stats["iterations"] > 0
        assert stats["derived_facts"] >= 10

    def test_compiled_probes_fewer_rows(self):
        rules = parse_program(
            """
            path(?x, ?y) :- edge(?x, ?y).
            path(?x, ?z) :- path(?x, ?y), edge(?y, ?z).
            """
        )
        edge = {(f"n{i}", f"n{i+1}") for i in range(24)}
        compiled_stats, interpreted_stats = new_stats(), new_stats()
        a = evaluate(rules, Database({"edge": set(edge)}),
                     optimise=True, stats=compiled_stats)
        b = evaluate(rules, Database({"edge": set(edge)}),
                     optimise=False, stats=interpreted_stats)
        assert a.rows("path") == b.rows("path")
        assert compiled_stats["join_probes"] < interpreted_stats["join_probes"]


class TestDatabase:
    def test_rows_returns_frozenset_snapshot(self):
        db = Database({"p": {("a",)}})
        snapshot = db.rows("p")
        assert isinstance(snapshot, frozenset)
        db.add("p", ("b",))
        # the old snapshot is immutable and unchanged...
        assert snapshot == frozenset({("a",)})
        # ...and a fresh call sees the new row.
        assert db.rows("p") == frozenset({("a",), ("b",)})

    def test_rows_unknown_predicate(self):
        db = Database()
        assert db.rows("nope") == frozenset()

    def test_rows_snapshot_cached_until_mutation(self):
        db = Database({"p": {("a",), ("b",)}})
        first = db.rows("p")
        assert db.rows("p") is first  # no re-freeze on a quiet database
        db.add("p", ("c",))
        assert db.rows("p") is not first

    def test_index_maintained_on_add(self):
        db = Database({"edge": {("a", "b"), ("a", "c")}})
        index = db.index("edge", (0,))
        assert {row for row in index[("a",)]} == {("a", "b"), ("a", "c")}
        db.add("edge", ("a", "d"))
        assert ("a", "d") in db.index("edge", (0,))[("a",)]
        db.add("edge", ("z", "z"))
        assert db.index("edge", (0,))[("z",)] == [("z", "z")]

    def test_index_maintained_on_merge(self):
        db = Database({"edge": {("a", "b")}})
        db.index("edge", (1,))
        other = Database({"edge": {("c", "b"), ("d", "e")}})
        db.merge(other)
        by_dest = db.index("edge", (1,))
        assert {row for row in by_dest[("b",)]} == {("a", "b"), ("c", "b")}
        assert by_dest[("e",)] == [("d", "e")]

    def test_add_is_idempotent_for_indexes(self):
        db = Database()
        db.index("p", (0,))
        assert db.add("p", ("a", "b"))
        assert not db.add("p", ("a", "b"))  # duplicate rejected
        assert db.index("p", (0,))[("a",)] == [("a", "b")]

    def test_copy_is_independent(self):
        db = Database({"p": {("a",)}})
        clone = db.copy()
        clone.add("p", ("b",))
        assert db.rows("p") == frozenset({("a",)})
        assert clone.rows("p") == frozenset({("a",), ("b",)})

    def test_mixed_arity_rows_do_not_break_indexes(self):
        db = Database({"p": {("a",), ("a", "b")}})
        index = db.index("p", (1,))
        assert index[("b",)] == [("a", "b")]  # short row skipped, no crash
