"""Tier-1 — static model analysis ("CML lint").

Covers the analyzer subsystem end to end: diagnostic plumbing, rule
stratification and safety, constraint safety, the relevance index the
consistency checker consults (including soundness under rule-derived
labels), schema/frame lint, strict-mode commit refusal and the
``python -m repro.analysis`` command line.
"""

import json

import pytest

from repro.analysis import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    LabelDependencies,
    ModelAnalyzer,
    RelevanceIndex,
    RuleGraph,
    Severity,
    analyze_rules,
    check_frames,
    check_rule,
    footprint_of,
    spec_from_text,
)
from repro.analysis.__main__ import main as analysis_main
from repro.assertions.parser import parse_assertion
from repro.conceptbase import ConceptBase
from repro.consistency import ConsistencyChecker
from repro.errors import AnalysisError
from repro.objects.frame import parse_frames
from repro.propositions import PropositionProcessor


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------

class TestDiagnostics:
    def test_codes_registered_with_severities(self):
        assert CODES["CML001"][0] is Severity.ERROR
        assert CODES["CML003"][0] is Severity.WARNING
        assert CODES["CML005"][0] is Severity.INFO

    def test_unregistered_code_rejected(self):
        with pytest.raises(Exception):
            Diagnostic(code="CML999", severity=Severity.ERROR, message="x")

    def test_report_partitions_and_serialises(self):
        report = DiagnosticReport()
        from repro.analysis.diagnostics import make
        report.add(make("CML001", "unbound head variable", subject="r1"))
        report.add(make("CML003", "singleton", subject="r2"))
        assert len(report.errors()) == 1
        assert len(report.warnings()) == 1
        assert not report.ok
        payload = json.loads(report.to_json())
        codes = {d["code"] for d in payload["diagnostics"]}
        assert codes == {"CML001", "CML003"}
        assert "CML001" in report.render_text()

    def test_raise_if_errors_carries_diagnostics(self):
        report = DiagnosticReport()
        from repro.analysis.diagnostics import make
        report.add(make("CML004", "negative cycle"))
        with pytest.raises(AnalysisError) as excinfo:
            report.raise_if_errors()
        assert excinfo.value.diagnostics[0].code == "CML004"


# ---------------------------------------------------------------------------
# Rule safety and stratification
# ---------------------------------------------------------------------------

class TestRuleAnalysis:
    def test_unbound_head_variable_is_cml001(self):
        spec = spec_from_text(
            "r", "attr(?x, informed, ?y) :- attr(?x, sender, ?z).")
        codes = [d.code for d in check_rule(spec)]
        assert "CML001" in codes
        assert all(CODES[c][0] is not Severity.ERROR or c == "CML001"
                   for c in codes)

    def test_unbound_negated_variable_is_cml002(self):
        spec = spec_from_text(
            "r", "p(?x) :- q(?x), not r(?y).")
        assert "CML002" in [d.code for d in check_rule(spec)]

    def test_singleton_variable_warns_cml003_unless_underscored(self):
        noisy = spec_from_text("r", "p(?x) :- q(?x, ?extra).")
        assert "CML003" in [d.code for d in check_rule(noisy)]
        quiet = spec_from_text("r", "p(?x) :- q(?x, ?_extra).")
        assert "CML003" not in [d.code for d in check_rule(quiet)]

    def test_reserved_edb_head_is_cml006(self):
        spec = spec_from_text("r", "isa(?x, ?y) :- attr(?x, parent, ?y).")
        assert "CML006" in [d.code for d in check_rule(spec)]

    def test_recursion_through_negation_rejected(self):
        specs = [spec_from_text(
            "win", "win(?x) :- attr(?x, move, ?y), not win(?y).")]
        report, graph = analyze_rules(specs)
        assert [d.code for d in report.errors()] == ["CML004"]
        assert graph.negative_cycles()
        with pytest.raises(Exception):
            graph.strata()

    def test_mutual_negative_recursion_rejected(self):
        specs = [
            spec_from_text("p", "p(?x) :- base(?x), not q(?x)."),
            spec_from_text("q", "q(?x) :- base(?x), not p(?x)."),
        ]
        report, _graph = analyze_rules(specs)
        assert "CML004" in [d.code for d in report.errors()]

    def test_stratified_program_reports_order(self):
        specs = [
            spec_from_text("reach", "reach(?x, ?y) :- edge(?x, ?y)."),
            spec_from_text(
                "reach2", "reach(?x, ?z) :- edge(?x, ?y), reach(?y, ?z)."),
            spec_from_text(
                "cut", "unreachable(?x, ?y) :- node(?x), node(?y), "
                       "not reach(?x, ?y)."),
        ]
        report, graph = analyze_rules(specs)
        assert report.ok
        assert "CML005" in [d.code for d in report.diagnostics]
        strata = graph.strata()
        level = {pred: i for i, layer in enumerate(strata) for pred in layer}
        assert level["reach"] < level["unreachable"]

    def test_rule_strata_groups_rule_names(self):
        graph = RuleGraph([
            spec_from_text("a", "p(?x) :- base(?x)."),
            spec_from_text("b", "q(?x) :- base(?x), not p(?x)."),
        ])
        strata = graph.rule_strata()
        assert strata[0] == ["a"] and strata[-1] == ["b"]


# ---------------------------------------------------------------------------
# Constraint footprints and the relevance index
# ---------------------------------------------------------------------------

class TestRelevance:
    def test_footprint_extracts_labels_and_classes(self):
        expr = parse_assertion(
            "forall p/Person (Known(self.owner) and In(p.boss, Manager))")
        fp = footprint_of("C", "Doc", expr)
        assert fp.labels == {"owner", "boss"}
        assert {"Doc", "Person", "Manager"} <= set(fp.classes)
        assert not fp.opaque

    def test_relevant_filters_by_label(self):
        index = RelevanceIndex()
        index.add("C", "Doc", parse_assertion("Known(self.owner)"))
        closed = index.closed_labels(["reviewer"])
        assert index.relevant("C", closed, structural=False) is False
        closed = index.closed_labels(["owner"])
        assert index.relevant("C", closed, structural=False) is True

    def test_structural_updates_are_conservative(self):
        index = RelevanceIndex()
        index.add("C", "Doc", parse_assertion("Known(self.owner)"))
        assert index.relevant("C", frozenset(), structural=True) is True

    def test_unknown_constraint_is_relevant(self):
        index = RelevanceIndex()
        assert index.relevant("missing", frozenset({"x"}),
                              structural=False) is True

    def test_label_dependencies_close_over_rules(self):
        from repro.deduction.parser import parse_rule
        deps = LabelDependencies([
            parse_rule("attr(?x, informed, ?y) :- attr(?x, sender, ?y)."),
        ])
        assert deps.affected_labels("sender") == {"sender", "informed"}
        assert deps.affected_labels("owner") == {"owner"}

    def test_variable_label_head_makes_closure_conservative(self):
        from repro.deduction.parser import parse_rule
        deps = LabelDependencies([
            parse_rule("attr(?x, ?l, ?y) :- attr(?y, ?l, ?x), sym(?l)."),
        ])
        assert deps.affected_labels("anything") is None


def _relevance_kb():
    proc = PropositionProcessor()
    proc.define_class("Doc")
    proc.define_class("Person")
    for label in ("owner", "reviewer", "sender", "informed"):
        proc.tell_link("Doc", label, "Person", pid=f"Doc.{label}",
                       of_class="Attribute")
    proc.tell_individual("alice", in_class="Person")
    proc.tell_individual("d1", in_class="Doc")
    proc.tell_link("d1", "owner", "alice", of_class="Doc.owner")
    proc.tell_link("d1", "sender", "alice", of_class="Doc.sender")
    return proc


class TestCheckerIntegration:
    def test_irrelevant_constraint_skipped_relevant_rechecked(self):
        proc = _relevance_kb()
        checker = ConsistencyChecker(proc, set_oriented=True,
                                     use_relevance=True)
        checker.attach_constraint("Doc", "HasOwner", "Known(self.owner)",
                                  document=False)
        checker.attach_constraint("Doc", "NoReviewer",
                                  "not Known(self.reviewer)", document=False)
        batch = proc.attributes_of("d1", label="owner")
        assert checker.check_batch(batch) == []
        assert checker.stats.skipped == 1  # NoReviewer pruned
        assert checker.stats.evaluations == 1  # HasOwner evaluated

    def test_full_rescan_mode_skips_nothing(self):
        proc = _relevance_kb()
        checker = ConsistencyChecker(proc, set_oriented=True,
                                     use_relevance=False)
        checker.attach_constraint("Doc", "HasOwner", "Known(self.owner)",
                                  document=False)
        checker.attach_constraint("Doc", "NoReviewer",
                                  "not Known(self.reviewer)", document=False)
        checker.check_batch(proc.attributes_of("d1", label="owner"))
        assert checker.stats.skipped == 0
        assert checker.stats.evaluations == 2

    def test_rule_derived_label_keeps_constraint_relevant(self):
        """An update to ``sender`` must still re-check a constraint
        reading ``informed`` when a rule derives one from the other."""
        cb = ConceptBase()
        cb.define_class("Doc")
        cb.define_class("Person")
        proc = cb.propositions
        for label in ("sender", "informed"):
            proc.tell_link("Doc", label, "Person", pid=f"Doc.{label}",
                           of_class="Attribute")
        proc.tell_individual("alice", in_class="Person")
        proc.tell_individual("d1", in_class="Doc")
        proc.tell_link("d1", "sender", "alice", of_class="Doc.sender")
        cb.add_rule("attr(?x, informed, ?y) :- attr(?x, sender, ?y).")
        cb.consistency.attach_constraint(
            "Doc", "Informs", "Known(self.informed)", document=False)
        batch = proc.attributes_of("d1", label="sender")
        cb.consistency.check_batch(batch)
        assert cb.consistency.stats.skipped == 0
        assert cb.consistency.stats.evaluations >= 1

    def test_violations_identical_with_and_without_relevance(self):
        reports = {}
        for use_relevance in (False, True):
            proc = _relevance_kb()
            checker = ConsistencyChecker(proc, set_oriented=True,
                                         use_relevance=use_relevance)
            checker.attach_constraint("Doc", "OwnerIsDoc",
                                      "In(self.owner, Doc)", document=False)
            violations = checker.check_batch(
                proc.attributes_of("d1", label="owner"))
            reports[use_relevance] = sorted(
                (v.constraint, v.instance) for v in violations)
        assert reports[True] == reports[False]
        assert reports[True]  # genuinely violated, genuinely reported


# ---------------------------------------------------------------------------
# Constraint safety
# ---------------------------------------------------------------------------

class TestConstraintAnalysis:
    def test_unbound_variable_is_cml011(self):
        analyzer = ModelAnalyzer()
        analyzer.add_constraint_text(
            "Ghost", "Doc", "exists p/Person (Known(q.owner))")
        assert "CML011" in [d.code for d in analyzer.analyze().errors()]

    def test_unused_quantifier_variable_warns_cml013(self):
        analyzer = ModelAnalyzer()
        analyzer.add_constraint_text(
            "Lazy", "Doc", "exists p/Person (Known(self.owner))")
        assert "CML013" in [d.code for d in analyzer.analyze().warnings()]

    def test_undefined_class_is_cml012_with_processor(self):
        proc = PropositionProcessor()
        proc.define_class("Doc")
        analyzer = ModelAnalyzer(proc)
        analyzer.add_constraint_text(
            "Typed", "Doc", "exists p/Phantom (Known(p))")
        assert "CML012" in [d.code for d in analyzer.analyze().errors()]

    def test_syntax_error_is_cml010(self):
        analyzer = ModelAnalyzer()
        analyzer.add_constraint_text("Broken", "Doc", "exists (((")
        assert "CML010" in [d.code for d in analyzer.analyze().errors()]


# ---------------------------------------------------------------------------
# Schema / frame lint
# ---------------------------------------------------------------------------

class TestSchemaLint:
    def test_frame_into_undefined_class_is_cml031(self):
        proc = PropositionProcessor()
        frames = parse_frames("""
            TELL invite1 IN Invitation WITH
              attribute sender : alice
            END
        """)
        codes = [d.code for d in check_frames(frames, proc)]
        assert "CML031" in codes

    def test_frame_isa_undefined_class_is_cml034(self):
        proc = PropositionProcessor()
        proc.define_class("Doc")
        frames = parse_frames("""
            TELL Report IN SimpleClass ISA Missive WITH
            END
        """)
        codes = [d.code for d in check_frames(frames, proc)]
        assert "CML034" in codes

    def test_frames_defined_in_same_script_are_not_flagged(self):
        proc = PropositionProcessor()
        frames = parse_frames("""
            TELL Invitation IN SimpleClass WITH
            END

            TELL invite1 IN Invitation WITH
            END
        """)
        assert check_frames(frames, proc) == []

    def test_isa_cycle_in_store_is_cml030(self):
        from repro.analysis import check_processor
        proc = PropositionProcessor()
        for name in proc.axioms.names():
            proc.axioms.disable(name)
        proc.define_class("A")
        proc.define_class("B", isa=["A"])
        proc.tell_isa("A", "B")
        assert "CML030" in [d.code for d in check_processor(proc)]


# ---------------------------------------------------------------------------
# Strict mode (commit refusal) and ConceptBase.analyze()
# ---------------------------------------------------------------------------

class TestStrictMode:
    def test_strict_refuses_unstratifiable_rule(self):
        cb = ConceptBase(strict=True)
        with pytest.raises(AnalysisError) as excinfo:
            cb.add_rule("win(?x) :- attr(?x, move, ?y), not win(?y).")
        assert any(d.code == "CML004" for d in excinfo.value.diagnostics)
        assert cb.rules.rules() == {}  # nothing committed

    def test_strict_refuses_unsafe_constraint(self):
        cb = ConceptBase(strict=True)
        cb.define_class("Doc")
        with pytest.raises(AnalysisError) as excinfo:
            cb.add_constraint("Doc", "Ghost", "Known(q.owner)")
        assert any(d.code == "CML011" for d in excinfo.value.diagnostics)

    def test_strict_refuses_frame_into_undefined_class(self):
        cb = ConceptBase(strict=True)
        with pytest.raises(AnalysisError):
            cb.tell("""
                TELL invite1 IN Phantom WITH
                END
            """)
        assert not cb.propositions.exists("invite1")

    def test_strict_accepts_clean_commits(self):
        cb = ConceptBase(strict=True)
        cb.define_class("Doc")
        cb.tell("TELL d1 IN Doc WITH\nEND")
        cb.add_rule("related(?x, ?y) :- attr(?x, cites, ?y).")
        cb.add_constraint("Doc", "SelfKnown", "Known(self)")
        assert cb.propositions.exists("d1")

    def test_analyze_reports_on_live_model(self):
        cb = ConceptBase()
        cb.define_class("Doc")
        cb.add_rule("related(?x, ?y) :- attr(?x, cites, ?y).")
        report = cb.analyze()
        assert report.ok
        assert "CML005" in [d.code for d in report.diagnostics]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

BROKEN_SCRIPT = """\
% a model with seeded problems
TELL Doc IN SimpleClass WITH
END

TELL d1 IN Ghost WITH
END

RULE bad: attr(?x, informed, ?y) :- attr(?x, sender, ?z).
RULE win: win(?x) :- attr(?x, move, ?y), not win(?y).
CONSTRAINT Doc Unbound: Known(q.owner)
"""

CLEAN_SCRIPT = """\
TELL Doc IN SimpleClass WITH
END

TELL d1 IN Doc WITH
END

RULE related: related(?x, ?y) :- attr(?x, cites, ?y).
CONSTRAINT Doc SelfKnown: Known(self)
"""


class TestCLI:
    def test_broken_script_exits_1_with_stable_codes(self, tmp_path, capsys):
        model = tmp_path / "broken.model"
        model.write_text(BROKEN_SCRIPT)
        assert analysis_main([str(model)]) == 1
        out = capsys.readouterr().out
        for code in ("CML031", "CML001", "CML004", "CML011"):
            assert code in out

    def test_clean_script_exits_0(self, tmp_path):
        model = tmp_path / "clean.model"
        model.write_text(CLEAN_SCRIPT)
        assert analysis_main([str(model)]) == 0

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        model = tmp_path / "broken.model"
        model.write_text(BROKEN_SCRIPT)
        analysis_main(["--json", str(model)])
        payload = json.loads(capsys.readouterr().out)
        assert {"CML001", "CML004"} <= {d["code"]
                                        for d in payload["diagnostics"]}

    def test_strict_promotes_warnings_to_failure(self, tmp_path):
        model = tmp_path / "warn.model"
        model.write_text(
            "RULE r: related(?x, ?y) :- attr(?x, cites, ?y), p(?odd).\n")
        assert analysis_main([str(model)]) == 0
        assert analysis_main(["--strict", str(model)]) == 1

    def test_missing_file_exits_2(self):
        assert analysis_main(["/nonexistent/model.file"]) == 2

    def test_codes_listing(self, capsys):
        assert analysis_main(["--codes"]) == 0
        out = capsys.readouterr().out
        assert "CML001" in out and "CML040" in out

    def test_python_module_input(self, tmp_path):
        module = tmp_path / "model.py"
        module.write_text(
            "from repro.conceptbase import ConceptBase\n"
            "cb = ConceptBase()\n"
            "cb.define_class('Doc')\n"
            "cb.add_rule('related(?x, ?y) :- attr(?x, cites, ?y).')\n"
        )
        assert analysis_main([str(module)]) == 0
