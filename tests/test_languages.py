"""Tests for the TaxisDL and DBPL language substrates."""

import pytest

from repro.errors import LanguageError
from repro.languages.taxisdl import (
    TDLAttribute,
    TDLEntityClass,
    TDLModel,
    parse_taxisdl,
    print_model,
)
from repro.languages.dbpl import (
    DBPLModule,
    Field,
    ForeignKey,
    Join,
    Project,
    RelationDecl,
    RelationRef,
    parse_dbpl,
    print_module,
    print_relation,
)
from repro.languages.dbpl.parser import parse_algebra

PAPER_DESIGN = """
entity class Papers with
  date : Date
  author : Person
end

entity class Invitations isa Papers with
  sender : Person
  receiver : set of Person
end

entity class Minutes isa Papers with
  recorder : Person
end

transaction class SendInvitation with
  in inv : Invitations
  pre Known(inv.sender)
  post A(inv, sent, yes)
end

script OrganiseMeeting with
  step SendInvitation
end
"""


class TestTaxisDLAst:
    def test_duplicate_attribute_rejected(self):
        with pytest.raises(LanguageError):
            TDLEntityClass(
                "X",
                attributes=[TDLAttribute("a", "T"), TDLAttribute("a", "U")],
            )

    def test_key_must_be_attribute(self):
        with pytest.raises(LanguageError):
            TDLEntityClass("X", attributes=[TDLAttribute("a", "T")], key=("b",))

    def test_set_valued_detection(self):
        cls = TDLEntityClass(
            "X", attributes=[TDLAttribute("r", "P", set_valued=True)]
        )
        assert cls.has_set_valued_attribute

    def test_model_duplicate_class(self):
        model = TDLModel("m")
        model.add_class(TDLEntityClass("A"))
        with pytest.raises(LanguageError):
            model.add_class(TDLEntityClass("A"))

    def test_unknown_superclass_rejected(self):
        model = TDLModel("m")
        with pytest.raises(LanguageError):
            model.add_class(TDLEntityClass("B", isa=["Ghost"]))


class TestTaxisDLParser:
    def test_paper_design_parses(self):
        model = parse_taxisdl(PAPER_DESIGN)
        assert set(model.classes) == {"Papers", "Invitations", "Minutes"}
        assert model.get("Invitations").attribute("receiver").set_valued
        assert model.transactions["SendInvitation"].preconditions == [
            "Known(inv.sender)"
        ]
        assert model.scripts["OrganiseMeeting"].steps == ["SendInvitation"]

    def test_hierarchy_queries(self):
        model = parse_taxisdl(PAPER_DESIGN)
        assert model.leaves("Papers") == ["Invitations", "Minutes"]
        assert model.subclasses("Papers") == ["Invitations", "Minutes"]
        assert model.superclasses("Invitations") == ["Papers"]
        assert model.roots() == ["Papers"]

    def test_inherited_attributes(self):
        model = parse_taxisdl(PAPER_DESIGN)
        names = [a.name for a in model.all_attributes("Invitations")]
        assert names == ["date", "author", "sender", "receiver"]

    def test_attribute_redefinition_overrides(self):
        model = parse_taxisdl(
            """
            entity class A with
              f : T1
            end
            entity class B isa A with
              f : T2
            end
            """
        )
        merged = {a.name: a.target for a in model.all_attributes("B")}
        assert merged == {"f": "T2"}

    def test_key_clause(self):
        model = parse_taxisdl(
            """
            entity class R with
              d : Date
              a : Person
              key d, a
            end
            """
        )
        assert model.get("R").key == ("d", "a")

    def test_comments_ignored(self):
        model = parse_taxisdl(
            """
            -- the document model
            entity class A with
              f : T -- trailing comment
            end
            """
        )
        assert model.get("A").attribute("f").target == "T"

    def test_roundtrip_through_printer(self):
        model = parse_taxisdl(PAPER_DESIGN)
        reparsed = parse_taxisdl(print_model(model))
        assert set(reparsed.classes) == set(model.classes)
        assert reparsed.get("Invitations").attributes == model.get(
            "Invitations"
        ).attributes
        assert set(reparsed.transactions) == set(model.transactions)

    @pytest.mark.parametrize(
        "bad",
        [
            "entity class A with\n  ???\nend",
            "entity class A with\n  f : T",  # missing end
            "end",
            "mystery block\nend",
            "script S with\n  not a step\nend",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(LanguageError):
            parse_taxisdl(bad)


PAPER_MODULE = """
DATABASE MODULE Meetings;

InvitationRel2 = RELATION
  paperkey : Surrogate,
  sender : Person,
  date : Date
OF InvitationType KEY paperkey;

InvReceivRel = RELATION
  paperkey : Surrogate,
  receiver : Person
KEY paperkey, receiver;

SELECTOR InvitationsPaperIC ON InvReceivRel (paperkey) REFERENCES InvitationRel2 (paperkey);

CONSTRUCTOR ConsInvitation AS JOIN InvitationRel2, InvReceivRel ON paperkey;

TRANSACTION AddInvitation(inv : Invitation)
BEGIN
  INSERT InvitationRel2;
  INSERT InvReceivRel;
END;

END Meetings.
"""


class TestDBPLAst:
    def test_relation_needs_key(self):
        with pytest.raises(LanguageError):
            RelationDecl("R", [Field("a")], key=())

    def test_key_must_be_field(self):
        with pytest.raises(LanguageError):
            RelationDecl("R", [Field("a")], key=("b",))

    def test_duplicate_fields_rejected(self):
        with pytest.raises(LanguageError):
            RelationDecl("R", [Field("a"), Field("a")], key=("a",))

    def test_module_add_and_get(self):
        module = DBPLModule("M")
        rel = RelationDecl("R", [Field("k")], key=("k",))
        module.add(rel)
        assert module.get("R") is rel
        with pytest.raises(LanguageError):
            module.add(RelationDecl("R", [Field("k")], key=("k",)))

    def test_module_remove(self):
        module = DBPLModule("M")
        module.add(RelationDecl("R", [Field("k")], key=("k",)))
        module.remove("R")
        with pytest.raises(LanguageError):
            module.get("R")

    def test_algebra_relations_listing(self):
        expr = Join(RelationRef("A"), Project(RelationRef("B"), ("x",)), ("k",))
        assert expr.relations() == ["A", "B"]


class TestDBPLParser:
    def test_paper_module_parses(self):
        module = parse_dbpl(PAPER_MODULE)
        assert set(module.relations) == {"InvitationRel2", "InvReceivRel"}
        selector = module.selectors["InvitationsPaperIC"]
        assert isinstance(selector.constraint, ForeignKey)
        assert selector.constraint.target == "InvitationRel2"
        constructor = module.constructors["ConsInvitation"]
        assert isinstance(constructor.expression, Join)
        txn = module.transactions["AddInvitation"]
        assert txn.touched_relations() == ["InvitationRel2", "InvReceivRel"]

    def test_check_selector(self):
        module = parse_dbpl(
            "DATABASE MODULE M;\n"
            "R = RELATION k : INT KEY k;\n"
            "SELECTOR Pos ON R CHECK (k > 0);\n"
            "END M.\n"
        )
        from repro.languages.dbpl.ast import Predicate

        assert isinstance(module.selectors["Pos"].constraint, Predicate)

    def test_roundtrip_through_printer(self):
        module = parse_dbpl(PAPER_MODULE)
        reparsed = parse_dbpl(print_module(module))
        assert set(reparsed.names()) == set(module.names())
        assert reparsed.relations["InvitationRel2"].key == ("paperkey",)

    def test_print_relation_code_frame(self):
        module = parse_dbpl(PAPER_MODULE)
        frame = print_relation(module.relations["InvitationRel2"])
        assert frame.startswith("InvitationRel2 = RELATION")
        assert "OF InvitationType KEY paperkey;" in frame

    def test_parse_algebra_nested(self):
        expr = parse_algebra(
            "PROJECT JOIN A, B ON k ON x, y"
        )
        assert isinstance(expr, Project)
        assert expr.columns == ("x", "y")

    def test_parse_algebra_select(self):
        expr = parse_algebra("SELECT R WHERE a = 'v' AND b = 'w'")
        from repro.languages.dbpl.ast import Select

        assert isinstance(expr, Select)
        assert expr.equalities == (("a", "v"), ("b", "w"))

    def test_parse_algebra_rename_union(self):
        expr = parse_algebra("UNION RENAME A (x AS y), B")
        from repro.languages.dbpl.ast import Rename, Union

        assert isinstance(expr, Union)
        assert isinstance(expr.left, Rename)

    @pytest.mark.parametrize(
        "bad",
        [
            "R = RELATION k : INT KEY k;",  # no module header
            "DATABASE MODULE M;\nGIBBERISH;\nEND M.",
            "",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(LanguageError):
            parse_dbpl(bad)
