"""Gate for ``examples/decision_history.py`` — the walkthrough must
keep running end to end and keep showing the section-4 story: the
associative-key choice recorded over the wire, selectively backtracked,
still re-applicable, and visible as a retracted alternative version."""

from examples.decision_history import main


def test_walkthrough_runs_and_tells_the_fig_2_4_story(capsys):
    main()
    out = capsys.readouterr().out
    # the three decisions land in the ledger with their kinds
    assert "d1: DecMoveDown" in out
    assert "d2: DecNormalize" in out
    assert "d3: DecKeySubstitution" in out
    # the justification graph chains them
    assert "d1 -> d2  (from-to)" in out
    assert "d2 -> d3  (from-to)" in out
    # fig 2-4: only the key choice falls
    assert "backtracked d3 retracted: ['d3']" in out
    # the retracted choice would still apply (revision support)
    assert "applicable: True" in out
    # fig 3-4: the key variant shows as a retracted alternative version
    assert "InvitationRel2~assockey (retracted)" in out
    assert "choice d3 (retracted)" in out
