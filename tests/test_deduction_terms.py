"""Tests for terms, rules, unification."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeductionError
from repro.deduction import Constant, Literal, Rule, Variable, unify
from repro.deduction.terms import bind, ground_tuple, resolve

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def lit(pred, *args, negated=False):
    terms = tuple(
        a if isinstance(a, (Variable, Constant)) else Constant(a) for a in args
    )
    return Literal(pred, terms, negated=negated)


class TestUnify:
    def test_constant_match(self):
        assert unify(lit("p", "a"), lit("p", "a")) == {}

    def test_constant_mismatch(self):
        assert unify(lit("p", "a"), lit("p", "b")) is None

    def test_predicate_mismatch(self):
        assert unify(lit("p", "a"), lit("q", "a")) is None

    def test_arity_mismatch(self):
        assert unify(lit("p", "a"), lit("p", "a", "b")) is None

    def test_negation_mismatch(self):
        assert unify(lit("p", "a"), lit("p", "a", negated=True)) is None

    def test_variable_binding(self):
        theta = unify(lit("p", X, "b"), lit("p", "a", Y))
        assert resolve(X, theta) == Constant("a")
        assert resolve(Y, theta) == Constant("b")

    def test_shared_variable_consistency(self):
        assert unify(lit("p", X, X), lit("p", "a", "b")) is None
        theta = unify(lit("p", X, X), lit("p", "a", "a"))
        assert theta is not None

    def test_unify_extends_existing_substitution(self):
        theta = {"x": Constant("a")}
        out = unify(lit("p", X), lit("p", "b"), theta)
        assert out is None
        out = unify(lit("p", X), lit("p", "a"), theta)
        assert out == theta

    @given(st.text(min_size=1, max_size=5), st.text(min_size=1, max_size=5))
    def test_unify_symmetric_on_ground(self, a, b):
        result_ab = unify(lit("p", a), lit("p", b))
        result_ba = unify(lit("p", b), lit("p", a))
        assert (result_ab is None) == (result_ba is None)


class TestRuleSafety:
    def test_safe_rule_ok(self):
        Rule(lit("q", X), (lit("p", X),))

    def test_unsafe_head_variable(self):
        with pytest.raises(DeductionError):
            Rule(lit("q", X, Y), (lit("p", X),))

    def test_unsafe_negation(self):
        with pytest.raises(DeductionError):
            Rule(lit("q", X), (lit("p", X), lit("r", Y, negated=True)))

    def test_negated_head_rejected(self):
        with pytest.raises(DeductionError):
            Rule(lit("q", X, negated=True), (lit("p", X),))

    def test_fact_with_variables_ok(self):
        # facts without body do not trip the safety check; the engines
        # require groundness at evaluation time
        Rule(lit("q", "a"))


class TestHelpers:
    def test_ground_tuple(self):
        theta = {"x": Constant("a")}
        assert ground_tuple(lit("p", X, "b"), theta) == ("a", "b")

    def test_ground_tuple_unbound_raises(self):
        with pytest.raises(DeductionError):
            ground_tuple(lit("p", X), {})

    def test_bind(self):
        bound = bind(lit("p", X, Y), ["a", "b"])
        assert bound.is_ground()
        with pytest.raises(DeductionError):
            bind(lit("p", X), ["a", "b"])

    def test_rename_avoids_capture(self):
        rule = Rule(lit("q", X), (lit("p", X),))
        fresh = rule.rename("7")
        assert fresh.head.args[0].name == "x#7"
        assert fresh.body[0].args[0].name == "x#7"
