"""Tests for the ConceptBase facade and behaviour propositions."""

import pytest

from repro import ConceptBase
from repro.errors import ConsistencyError, PropositionError, ReproError


@pytest.fixture
def cb():
    conceptbase = ConceptBase()
    conceptbase.define_metaclass("TDL_EntityClass")
    conceptbase.tell("TELL Person IN TDL_EntityClass END")
    conceptbase.tell(
        """
        TELL Paper IN TDL_EntityClass END

        TELL Invitation IN TDL_EntityClass ISA Paper WITH
          attribute sender : Person
        END
        """
    )
    conceptbase.tell("TELL bob IN Person END")
    conceptbase.tell(
        """
        TELL inv1 IN Invitation WITH
          sender sender : bob
        END
        """
    )
    return conceptbase


class TestTellAsk:
    def test_multi_frame_tell(self, cb):
        assert cb.propositions.exists("Paper")
        assert cb.propositions.exists("Invitation")

    def test_ask_object(self, cb):
        frame = cb.ask_object("Invitation")
        assert frame.isa == ["Paper"]

    def test_ask_closed_assertion(self, cb):
        assert cb.ask("exists i/Invitation (Known(i.sender))")
        assert not cb.ask("exists i/Invitation (i.sender = nobody)")

    def test_ask_with_environment(self, cb):
        assert cb.ask("Known(self.sender)", {"self": "inv1"})

    def test_ask_all_witnesses(self, cb):
        assert cb.ask_all("exists i/Invitation (i.sender = bob)") == [
            {"i": "inv1"}
        ]

    def test_ask_all_requires_exists(self, cb):
        with pytest.raises(ReproError):
            cb.ask_all("Known(inv1.sender)")

    def test_untell(self, cb):
        cb.untell("inv1")
        assert not cb.propositions.exists("inv1")

    def test_instances(self, cb):
        assert cb.instances("Paper") == ["inv1"]

    def test_summary(self, cb):
        counts = cb.summary()
        assert counts["individuals"] > 5


class TestRulesAndConstraints:
    def test_query_through_rules(self, cb):
        cb.add_rule(
            "attr(?x, informed, ?y) :- in(?x, Invitation), attr(?x, sender, ?y).",
            name="informed",
        )
        assert cb.query("attr(?x, informed, ?y)") == [
            ("inv1", "informed", "bob")
        ]

    def test_check_finds_violations(self, cb):
        cb.add_constraint("Invitation", "HasSender", "Known(self.sender)")
        cb.tell("TELL inv2 IN Invitation END")
        violations = cb.check()
        assert [v.instance for v in violations] == ["inv2"]

    def test_enforce_on_commit(self, cb):
        cb.add_constraint("Invitation", "HasSender", "Known(self.sender)")
        cb.enforce_on_commit()
        with pytest.raises(ConsistencyError):
            with cb.telling():
                cb.tell("TELL inv3 IN Invitation END")


class TestDisplays:
    def test_display_behaviour(self, cb):
        text = cb.display("inv1")
        assert "inv1" in text and "sender" in text

    def test_relational_display(self, cb):
        text = cb.relational_display("Invitation")
        assert "inv1" in text and "bob" in text
        # annotations do not become columns
        cb.add_constraint("Invitation", "C", "Known(self.sender)")
        assert "constraint" not in cb.relational_display("Invitation")

    def test_browse_directions(self, cb):
        down = cb.browse("Paper", direction="specializations")
        assert "Invitation" in down
        up = cb.browse("Invitation", direction="generalizations")
        assert "Paper" in up
        inst = cb.browse("Invitation", direction="instances")
        assert "inv1" in inst
        with pytest.raises(ReproError):
            cb.browse("Paper", direction="sideways")


class TestBehaviours:
    def test_default_behaviours(self, cb):
        assert "display" in cb.behaviours.behaviours_of("inv1")
        assert cb.invoke("inv1", "classes") == sorted(
            cb.propositions.classes_of("inv1")
        )

    def test_custom_behaviour(self, cb):
        cb.define_behaviour(
            "Invitation", "summary",
            lambda proc, name: f"{name} from "
            + ",".join(p.destination
                       for p in proc.attributes_of(name, label="sender")),
        )
        assert cb.invoke("inv1", "summary") == "inv1 from bob"

    def test_override_most_specific_wins(self, cb):
        cb.define_behaviour("Paper", "kind", lambda proc, name: "paper")
        cb.define_behaviour("Invitation", "kind", lambda proc, name: "invitation")
        assert cb.invoke("inv1", "kind") == "invitation"

    def test_inherited_behaviour(self, cb):
        cb.define_behaviour("Paper", "kind", lambda proc, name: "paper")
        assert cb.invoke("inv1", "kind") == "paper"

    def test_behaviour_documented_in_kb(self, cb):
        cb.define_behaviour("Paper", "kind", lambda proc, name: "paper")
        links = cb.propositions.attributes_of("Paper", label="behaviour")
        assert [p.destination for p in links] == ["Behaviour_Paper_kind"]

    def test_unknown_behaviour(self, cb):
        with pytest.raises(PropositionError):
            cb.invoke("inv1", "teleport")

    def test_behaviour_on_unknown_object(self, cb):
        with pytest.raises(PropositionError):
            cb.invoke("ghost", "display")

    def test_behaviour_on_non_class_rejected(self, cb):
        with pytest.raises(PropositionError):
            cb.define_behaviour("inv1", "x", lambda proc, name: None)


class TestAsOfQueries:
    def test_instances_at_time(self):
        from repro.timecalc import Interval

        cb = ConceptBase()
        cb.define_class("Doc")
        cb.propositions.tell_individual("d1", in_class="Doc",
                                        time=Interval.from_ticks(0, 10))
        cb.propositions.tell_individual("d2", in_class="Doc",
                                        time=Interval.since(5))
        assert cb.instances("Doc", at=3) == ["d1"]
        assert cb.instances("Doc", at=7) == ["d1", "d2"]
        assert cb.instances("Doc", at=12) == ["d2"]
        assert cb.instances("Doc") == ["d1", "d2"]
