"""Tests for the consistency checker, including set-oriented batching."""

import pytest

from repro.errors import ConsistencyError
from repro.consistency import ConsistencyChecker
from repro.propositions import PropositionProcessor


@pytest.fixture
def kb():
    proc = PropositionProcessor()
    proc.define_class("Paper")
    proc.define_class("Invitation", isa=["Paper"])
    proc.define_class("Person")
    proc.tell_link("Invitation", "sender", "Person", pid="Invitation.sender",
                   of_class="Attribute")
    proc.tell_individual("bob", in_class="Person")
    return proc


class TestConstraintManagement:
    def test_attach_documents_constraint_proposition(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        assert kb.exists("Assertion_HasSender")
        links = kb.attributes_of("Invitation", label="constraint")
        assert any(p.destination == "Assertion_HasSender" for p in links)

    def test_duplicate_name_rejected(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Paper", "C1", "Known(self.sender)")
        with pytest.raises(ConsistencyError):
            checker.attach_constraint("Paper", "C1", "Known(self.sender)")

    def test_drop_constraint(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Paper", "C1", "Known(self.sender)",
                                  document=False)
        checker.drop_constraint("C1")
        assert checker.constraints() == {}
        with pytest.raises(ConsistencyError):
            checker.drop_constraint("C1")

    def test_constraints_inherited_down_isa(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Paper", "PaperRule", "Known(self.sender)",
                                  document=False)
        names = [c.name for c in checker.constraints_for("Invitation")]
        assert names == ["PaperRule"]


class TestChecking:
    def test_instance_violation_found(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        kb.tell_individual("inv1", in_class="Invitation")
        violations = checker.check_instance("inv1")
        assert len(violations) == 1
        assert violations[0].constraint == "HasSender"

    def test_satisfied_instance_clean(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        kb.tell_individual("inv1", in_class="Invitation")
        kb.tell_link("inv1", "sender", "bob", of_class="Invitation.sender")
        assert checker.check_instance("inv1") == []

    def test_check_class_covers_extent(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        kb.tell_individual("inv1", in_class="Invitation")
        kb.tell_individual("inv2", in_class="Invitation")
        violations = checker.check_class("Invitation")
        assert {v.instance for v in violations} == {"inv1", "inv2"}

    def test_global_constraint(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint(
            "Invitation", "SomeInvitation", "exists i/Invitation (i = i)",
            document=False,
        )
        violations = checker.check_class("Invitation")
        assert len(violations) == 1  # extent currently empty
        assert violations[0].instance is None
        kb.tell_individual("inv1", in_class="Invitation")
        assert checker.check_class("Invitation") == []

    def test_check_all(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        kb.tell_individual("inv1", in_class="Invitation")
        assert len(checker.check_all()) == 1


class TestBatchChecking:
    def _setup(self, kb, set_oriented):
        checker = ConsistencyChecker(kb, set_oriented=set_oriented)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        kb.tell_individual("inv1", in_class="Invitation")
        lk = kb.tell_link("inv1", "sender", "bob", of_class="Invitation.sender")
        return checker, lk

    def test_set_oriented_deduplicates(self, kb):
        checker, lk = self._setup(kb, set_oriented=True)
        props = [kb.get(lk.pid)] * 5  # same proposition updated repeatedly
        checker.check_batch(props)
        evaluations_set = checker.stats.evaluations
        checker2 = ConsistencyChecker(kb, set_oriented=False)
        checker2.attach_constraint("Invitation", "HasSender2", "Known(self.sender)",
                                   document=False)
        checker2.check_batch(props)
        assert checker2.stats.evaluations > evaluations_set

    def test_batch_reports_violations(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        node = kb.tell_individual("inv2", in_class="Invitation")
        violations = checker.check_batch([node])
        assert [v.instance for v in violations] == ["inv2"]

    def test_naive_mode_same_violations(self, kb):
        checker = ConsistencyChecker(kb, set_oriented=False)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        node = kb.tell_individual("inv2", in_class="Invitation")
        violations = checker.check_batch([node])
        assert [v.instance for v in violations] == ["inv2"]


class TestCommitHook:
    def test_hook_rejects_inconsistent_telling(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        checker.install_hook()
        with pytest.raises(ConsistencyError):
            with kb.telling():
                kb.tell_individual("inv1", in_class="Invitation")
        # note: the telling commits before the listener runs; the error
        # surfaces to the caller who can then retract

    def test_hook_accepts_consistent_telling(self, kb):
        checker = ConsistencyChecker(kb)
        checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
        checker.install_hook()
        with kb.telling():
            kb.tell_individual("inv1", in_class="Invitation")
            kb.tell_link("inv1", "sender", "bob", of_class="Invitation.sender")
        assert kb.exists("inv1")
