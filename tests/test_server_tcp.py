"""The TCP transport, the shell's client mode and the smoke command —
everything over real sockets on an ephemeral port."""

import json
import signal
import socket
import threading

import pytest

from repro.conceptbase import ConceptBase
from repro.errors import CommitConflict, ConnectionLost, ServerError
from repro.faults import FaultPlan, FaultyIO
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore
from repro.server.client import RetryPolicy, TCPClient
from repro.server.protocol import MAX_FRAME
from repro.server.service import GKBMSService
from repro.server.supervisor import ServiceSupervisor
from repro.server.tcp import GKBMSServer
from repro.server.__main__ import _install_drain_handlers, main as server_main
from repro.shell import GKBMSShell


@pytest.fixture
def server():
    service = GKBMSService(batch_window=0.002)
    tcp = GKBMSServer(("127.0.0.1", 0), service)
    tcp.serve_in_thread()
    yield tcp
    tcp.close()


class TestTCPTransport:
    def test_round_trip_over_socket(self, server):
        client = TCPClient(server.host, server.port)
        client.tell("TELL Doc IN SimpleClass END")
        client.tell("TELL D1 IN Doc END")
        assert client.instances("Doc") == ["D1"]
        assert client.ping()["pong"] is True
        client.close()

    def test_two_connections_share_the_base(self, server):
        a = TCPClient(server.host, server.port)
        b = TCPClient(server.host, server.port)
        assert a.session != b.session
        a.tell("TELL Doc IN SimpleClass END")
        a.tell("TELL D1 IN Doc END")
        assert b.instances("Doc") == ["D1"]
        a.close()
        b.close()

    def test_conflict_travels_the_wire_typed(self, server):
        writer = TCPClient(server.host, server.port)
        racer = TCPClient(server.host, server.port)
        writer.tell("TELL Doc IN SimpleClass END")
        racer.begin()
        racer.tell("TELL Shared IN Doc END")
        writer.tell("TELL Shared IN Doc END")
        with pytest.raises(CommitConflict):
            racer.commit()
        writer.close()
        racer.close()

    def test_transactions_over_the_wire(self, server):
        client = TCPClient(server.host, server.port)
        client.tell("TELL Doc IN SimpleClass END")
        with client.transaction():
            client.tell("TELL D1 IN Doc END")
            client.tell("TELL D2 IN Doc END")
        assert client.instances("Doc") == ["D1", "D2"]
        client.close()

    def test_malformed_line_answers_protocol_error(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            # The connection survives a bad frame.
            handle.write(b'{"id": 1, "op": "ping", "params": {}}\n')
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is True
        snapshot = server.service.registry.snapshot()
        assert snapshot["server.protocol_errors"] == 1

    def test_oversized_frame_resynchronizes_the_stream(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            oversized = (
                b'{"id": 1, "op": "ping", "pad": "'
                + b"x" * (MAX_FRAME + 64) + b'"}\n'
            )
            handle.write(oversized)
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            # The unread tail of the oversized line was discarded, so
            # the next frame parses cleanly instead of desynchronizing
            # into spurious errors.
            handle.write(b'{"id": 2, "op": "ping", "params": {}}\n')
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is True
            assert response["id"] == 2

    def test_truncated_final_frame_is_dropped(self, server):
        """Regression: a final *unterminated* line at EOF that fit
        under MAX_FRAME was decoded and executed as a complete frame —
        a request truncated by a dying client must be dropped."""
        before = server.service.registry.snapshot()
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            # A frame that would execute if (wrongly) parsed, cut off
            # by the client dying before the newline.
            sock.sendall(b'{"id": 1, "op": "ping", "params": {}}')
            sock.shutdown(socket.SHUT_WR)
            sock.settimeout(10)
            assert sock.recv(4096) == b""  # EOF back, no response
        after = server.service.registry.snapshot()
        assert after.get("server.truncated_frames", 0) \
            == before.get("server.truncated_frames", 0) + 1
        # The fragment was never executed.
        assert after.get("server.requests", 0) \
            == before.get("server.requests", 0)

    def test_poison_deadline_refused_over_the_wire(self, server):
        """Regression companion: `deadline_ms: true` and NaN must be
        refused by validation, not fed to the deadline arithmetic."""
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            for raw in (b'{"id": 1, "op": "ping", "params": {}, '
                        b'"deadline_ms": true}\n',
                        b'{"id": 2, "op": "ping", "params": {}, '
                        b'"deadline_ms": NaN}\n'):
                handle.write(raw)
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "ProtocolError"

    def test_closed_server_refuses_new_connections(self):
        service = GKBMSService()
        tcp = GKBMSServer(("127.0.0.1", 0), service)
        tcp.serve_in_thread()
        TCPClient(tcp.host, tcp.port).close()
        tcp.close()
        with pytest.raises((ServerError, OSError)):
            TCPClient(tcp.host, tcp.port)


class TestTCPClientResilience:
    """Timeouts, reconnects and retries on the socket client."""

    def test_connect_refused_raises_connection_lost(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with pytest.raises(ConnectionLost):
            TCPClient("127.0.0.1", port, connect_timeout=1.0)

    def test_request_timeout_drops_the_connection(self):
        """A server that accepts but never answers must surface as a
        typed ConnectionLost within the timeout, not a hung recv."""
        stall = socket.socket()
        stall.bind(("127.0.0.1", 0))
        stall.listen(1)
        try:
            client = TCPClient(
                "127.0.0.1", stall.getsockname()[1],
                timeout=0.2, auto_hello=False,
            )
            with pytest.raises(ConnectionLost):
                client.ping()
            # The stream is poisoned (a late response would answer the
            # wrong request), so the socket must be gone.
            assert client._sock is None
        finally:
            stall.close()

    def test_deadline_budget_bounds_the_socket_wait(self, server):
        client = TCPClient(server.host, server.port, deadline_ms=250.0)
        assert client._request_timeout({"deadline_ms": 250.0}) == \
            pytest.approx(0.25 + TCPClient.DEADLINE_GRACE)
        assert client._request_timeout({}) == pytest.approx(30.0)
        assert client.ping()["pong"] is True  # budget generous enough
        client.close()

    def test_reconnect_on_retry_gets_fresh_session(self, server):
        client = TCPClient(
            server.host, server.port,
            retry=RetryPolicy(seed=3, sleep=lambda _s: None),
        )
        client.tell("TELL Doc IN SimpleClass END")
        old_session = client.session
        client._drop_connection()  # the link dies under us
        assert client.instances("Doc") == []  # retried transparently
        assert client.retry.retries >= 1
        assert client.session is not None
        assert client.session != old_session
        client.close()

    def test_retry_exhaustion_surfaces_connection_lost(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        policy = RetryPolicy(max_attempts=2, seed=0, sleep=lambda _s: None)
        with pytest.raises(ConnectionLost):
            TCPClient("127.0.0.1", port, connect_timeout=0.5, retry=policy)

    def test_dropped_write_retries_idempotently(self, server):
        """The ambiguous case: the tell was applied but its ack died
        with the connection — the tokened retry must not double-apply."""
        client = TCPClient(
            server.host, server.port,
            retry=RetryPolicy(seed=5, sleep=lambda _s: None),
        )
        client.tell("TELL Doc IN SimpleClass END")
        token = "tcp-ambiguous-1"
        client._req_id += 1
        frame = {
            "id": client._req_id, "op": "tell", "session": client.session,
            "params": {"source": "TELL D1 IN Doc END", "token": token},
        }
        from repro.server.protocol import encode_frame
        client._file.write(encode_frame(frame))
        client._file.flush()
        client._drop_connection()  # vanish before reading the ack
        # Wait for the orphaned tell to commit server-side.
        deadline = 50
        while server.service.pipeline.token_result(token) is None \
                and deadline > 0:
            threading.Event().wait(0.02)
            deadline -= 1
        client._recover_transport()
        result = client._call("tell", {
            "source": "TELL D1 IN Doc END", "token": token,
        })
        assert result.get("idempotent") is True
        assert client.instances("Doc") == ["D1"]
        client.close()


class TestSupervisedRecoveryOverTCP:
    """Pipeline poison → supervisor restart, end-to-end over a socket."""

    def test_fsync_fault_recovers_and_client_retries(self, tmp_path):
        plan = FaultPlan(seed=11)
        io = FaultyIO(plan)
        registry = MetricsRegistry()
        store = WalStore(str(tmp_path / "tcp.wal"), fsync="commit",
                         io=io, registry=registry)
        service = GKBMSService(ConceptBase(store=store, registry=registry))
        supervisor = ServiceSupervisor(
            service, backoff_base=0.001, backoff_cap=0.01, seed=11
        )
        with GKBMSServer(("127.0.0.1", 0), service) as tcp:
            tcp.serve_in_thread()
            client = TCPClient(
                tcp.host, tcp.port,
                retry=RetryPolicy(seed=11, base=0.001, cap=0.01),
            )
            client.tell("TELL Doc IN SimpleClass END")
            client.tell("TELL Before IN Doc END")
            # Break every fsync from here: the next commit poisons the
            # pipeline; the supervisor restarts through WAL replay and
            # the client's tokened retry lands on the recovered service.
            plan.fail_fsyncs_from = io.ops + 1
            result = client.tell("TELL After IN Doc END")
            supervisor.join()
            assert result["created"] >= 1
            assert client.retry.retries >= 1
            assert service.status == "serving"
            # A second connection sees both writes, exactly once.
            checker = TCPClient(tcp.host, tcp.port)
            assert checker.instances("Doc") == ["After", "Before"]
            checker.close()
            applied = [
                entry for entry in service.pipeline.commit_log()
                if any("After" in arg for _k, arg in entry[2])
            ]
            assert len(applied) == 1
            snapshot = registry.snapshot("server.supervisor")
            assert snapshot["server.supervisor.recoveries"] >= 1
            assert snapshot["server.supervisor.mttr_ms"]["count"] >= 1
            client.close()


class TestGracefulDrain:
    """SIGTERM/SIGINT → stop accepting, flush, checkpoint, close WAL."""

    def _wal_server(self, tmp_path):
        registry = MetricsRegistry()
        store = WalStore(str(tmp_path / "drain.wal"), fsync="commit",
                         registry=registry)
        service = GKBMSService(ConceptBase(store=store, registry=registry))
        return store, service, GKBMSServer(("127.0.0.1", 0), service)

    def test_drain_checkpoints_and_closes_cleanly(self, tmp_path):
        store, service, tcp = self._wal_server(tmp_path)
        tcp.serve_in_thread()
        client = TCPClient(tcp.host, tcp.port)
        client.tell("TELL Doc IN SimpleClass END")
        client.tell("TELL D1 IN Doc END")
        client.close()
        tcp.drain()
        with pytest.raises((ServerError, OSError)):
            TCPClient(tcp.host, tcp.port, connect_timeout=1.0)
        # The final checkpoint folded the log into the snapshot: a
        # clean reopen replays zero records and sees everything.
        recovered = WalStore(str(tmp_path / "drain.wal"), fsync="commit",
                             registry=MetricsRegistry())
        assert recovered.stats.get("replayed", 0) == 0
        processor_rows = recovered.rows()
        recovered.close()
        assert any("Doc" in row for row in processor_rows)

    def test_signal_handler_drains_without_deadlock(self, tmp_path):
        """The installed handler runs on the main thread while
        serve_forever runs elsewhere — exactly the __main__ topology."""
        store, service, tcp = self._wal_server(tmp_path)
        previous_term = signal.getsignal(signal.SIGTERM)
        previous_int = signal.getsignal(signal.SIGINT)
        try:
            draining = _install_drain_handlers(tcp)
            serving = tcp.serve_in_thread()
            client = TCPClient(tcp.host, tcp.port)
            client.tell("TELL Doc IN SimpleClass END")
            client.close()
            handler = signal.getsignal(signal.SIGTERM)
            handler(signal.SIGTERM, None)
            assert draining.is_set()
            handler(signal.SIGTERM, None)  # second signal: ignored
            serving.join(timeout=10.0)
            assert not serving.is_alive(), "serve_forever did not unblock"
            # __main__'s finally block: the main thread finishes the
            # drain after the loop exits, so exit cannot cut it short.
            tcp.server_close()
            service.drain()
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)
        recovered = WalStore(str(tmp_path / "drain.wal"), fsync="commit",
                             registry=MetricsRegistry())
        rows = recovered.rows()
        recovered.close()
        assert any("Doc" in row for row in rows)


class TestShellClientMode:
    def test_connect_tell_ask_disconnect(self, server):
        shell = GKBMSShell()
        out = shell.execute(f"connect {server.host} {server.port}")
        assert "connected" in out and "session" in out
        out = shell.execute('rtell "TELL Doc IN SimpleClass END"')
        assert "committed" in out
        shell.execute('rtell "TELL D1 IN Doc END"')
        assert shell.execute("rinstances Doc") == "D1"
        out = shell.execute("rquery in(?x,Doc)")
        assert "D1" in out
        out = shell.execute("disconnect")
        assert "disconnected" in out

    def test_remote_commands_require_connection(self):
        shell = GKBMSShell()
        out = shell.execute("rinstances Doc")
        assert out.startswith("error:") and "not connected" in out

    def test_remote_errors_are_reported_not_raised(self, server):
        shell = GKBMSShell()
        shell.execute(f"connect {server.host} {server.port}")
        out = shell.execute('rtell "NOT A FRAME"')
        assert out.startswith("error:")
        shell.execute("disconnect")

    def test_quit_disconnects(self, server):
        shell = GKBMSShell()
        shell.execute(f"connect {server.host} {server.port}")
        assert shell.execute("quit") == "bye"
        assert shell.client is None


class TestSmokeCommand:
    def test_smoke_gates_and_reports(self, tmp_path):
        report_path = tmp_path / "smoke.json"
        code = server_main([
            "smoke", "--threads", "4", "--ops", "10",
            "--json", str(report_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["failures"] == []
        assert report["protocol_errors"] == 0
        assert report["batch_samples"] > 0
        assert report["load"]["unexpected_errors"] == 0
        # Group commit: strictly fewer fsyncs than commits.
        assert report["wal_fsyncs"] < report["committed"]
