"""The TCP transport, the shell's client mode and the smoke command —
everything over real sockets on an ephemeral port."""

import json
import socket

import pytest

from repro.errors import CommitConflict, ServerError
from repro.server.client import TCPClient
from repro.server.protocol import MAX_FRAME
from repro.server.service import GKBMSService
from repro.server.tcp import GKBMSServer
from repro.server.__main__ import main as server_main
from repro.shell import GKBMSShell


@pytest.fixture
def server():
    service = GKBMSService(batch_window=0.002)
    tcp = GKBMSServer(("127.0.0.1", 0), service)
    tcp.serve_in_thread()
    yield tcp
    tcp.close()


class TestTCPTransport:
    def test_round_trip_over_socket(self, server):
        client = TCPClient(server.host, server.port)
        client.tell("TELL Doc IN SimpleClass END")
        client.tell("TELL D1 IN Doc END")
        assert client.instances("Doc") == ["D1"]
        assert client.ping()["pong"] is True
        client.close()

    def test_two_connections_share_the_base(self, server):
        a = TCPClient(server.host, server.port)
        b = TCPClient(server.host, server.port)
        assert a.session != b.session
        a.tell("TELL Doc IN SimpleClass END")
        a.tell("TELL D1 IN Doc END")
        assert b.instances("Doc") == ["D1"]
        a.close()
        b.close()

    def test_conflict_travels_the_wire_typed(self, server):
        writer = TCPClient(server.host, server.port)
        racer = TCPClient(server.host, server.port)
        writer.tell("TELL Doc IN SimpleClass END")
        racer.begin()
        racer.tell("TELL Shared IN Doc END")
        writer.tell("TELL Shared IN Doc END")
        with pytest.raises(CommitConflict):
            racer.commit()
        writer.close()
        racer.close()

    def test_transactions_over_the_wire(self, server):
        client = TCPClient(server.host, server.port)
        client.tell("TELL Doc IN SimpleClass END")
        with client.transaction():
            client.tell("TELL D1 IN Doc END")
            client.tell("TELL D2 IN Doc END")
        assert client.instances("Doc") == ["D1", "D2"]
        client.close()

    def test_malformed_line_answers_protocol_error(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            # The connection survives a bad frame.
            handle.write(b'{"id": 1, "op": "ping", "params": {}}\n')
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is True
        snapshot = server.service.registry.snapshot()
        assert snapshot["server.protocol_errors"] == 1

    def test_oversized_frame_resynchronizes_the_stream(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            oversized = (
                b'{"id": 1, "op": "ping", "pad": "'
                + b"x" * (MAX_FRAME + 64) + b'"}\n'
            )
            handle.write(oversized)
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            # The unread tail of the oversized line was discarded, so
            # the next frame parses cleanly instead of desynchronizing
            # into spurious errors.
            handle.write(b'{"id": 2, "op": "ping", "params": {}}\n')
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is True
            assert response["id"] == 2

    def test_closed_server_refuses_new_connections(self):
        service = GKBMSService()
        tcp = GKBMSServer(("127.0.0.1", 0), service)
        tcp.serve_in_thread()
        TCPClient(tcp.host, tcp.port).close()
        tcp.close()
        with pytest.raises((ServerError, OSError)):
            TCPClient(tcp.host, tcp.port)


class TestShellClientMode:
    def test_connect_tell_ask_disconnect(self, server):
        shell = GKBMSShell()
        out = shell.execute(f"connect {server.host} {server.port}")
        assert "connected" in out and "session" in out
        out = shell.execute('rtell "TELL Doc IN SimpleClass END"')
        assert "committed" in out
        shell.execute('rtell "TELL D1 IN Doc END"')
        assert shell.execute("rinstances Doc") == "D1"
        out = shell.execute("rquery in(?x,Doc)")
        assert "D1" in out
        out = shell.execute("disconnect")
        assert "disconnected" in out

    def test_remote_commands_require_connection(self):
        shell = GKBMSShell()
        out = shell.execute("rinstances Doc")
        assert out.startswith("error:") and "not connected" in out

    def test_remote_errors_are_reported_not_raised(self, server):
        shell = GKBMSShell()
        shell.execute(f"connect {server.host} {server.port}")
        out = shell.execute('rtell "NOT A FRAME"')
        assert out.startswith("error:")
        shell.execute("disconnect")

    def test_quit_disconnects(self, server):
        shell = GKBMSShell()
        shell.execute(f"connect {server.host} {server.port}")
        assert shell.execute("quit") == "bye"
        assert shell.client is None


class TestSmokeCommand:
    def test_smoke_gates_and_reports(self, tmp_path):
        report_path = tmp_path / "smoke.json"
        code = server_main([
            "smoke", "--threads", "4", "--ops", "10",
            "--json", str(report_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["failures"] == []
        assert report["protocol_errors"] == 0
        assert report["batch_samples"] > 0
        assert report["load"]["unexpected_errors"] == 0
        # Group commit: strictly fewer fsyncs than commits.
        assert report["wal_fsyncs"] < report["committed"]
