"""Unit tests for time points and intervals."""

import pytest

from repro.errors import TimeError
from repro.timecalc import (
    ALWAYS,
    NEGATIVE_INFINITY,
    POSITIVE_INFINITY,
    Interval,
    TimePoint,
    parse_time,
)


class TestTimePoint:
    def test_finite_points_order_by_value(self):
        assert TimePoint(0, 1) < TimePoint(0, 2)
        assert not TimePoint(0, 2) < TimePoint(0, 1)

    def test_infinities_bound_everything(self):
        p = TimePoint(0, 10**9)
        assert NEGATIVE_INFINITY < p < POSITIVE_INFINITY

    def test_infinities_equal_themselves(self):
        assert POSITIVE_INFINITY == TimePoint(kind=1)
        assert NEGATIVE_INFINITY == TimePoint(kind=-1)
        assert not POSITIVE_INFINITY < TimePoint(kind=1)

    def test_finite_point_requires_value(self):
        with pytest.raises(TimeError):
            TimePoint(0, None)

    def test_invalid_kind_rejected(self):
        with pytest.raises(TimeError):
            TimePoint(kind=7, value=1)

    def test_incomparable_values_raise(self):
        with pytest.raises(TimeError):
            _ = TimePoint(0, "abc") < TimePoint(0, 3)

    def test_hashable(self):
        assert len({TimePoint(0, 1), TimePoint(0, 1), POSITIVE_INFINITY}) == 2


class TestInterval:
    def test_empty_interval_rejected(self):
        with pytest.raises(TimeError):
            Interval.from_ticks(5, 5)
        with pytest.raises(TimeError):
            Interval.from_ticks(6, 5)

    def test_half_open_contains(self):
        span = Interval.from_ticks(2, 5)
        assert span.contains_point(2)
        assert span.contains_point(4)
        assert not span.contains_point(5)

    def test_always_contains_everything(self):
        assert ALWAYS.contains_point(-(10**12))
        assert ALWAYS.contains_point(10**12)
        assert ALWAYS.is_always

    def test_contains_interval(self):
        outer = Interval.from_ticks(0, 10)
        inner = Interval.from_ticks(3, 7)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_overlap_and_meet_are_distinct(self):
        a = Interval.from_ticks(0, 5)
        b = Interval.from_ticks(5, 9)
        assert not a.overlaps(b)
        assert a.meets(b)
        assert a.before(b)

    def test_intersect(self):
        a = Interval.from_ticks(0, 6)
        b = Interval.from_ticks(4, 9)
        both = a.intersect(b)
        assert both is not None
        assert both.contains_point(4) and both.contains_point(5)
        assert not both.contains_point(6)

    def test_intersect_disjoint_is_none(self):
        assert Interval.from_ticks(0, 2).intersect(Interval.from_ticks(3, 4)) is None

    def test_clip_end(self):
        span = Interval.since(10)
        clipped = span.clip_end(20)
        assert clipped is not None
        assert clipped.contains_point(19)
        assert not clipped.contains_point(20)

    def test_clip_before_start_is_none(self):
        assert Interval.from_ticks(10, 20).clip_end(10) is None

    def test_since_and_until(self):
        assert Interval.since(5).contains_point(10**9)
        assert Interval.until(5).contains_point(-(10**9))
        assert not Interval.until(5).contains_point(5)


class TestParseTime:
    def test_always(self):
        assert parse_time("Always").is_always
        assert parse_time("always").is_always

    def test_paper_known_since_stamp(self):
        span = parse_time("21-Sep-1987+")
        assert span.contains_point(19870921)
        assert span.contains_point(20260101)
        assert not span.contains_point(19870920)

    def test_single_day(self):
        span = parse_time("21-Sep-1987")
        assert span.contains_point(19870921)
        assert not span.contains_point(19870922)

    def test_tick_range(self):
        span = parse_time("12..40")
        assert span.contains_point(12)
        assert not span.contains_point(40)

    def test_single_tick(self):
        span = parse_time("17")
        assert span.contains_point(17)
        assert not span.contains_point(18)

    def test_bad_month(self):
        with pytest.raises(TimeError):
            parse_time("21-Xxx-1987")

    def test_garbage(self):
        with pytest.raises(TimeError):
            parse_time("version seventeen")
