"""Tests for dependency graphs, selective backtracking and replay."""

import pytest

from repro.core.decisions import DecisionClass
from repro.core.tools import ToolSpec
from repro.errors import BacktrackError
from repro.scenario import MeetingScenario


@pytest.fixture
def fig_2_3():
    """Scenario advanced to the state after key substitution."""
    return MeetingScenario().run_to_fig_2_3()


class TestDependencyGraph:
    def test_fig_2_2_structure(self):
        scenario = MeetingScenario().run_to_fig_2_2()
        graph = scenario.gkbms.dependency_graph()
        record = scenario.records["map"]
        assert ("Papers", "hierarchy", record.did) in graph.edges
        assert (record.did, "relations", "InvitationRel") in graph.edges
        assert (record.did, "by", "MoveDownMapper") in graph.edges

    def test_downstream_upstream(self, fig_2_3):
        graph = fig_2_3.gkbms.dependency_graph()
        down = graph.downstream("Papers")
        assert "InvitationRel" in down
        assert "InvitationRel2" in down
        up = graph.upstream("InvitationRel2")
        assert "Papers" in up

    def test_zoom_radius(self, fig_2_3):
        graph = fig_2_3.gkbms.dependency_graph()
        record = fig_2_3.records["normalize"]
        zoomed = graph.zoom(record.did, radius=1)
        assert "InvitationRel2" in zoomed.nodes()
        assert "Papers" not in zoomed.nodes()  # two hops away

    def test_retracted_excluded_by_default(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        did = fig_2_3.records["keys"].did
        gkbms.backtracker.retract(did)
        assert did not in gkbms.dependency_graph().nodes()
        assert did in gkbms.dependency_graph(include_retracted=True).nodes()

    def test_ascii_and_dot(self, fig_2_3):
        graph = fig_2_3.gkbms.dependency_graph()
        assert "hierarchy" in graph.to_ascii()
        assert graph.to_dot().startswith("digraph")


class TestSelectiveBacktracking:
    def test_consequent_closure(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        map_did = fig_2_3.records["map"].did
        norm_did = fig_2_3.records["normalize"].did
        keys_did = fig_2_3.records["keys"].did
        assert gkbms.backtracker.consequents(map_did) == [norm_did, keys_did]
        assert gkbms.backtracker.consequents(keys_did) == []

    def test_retract_keys_only_removes_keys(self, fig_2_3):
        """The fig 2-4 situation: retract the key decision without
        redoing the rest of the design."""
        gkbms = fig_2_3.gkbms
        keys_did = fig_2_3.records["keys"].did
        report = gkbms.backtracker.retract(keys_did)
        assert report.retracted_decisions == [keys_did]
        # the earlier decisions stand
        assert fig_2_3.records["map"].status == "done"
        assert fig_2_3.records["normalize"].status == "done"
        # the module is back to surrogate keys
        rel = gkbms.module.relations["InvitationRel2"]
        assert rel.key == ("paperkey",)

    def test_retract_normalize_cascades_to_keys(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        norm_did = fig_2_3.records["normalize"].did
        keys_did = fig_2_3.records["keys"].did
        report = gkbms.backtracker.retract(norm_did)
        assert report.retracted_decisions == [norm_did, keys_did]
        # the unnormalised relation is back
        assert "InvitationRel" in gkbms.module.relations
        assert "InvitationRel2" not in gkbms.module.relations

    def test_retracted_objects_gone_from_kb(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        norm_did = fig_2_3.records["normalize"].did
        gkbms.backtracker.retract(norm_did)
        assert not gkbms.processor.exists("InvitationRel2")
        assert not gkbms.processor.exists("InvReceivRel")
        assert gkbms.processor.exists("InvitationRel")  # was only retired

    def test_decision_record_survives_marked(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        keys_did = fig_2_3.records["keys"].did
        gkbms.backtracker.retract(keys_did)
        record = gkbms.decisions.records[keys_did]
        assert record.is_retracted
        assert record.retracted_at is not None
        assert gkbms.processor.is_instance_of(keys_did, "RetractedDecision")

    def test_double_retract_rejected(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        keys_did = fig_2_3.records["keys"].did
        gkbms.backtracker.retract(keys_did)
        with pytest.raises(BacktrackError):
            gkbms.backtracker.retract(keys_did)

    def test_unknown_decision(self, fig_2_3):
        with pytest.raises(BacktrackError):
            fig_2_3.gkbms.backtracker.retract("dec999")

    def test_retract_for_assumption(self):
        scenario = MeetingScenario().run_to_fig_2_3()
        scenario.add_minutes()
        assert scenario.gkbms.violated_assumptions() == [
            "OnlyInvitationsArePapers"
        ]
        reports = scenario.backtrack_keys()
        assert len(reports) == 1
        assert reports[0].target == scenario.records["keys"].did
        # after backtracking, the stale assumption no longer taints
        assert scenario.gkbms.violated_assumptions() == []

    def test_retract_for_unused_assumption(self, fig_2_3):
        fig_2_3.gkbms.assume("FreeFloating")
        with pytest.raises(BacktrackError):
            fig_2_3.gkbms.backtracker.retract_for_assumption("FreeFloating")

    def test_full_scenario_module_state(self):
        scenario = MeetingScenario().run_all()
        module = scenario.gkbms.module
        assert module.relations["InvitationRel2"].key == ("paperkey",)
        assert "MinutesRel" in module.relations
        # generated implementation actually runs
        db = scenario.gkbms.build_database()
        with db.transaction():
            db.relation("InvitationRel2").insert(
                {"paperkey": "k1", "date": "d", "author": "a", "sender": "s"}
            )
            db.relation("InvReceivRel").insert(
                {"paperkey": "k1", "receiver": "r"}
            )
            db.relation("MinutesRel").insert(
                {"paperkey": "m1", "date": "d", "author": "a", "recorder": "s"}
            )
        assert len(db.rows("ConsInvitation")) == 1


class TestAtomicUndo:
    """Undoing one decision is a transaction (regression: the undo used
    to run outside any telling, so a tool undo that mutated halfway and
    then raised left a half-backtracked base behind a record still
    marked ``done``)."""

    @pytest.fixture
    def flaky(self, fig_2_3):
        gkbms = fig_2_3.gkbms

        def flaky_apply(g, inputs, params):
            g.processor.tell_individual("FlakyRel", in_class="DBPL_Rel")
            return {"result": ["FlakyRel"]}

        def flaky_undo(g, record):
            # partial damage before dying: a knowledge-base retraction
            # and an artefact-store removal, both of which must roll
            # back with the failure
            g.processor.retract("InvitationRel")
            g.module.remove("InvReceivRel")
            raise RuntimeError("tool undo crashed halfway")

        gkbms.tools.register(ToolSpec(
            name="FlakyTool", automation="automatic",
            apply=flaky_apply, undo=flaky_undo,
        ))
        gkbms.decisions.register(DecisionClass(
            name="FlakyDec",
            inputs=(("source", "DBPL_Rel"),),
            outputs=(("result", "DBPL_Rel"),),
            tools=("FlakyTool",),
        ))
        record = gkbms.execute(
            "FlakyDec", {"source": "InvitationRel2"}, tool="FlakyTool",
        )
        return fig_2_3, record

    def test_failing_undo_leaves_no_trace(self, flaky):
        scenario, record = flaky
        gkbms = scenario.gkbms
        before_rows = gkbms.processor.store.rows()
        before_relations = set(gkbms.module.relations)
        with pytest.raises(RuntimeError):
            gkbms.backtracker.retract(record.did)
        # bit-identical knowledge base, untouched artefact store
        assert gkbms.processor.store.rows() == before_rows
        assert set(gkbms.module.relations) == before_relations
        assert gkbms.processor.exists("FlakyRel")
        # ... and the record still says what is true: not retracted
        assert record.status == "done"
        assert record.retracted_at is None

    def test_failing_undo_keeps_decision_retractable(self, flaky):
        """After the failure nothing is half-done, so a later retract
        attempt fails identically instead of tripping over debris."""
        scenario, record = flaky
        gkbms = scenario.gkbms
        with pytest.raises(RuntimeError):
            gkbms.backtracker.retract(record.did)
        with pytest.raises(RuntimeError):
            gkbms.backtracker.retract(record.did)
        assert record.status == "done"

    def test_successful_undo_still_reports_objects(self, fig_2_3):
        """The local-collection refactor must not change what a normal
        retract reports."""
        gkbms = fig_2_3.gkbms
        keys_did = fig_2_3.records["keys"].did
        report = gkbms.backtracker.retract(keys_did)
        assert report.retracted_decisions == [keys_did]
        assert report.retracted_objects  # pids actually removed


class TestReplay:
    def test_replay_after_upstream_change(self, fig_2_3):
        """Retract normalisation (and keys with it), then replay the
        normalisation — revision support."""
        gkbms = fig_2_3.gkbms
        norm_record = fig_2_3.records["normalize"]
        gkbms.backtracker.retract(norm_record.did)
        outcome = gkbms.replayer.replay(norm_record)
        assert outcome.status == "replayed"
        assert gkbms.module.relations["InvitationRel2"].key == ("paperkey",)

    def test_reapplicability_check(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        keys_record = fig_2_3.records["keys"]
        # applicability is a KB-level test: both inputs still exist as
        # design objects of the right classes
        assert gkbms.replayer.is_reapplicable(fig_2_3.records["normalize"])
        assert gkbms.replayer.is_reapplicable(keys_record)
        gkbms.backtracker.retract(fig_2_3.records["normalize"].did)
        # now InvitationRel2 is gone from the KB entirely
        assert not gkbms.replayer.is_reapplicable(keys_record)

    def test_replay_not_applicable(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        norm_record = fig_2_3.records["normalize"]
        gkbms.backtracker.retract(norm_record.did)
        # after retraction InvitationRel2 is gone from the KB, so the
        # keys decision is no longer applicable
        outcome = gkbms.replayer.replay(fig_2_3.records["keys"])
        assert outcome.status == "not_applicable"

    def test_replay_all_ordered(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        norm_record = fig_2_3.records["normalize"]
        keys_record = fig_2_3.records["keys"]
        gkbms.backtracker.retract(norm_record.did)
        report = gkbms.replayer.replay_all([norm_record, keys_record])
        assert [o.status for o in report.outcomes] == ["replayed", "replayed"]
        assert gkbms.module.relations["InvitationRel2"].key == (
            "date", "author",
        )

    def test_replay_retracted(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        gkbms.backtracker.retract(fig_2_3.records["normalize"].did)
        report = gkbms.replayer.replay_retracted()
        statuses = {o.original: o.status for o in report.outcomes}
        assert statuses[fig_2_3.records["normalize"].did] == "replayed"

    def test_manual_decision_not_replayable(self, fig_2_3):
        gkbms = fig_2_3.gkbms
        gkbms.processor.tell_individual("HandRel", in_class="DBPL_Rel")
        record = gkbms.execute(
            "DBPL_MappingDec", {"source": "Papers"},
            outputs={"result": ["HandRel"]},
        )
        outcome = gkbms.replayer.replay(record)
        assert outcome.status == "not_applicable"
