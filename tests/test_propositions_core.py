"""Unit tests for the proposition quadruple and retrieval patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PropositionError
from repro.propositions import Pattern, Proposition, individual, link
from repro.timecalc import ALWAYS, Interval

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)


class TestProposition:
    def test_individual_is_self_referential(self):
        node = individual("Invitation")
        assert node.is_individual
        assert node.source == node.destination == node.pid == "Invitation"

    def test_paper_quadruple(self):
        # p37 = <Invitation, isa, Paper, Always>
        p37 = link("p37", "Invitation", "isa", "Paper")
        assert p37.quadruple() == ("Invitation", "isa", "Paper", ALWAYS)
        assert p37.is_isa and p37.is_link and not p37.is_individual

    def test_empty_components_rejected(self):
        with pytest.raises(PropositionError):
            Proposition("", "a", "b", "c")
        with pytest.raises(PropositionError):
            Proposition("p", "a", "", "c")

    def test_non_interval_time_rejected(self):
        with pytest.raises(PropositionError):
            Proposition("p", "a", "l", "b", time=42)  # type: ignore[arg-type]

    def test_degenerate_link_rejected(self):
        with pytest.raises(PropositionError):
            link("x", "x", "x", "x")

    def test_with_time(self):
        p = link("p", "a", "l", "b")
        clipped = p.with_time(Interval.from_ticks(0, 5))
        assert clipped.time.contains_point(3)
        assert p.time.is_always  # original untouched

    @given(names)
    def test_individual_roundtrip(self, name):
        node = individual(name)
        assert node.is_individual
        assert not node.is_link


class TestPattern:
    def setup_method(self):
        self.prop = link(
            "p1", "inv1", "sender", "bob", time=Interval.from_ticks(10, 20)
        )

    def test_wildcard_matches_everything(self):
        assert Pattern().matches(self.prop)
        assert Pattern().is_total_wildcard

    def test_component_matching(self):
        assert Pattern(source="inv1").matches(self.prop)
        assert Pattern(label="sender", destination="bob").matches(self.prop)
        assert not Pattern(source="inv2").matches(self.prop)
        assert not Pattern(pid="p2").matches(self.prop)

    def test_temporal_matching(self):
        assert Pattern(at=15).matches(self.prop)
        assert not Pattern(at=25).matches(self.prop)

    def test_filter(self):
        other = link("p2", "inv2", "sender", "ann")
        matched = list(Pattern(source="inv1").filter(iter([self.prop, other])))
        assert matched == [self.prop]
