"""Tests for the three physical proposition-base representations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PropositionError, UnknownPropositionError
from repro.propositions import (
    LogStore,
    MemoryStore,
    Pattern,
    WorkspaceStore,
    individual,
    link,
)

ALL_STORES = [MemoryStore, LogStore, WorkspaceStore]


def populate(store):
    store.create(individual("Paper"))
    store.create(individual("Invitation"))
    store.create(individual("Person"))
    store.create(link("p1", "Invitation", "isa", "Paper"))
    store.create(link("p2", "Invitation", "sender", "Person"))
    store.create(link("p3", "Invitation", "receiver", "Person"))
    return store


@pytest.mark.parametrize("store_cls", ALL_STORES)
class TestStoreInterface:
    def test_create_get(self, store_cls):
        store = populate(store_cls())
        assert store.get("p1").label == "isa"
        assert len(store) == 6

    def test_duplicate_pid_rejected(self, store_cls):
        store = populate(store_cls())
        with pytest.raises(PropositionError):
            store.create(individual("Paper"))

    def test_unknown_get(self, store_cls):
        store = store_cls()
        with pytest.raises(UnknownPropositionError):
            store.get("missing")

    def test_delete(self, store_cls):
        store = populate(store_cls())
        removed = store.delete("p2")
        assert removed.label == "sender"
        assert "p2" not in store
        assert len(store) == 5

    def test_retrieve_by_source(self, store_cls):
        # Individuals are self-referential, so the node itself matches too.
        store = populate(store_cls())
        results = {p.pid for p in store.retrieve(Pattern(source="Invitation"))}
        assert results == {"Invitation", "p1", "p2", "p3"}

    def test_retrieve_by_source_label(self, store_cls):
        store = populate(store_cls())
        results = list(store.retrieve(Pattern(source="Invitation", label="sender")))
        assert [p.pid for p in results] == ["p2"]

    def test_retrieve_by_destination(self, store_cls):
        store = populate(store_cls())
        results = {p.pid for p in store.retrieve(Pattern(destination="Person"))}
        assert results == {"Person", "p2", "p3"}

    def test_retrieve_wildcard(self, store_cls):
        store = populate(store_cls())
        assert len(list(store.retrieve(Pattern()))) == 6

    def test_contains(self, store_cls):
        store = populate(store_cls())
        assert "Paper" in store
        assert "nope" not in store

    def test_replace(self, store_cls):
        store = populate(store_cls())
        from repro.timecalc import Interval

        updated = store.get("p1").with_time(Interval.from_ticks(0, 9))
        old = store.replace(updated)
        assert old.time.is_always
        assert store.get("p1").time.contains_point(5)


class TestLogStore:
    def test_journal_records_operations(self):
        store = populate(LogStore())
        store.delete("p1")
        ops = [op for op, _ in store.journal]
        assert ops.count("create") == 6
        assert ops.count("delete") == 1

    def test_replay_reproduces_state(self):
        store = populate(LogStore())
        store.delete("p3")
        replayed = store.replay()
        assert {p.pid for p in replayed} == {p.pid for p in store}

    def test_compact_drops_superseded_entries(self):
        store = populate(LogStore())
        store.delete("p3")
        removed = store.compact()
        assert removed == 2  # the create and the delete of p3
        assert len(store.journal) == 5
        assert {p.pid for p in store.replay()} == {p.pid for p in store}

    def test_from_journal_reproduces_rows_and_journal(self):
        store = populate(LogStore())
        store.delete("p3")
        store.create(individual("late"))
        rebuilt = LogStore.from_journal(store.journal)
        assert rebuilt.rows() == store.rows()
        assert rebuilt.journal == store.journal

    def test_from_journal_after_compact(self):
        store = populate(LogStore())
        store.delete("p2")
        store.compact()
        rebuilt = LogStore.from_journal(store.journal)
        assert rebuilt.rows() == store.rows()

    def test_from_journal_rejects_unknown_op(self):
        with pytest.raises(PropositionError):
            LogStore.from_journal([("mangle", individual("x"))])


class TestRows:
    def test_rows_identical_across_store_kinds(self):
        stores = [populate(cls()) for cls in ALL_STORES]
        rows = {store.rows() for store in stores}
        assert len(rows) == 1

    def test_rows_are_order_insensitive(self):
        forward = LogStore()
        forward.create(individual("a"))
        forward.create(individual("b"))
        backward = LogStore()
        backward.create(individual("b"))
        backward.create(individual("a"))
        assert forward.rows() == backward.rows()

    def test_rows_reflect_deletes(self):
        store = populate(MemoryStore())
        before = store.rows()
        store.delete("p3")
        assert store.rows() != before
        assert len(store.rows()) == len(before) - 1


class TestWorkspaceStore:
    def test_partitioning(self):
        store = WorkspaceStore()
        store.create(individual("base"))
        store.add_workspace("design")
        store.set_current("design")
        store.create(individual("draft"))
        assert store.workspace_of("base") == WorkspaceStore.DEFAULT
        assert store.workspace_of("draft") == "design"

    def test_deactivation_hides_propositions(self):
        store = WorkspaceStore()
        store.add_workspace("design")
        store.set_current("design")
        store.create(individual("draft"))
        assert len(store) == 1
        store.deactivate("design")
        assert len(store) == 0
        assert "draft" not in store
        store.activate("design")
        assert "draft" in store

    def test_system_workspace_protected(self):
        store = WorkspaceStore()
        with pytest.raises(PropositionError):
            store.deactivate(WorkspaceStore.DEFAULT)

    def test_duplicate_workspace_rejected(self):
        store = WorkspaceStore()
        store.add_workspace("w")
        with pytest.raises(PropositionError):
            store.add_workspace("w")

    def test_unknown_workspace_operations(self):
        store = WorkspaceStore()
        with pytest.raises(PropositionError):
            store.set_current("missing")
        with pytest.raises(PropositionError):
            store.activate("missing")

    def test_duplicate_pid_across_workspaces_rejected(self):
        store = WorkspaceStore()
        store.create(individual("x"))
        store.add_workspace("w")
        store.set_current("w")
        with pytest.raises(PropositionError):
            store.create(individual("x"))


# -- property: all stores agree with MemoryStore on any operation sequence --

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.integers(0, 20)),
        st.tuples(st.just("delete"), st.integers(0, 20)),
    ),
    max_size=30,
)


@settings(max_examples=50, deadline=None)
@given(_ops)
@pytest.mark.parametrize("store_cls", [LogStore, WorkspaceStore])
def test_stores_equivalent_to_memory(store_cls, ops):
    reference = MemoryStore()
    candidate = store_cls()
    for op, n in ops:
        name = f"node{n}"
        if op == "create":
            try:
                reference.create(individual(name))
                candidate.create(individual(name))
            except PropositionError:
                with pytest.raises(PropositionError):
                    candidate.create(individual(name))
        else:
            try:
                reference.delete(name)
                candidate.delete(name)
            except UnknownPropositionError:
                with pytest.raises(UnknownPropositionError):
                    candidate.delete(name)
    assert {p.pid for p in reference} == {p.pid for p in candidate}


class TestMemoryStoreIndexPruning:
    """Create/delete churn must not leave empty buckets behind."""

    INDEXES = (
        "_by_source",
        "_by_label",
        "_by_destination",
        "_by_source_label",
        "_by_label_destination",
    )

    def sizes(self, store):
        return {name: len(getattr(store, name)) for name in self.INDEXES}

    def test_delete_prunes_empty_buckets(self):
        store = populate(MemoryStore())
        grown = self.sizes(store)
        for pid in ["p1", "p2", "p3", "Paper", "Invitation", "Person"]:
            store.delete(pid)
        for name, size in self.sizes(store).items():
            assert size == 0, f"{name} kept {size} empty buckets"
        assert all(grown[name] > 0 for name in self.INDEXES)

    def test_churn_keeps_index_size_bounded(self):
        store = MemoryStore()
        store.create(individual("Anchor"))
        baseline = self.sizes(store)
        for round_no in range(25):
            pid = f"tmp{round_no}"
            store.create(link(pid, "Anchor", f"label{round_no}", "Anchor"))
            store.delete(pid)
        assert self.sizes(store) == baseline

    def test_shared_bucket_survives_partial_delete(self):
        store = MemoryStore()
        store.create(individual("A"))
        store.create(link("p1", "A", "attr", "A"))
        store.create(link("p2", "A", "attr", "A"))
        store.delete("p1")
        assert store._by_source_label[("A", "attr")] == {"p2"}
        assert list(store.retrieve(Pattern(source="A", label="attr")))[0].pid == "p2"


class TestVisibilityEpoch:
    def test_memory_store_visibility_is_constant(self):
        store = populate(MemoryStore())
        assert store.visibility_epoch == 0
        store.delete("p1")
        assert store.visibility_epoch == 0

    def test_workspace_toggle_bumps_epoch(self):
        store = WorkspaceStore()
        store.add_workspace("scratch")
        before = store.visibility_epoch
        store.deactivate("scratch")
        assert store.visibility_epoch == before + 1
        store.activate("scratch")
        assert store.visibility_epoch == before + 2

    def test_noop_toggle_does_not_bump(self):
        store = WorkspaceStore()
        store.add_workspace("scratch")
        before = store.visibility_epoch
        store.activate("scratch")  # already active
        assert store.visibility_epoch == before


class TestWorkspacePidRetrieve:
    def test_pid_pattern_finds_prop_in_active_space(self):
        store = WorkspaceStore()
        store.create(individual("Paper"))
        store.add_workspace("scratch")
        store.set_current("scratch")
        store.create(individual("Draft"))
        assert [p.pid for p in store.retrieve(Pattern(pid="Draft"))] == ["Draft"]
        assert [p.pid for p in store.retrieve(Pattern(pid="Paper"))] == ["Paper"]

    def test_pid_pattern_hides_inactive_space(self):
        store = WorkspaceStore()
        store.add_workspace("scratch")
        store.set_current("scratch")
        store.create(individual("Draft"))
        store.deactivate("scratch")
        assert list(store.retrieve(Pattern(pid="Draft"))) == []
        store.activate("scratch")
        assert [p.pid for p in store.retrieve(Pattern(pid="Draft"))] == ["Draft"]

    def test_pid_pattern_respects_other_fields(self):
        store = WorkspaceStore()
        store.create(individual("A"))
        store.create(link("p1", "A", "attr", "A"))
        assert list(store.retrieve(Pattern(pid="p1", label="other"))) == []
        assert [p.pid for p in store.retrieve(Pattern(pid="p1", label="attr"))] == ["p1"]

    def test_unknown_pid_yields_nothing(self):
        store = WorkspaceStore()
        assert list(store.retrieve(Pattern(pid="ghost"))) == []
