"""Cross-module property-based tests (hypothesis).

Each property ties two independent implementations of the same notion
together (e.g. top-down prover vs bottom-up Datalog, event-calculus
``holds_at`` vs derived intervals), or states an invariant the paper's
design depends on (backtracking removes exactly the consequents).
"""

from hypothesis import given, settings, strategies as st

from repro.deduction import Database, Prover, evaluate, parse_literal, parse_program
from repro.objects import ObjectProcessor
from repro.objects.frame import AttributeDecl, ObjectFrame
from repro.propositions import PropositionProcessor
from repro.timecalc import (
    AllenNetwork,
    EventCalculus,
    Fluent,
    Interval,
    relation_between,
)
from repro.core.rms import JTMS

# ---------------------------------------------------------------------------
# Frame <-> proposition roundtrip
# ---------------------------------------------------------------------------

_name = st.from_regex(r"[a-z][a-z0-9]{0,6}", fullmatch=True)
_label = st.from_regex(r"[a-z][a-z0-9]{0,6}", fullmatch=True)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(_label, st.integers(0, 4)), min_size=0, max_size=5,
             unique_by=lambda t: t[0])
)
def test_frame_roundtrip(attr_specs):
    """tell(frame); ask(name) reproduces the frame up to ordering."""
    op = ObjectProcessor()
    proc = op.propositions
    proc.define_class("Thing")
    targets = [f"t{i}" for i in range(5)]
    for target in targets:
        proc.tell_individual(target, in_class="Thing")
    frame = ObjectFrame(
        name="subject",
        in_classes=["Thing"],
        attributes=[
            AttributeDecl("attribute", label, targets[target_index])
            for label, target_index in attr_specs
        ],
    )
    op.transformer.tell(frame)
    assert op.transformer.roundtrip_equal(frame)


# ---------------------------------------------------------------------------
# Top-down prover agrees with bottom-up Datalog
# ---------------------------------------------------------------------------

_edges = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(
        lambda t: t[0] < t[1]  # forward edges only: SLD needs a DAG
    ),
    min_size=0,
    max_size=10,
)

_TC_PROGRAM = parse_program(
    """
    path(?x, ?y) :- edge(?x, ?y).
    path(?x, ?z) :- edge(?x, ?y), path(?y, ?z).
    """
)


@settings(max_examples=30, deadline=None)
@given(_edges)
def test_prover_agrees_with_seminaive(edges):
    rows = {(f"n{a}", f"n{b}") for a, b in edges}
    edb = Database({"edge": rows})
    idb = evaluate(_TC_PROGRAM, edb)
    bottom_up = idb.rows("path")

    prover = Prover(
        _TC_PROGRAM,
        fact_source=lambda p: rows if p == "edge" else (),
        max_depth=64,
    )
    top_down = set(prover.answers(parse_literal("path(?x, ?y)")))
    assert top_down == bottom_up


# ---------------------------------------------------------------------------
# Allen: concrete relations survive propagation
# ---------------------------------------------------------------------------

_interval = st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
    lambda t: t[0] < t[1]
).map(lambda t: Interval.from_ticks(*t))


@settings(max_examples=40, deadline=None)
@given(_interval, _interval, _interval)
def test_allen_network_accepts_concrete_configurations(a, b, c):
    """A network built from the true pairwise relations of concrete
    intervals is always consistent and never loses the true relation."""
    net = AllenNetwork()
    net.constrain("a", "b", [relation_between(a, b)])
    net.constrain("b", "c", [relation_between(b, c)])
    net.constrain("a", "c", [relation_between(a, c)])
    net.propagate()
    assert relation_between(a, c) in net.relations("a", "c")


# ---------------------------------------------------------------------------
# Event calculus: holds_at consistent with derived intervals
# ---------------------------------------------------------------------------

_events = st.lists(
    st.tuples(st.integers(0, 30), st.booleans()), min_size=0, max_size=14
)


@settings(max_examples=60, deadline=None)
@given(_events, st.integers(-1, 32))
def test_holds_at_matches_intervals(events, probe):
    calculus = EventCalculus()
    fluent = Fluent("f")
    for index, (time, is_start) in enumerate(events):
        if is_start:
            calculus.happens(f"e{index}", time, initiates=[fluent])
        else:
            calculus.happens(f"e{index}", time, terminates=[fluent])
    holds = calculus.holds_at(fluent, probe)
    spans = calculus.intervals(fluent)
    # holds_at and the derived half-open [init, term) spans must agree
    # exactly, boundaries included
    in_span = any(span.contains_point(probe) for span in spans)
    assert holds == in_span


# ---------------------------------------------------------------------------
# Serialisation roundtrip
# ---------------------------------------------------------------------------

_times = st.one_of(
    st.none(),
    st.tuples(st.integers(-50, 50), st.integers(-50, 50)).filter(
        lambda t: t[0] < t[1]
    ),
)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(_name, _times), min_size=0, max_size=8,
             unique_by=lambda t: t[0]),
    st.lists(st.tuples(st.integers(0, 7), _label, st.integers(0, 7), _times),
             max_size=8),
)
def test_serialization_roundtrip(individuals, links):
    """dumps() then loads() reproduces the proposition base exactly."""
    import json

    from repro.propositions.serialization import dumps, loads
    from repro.timecalc import Interval

    proc = PropositionProcessor()
    names = []
    for name, span in individuals:
        time = Interval.from_ticks(*span) if span else None
        if time is None:
            proc.tell_individual(name)
        else:
            proc.tell_individual(name, time=time)
        names.append(name)
    for a, label, b, span in links:
        if not names:
            break
        source = names[a % len(names)]
        destination = names[b % len(names)]
        time = Interval.from_ticks(*span) if span else None
        if time is None:
            proc.tell_link(source, label, destination)
        else:
            proc.tell_link(source, label, destination, time=time)
    restored = loads(dumps(proc))
    original_set = {
        (p.pid, p.source, p.label, p.destination, repr(p.time))
        for p in proc.store
    }
    restored_set = {
        (p.pid, p.source, p.label, p.destination, repr(p.time))
        for p in restored.store
    }
    assert original_set == restored_set
    # and the dump itself is valid JSON
    json.loads(dumps(proc))


# ---------------------------------------------------------------------------
# JTMS: belief equals reachability without retracted assumptions
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 5), st.integers(0, 7)), max_size=16),
    st.sets(st.integers(0, 5), max_size=3),
)
def test_jtms_matches_reachability(justifications, retracted):
    """Nodes n{k} justified by assumption a{j}: belief in the JTMS must
    equal reachability from non-retracted assumptions."""
    tms = JTMS()
    for j in range(6):
        tms.add_assumption(f"a{j}")
    for assumption_index, node_index in justifications:
        tms.justify(f"n{node_index}", in_list=[f"a{assumption_index}"])
    for j in retracted:
        tms.retract(f"a{j}")
    expected = {
        f"n{node}"
        for assumption, node in justifications
        if assumption not in retracted
    }
    believed_nodes = {
        name for name in tms.believed() if name.startswith("n")
    }
    assert believed_nodes == expected


# ---------------------------------------------------------------------------
# Backtracking invariant over random decision histories
# ---------------------------------------------------------------------------

def _synthetic_gkbms(chain_spec):
    """Build a GKBMS with manual decisions forming chains per spec:
    each entry (input_index) consumes output of that earlier decision
    (or the seed when pointing at itself/before)."""
    from repro.core import GKBMS, DecisionClass

    gkbms = GKBMS()
    gkbms.decisions.register(DecisionClass(
        name="DecStep",
        inputs=(("source", "TDL_Object"),),
        outputs=(("result", "DBPL_Object"),),
    ))
    gkbms.processor.tell_individual("seed", in_class="TDL_EntityClass")
    outputs = []
    records = []
    for index, input_index in enumerate(chain_spec):
        if input_index < len(outputs):
            source = outputs[input_index]
        else:
            source = "seed"
        name = f"out{index}"
        gkbms.processor.tell_individual(name, in_class="DBPL_Rel")
        # manual execution: outputs pre-created, then documented
        record = gkbms.execute(
            "DecStep", {"source": source}, outputs={"result": [name]},
        )
        outputs.append(name)
        records.append(record)
    return gkbms, records, outputs


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 20), min_size=1, max_size=8),
    st.integers(0, 7),
)
def test_backtracking_removes_exactly_consequents(chain_spec, victim_index):
    """After retracting decision d: d and its consequents are retracted,
    their outputs gone from the KB; everything else survives intact.

    Note: manual decisions consume DBPL objects, which our DecStep
    accepts because its input class is TDL_Object... so inputs must be
    instances of TDL_Object — we instead check applicability loosely by
    classifying every output as both levels.
    """
    from repro.errors import NotApplicableError

    try:
        gkbms, records, outputs = _synthetic_gkbms(chain_spec)
    except NotApplicableError:
        return  # chain consumed a DBPL-only object; spec not applicable
    victim_index = victim_index % len(records)
    victim = records[victim_index]
    expected_condemned = set(
        gkbms.backtracker.consequents(victim.did) + [victim.did]
    )
    gkbms.backtracker.retract(victim.did)
    for record in records:
        if record.did in expected_condemned:
            assert record.is_retracted
            for name in record.all_outputs():
                assert not gkbms.processor.exists(name)
        else:
            assert not record.is_retracted
            for name in record.all_outputs():
                assert gkbms.processor.exists(name)
