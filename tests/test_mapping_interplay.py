"""Tests for interactions between mapping assistants (found by the
stress workload, pinned here as regressions)."""

import pytest

from repro.core import GKBMS
from repro.errors import DecisionError
from repro.languages.dbpl.ast import ForeignKey

DESIGN = """
entity class Root with
  owner : Root
end
entity class Branch isa Root with
  members : set of Root
end
entity class Twig isa Branch with
  colour : Root
end
"""


@pytest.fixture
def gkbms():
    g = GKBMS()
    g.register_standard_library()
    g.import_design(DESIGN)
    return g


class TestNormalizeOverDistribute:
    def test_isa_selectors_follow_the_split(self, gkbms):
        """Distribute creates isa selectors; normalising the relation
        they reference must re-point them, keeping the module loadable."""
        gkbms.execute("DecDistribute", {"hierarchy": "Root"},
                      tool="DistributeMapper")
        record = gkbms.execute(
            "DecNormalize", {"relation": "BranchRel"}, tool="Normalizer",
        )
        # the selector guarding BranchRel (as source) moved to the base
        module = gkbms.module
        isa_selector = module.selectors["BranchRelIsARoot"]
        assert isa_selector.relation == "BranchRel2"
        # the selector targeting BranchRel (Twig's isa) re-targets
        twig_selector = module.selectors["TwigRelIsABranch"]
        assert isinstance(twig_selector.constraint, ForeignKey)
        assert twig_selector.constraint.target == "BranchRel2"
        # and the whole module still loads into the engine
        db = gkbms.build_database()
        assert "BranchRel2" in db.relations

    def test_undo_restores_selectors(self, gkbms):
        gkbms.execute("DecDistribute", {"hierarchy": "Root"},
                      tool="DistributeMapper")
        record = gkbms.execute(
            "DecNormalize", {"relation": "BranchRel"}, tool="Normalizer",
        )
        gkbms.backtracker.retract(record.did)
        module = gkbms.module
        assert module.selectors["BranchRelIsARoot"].relation == "BranchRel"
        assert module.selectors["TwigRelIsABranch"].constraint.target == (
            "BranchRel"
        )
        gkbms.build_database()

    def test_normalized_module_executes_end_to_end(self, gkbms):
        gkbms.execute("DecDistribute", {"hierarchy": "Root"},
                      tool="DistributeMapper")
        gkbms.execute("DecNormalize", {"relation": "BranchRel"},
                      tool="Normalizer")
        db = gkbms.build_database()
        with db.transaction():
            db.relation("RootRel").insert({"paperkey": "k1", "owner": "o"})
            db.relation("BranchRel2").insert({"paperkey": "k1"})
        # referential integrity still guards the split relation
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            with db.transaction():
                db.relation("BranchRel2").insert({"paperkey": "dangling"})


class TestKeySubstitutionEdgeCases:
    def test_composite_surrogate_requires_drop(self, gkbms):
        from repro.core.mapping.keys import key_substitution_apply

        gkbms.execute("DecMoveDown", {"hierarchy": "Root"},
                      tool="MoveDownMapper")
        gkbms.execute("DecNormalize", {"relation": "TwigRel"},
                      tool="Normalizer")
        # the normalisation detail relation has a composite key, so the
        # field to drop cannot be inferred and must be passed explicitly
        detail = [
            name for name, decl in gkbms.module.relations.items()
            if len(decl.key) > 1
        ][0]
        with pytest.raises(DecisionError):
            key_substitution_apply(
                gkbms, {"relation": detail}, {"key": ("owner",)}
            )

    def test_key_must_exist_as_field(self, gkbms):
        from repro.core.mapping.keys import key_substitution_apply

        gkbms.execute("DecMoveDown", {"hierarchy": "Root"},
                      tool="MoveDownMapper")
        with pytest.raises(DecisionError):
            key_substitution_apply(
                gkbms, {"relation": "TwigRel"}, {"key": ("nonexistent",)}
            )

    def test_unknown_relation(self, gkbms):
        from repro.core.mapping.keys import key_substitution_apply

        with pytest.raises(DecisionError):
            key_substitution_apply(
                gkbms, {"relation": "Ghost"}, {"key": ("owner",)}
            )


class TestNormalizeEdgeCases:
    def test_no_set_valued_field(self, gkbms):
        from repro.core.mapping.normalize import normalize_apply

        gkbms.execute("DecDistribute", {"hierarchy": "Root"},
                      tool="DistributeMapper")
        with pytest.raises(DecisionError):
            normalize_apply(gkbms, {"relation": "RootRel"}, {})

    def test_multiple_set_fields_need_choice(self, gkbms):
        from repro.core.mapping.normalize import normalize_apply
        from repro.languages.dbpl.ast import Field, RelationDecl

        gkbms.add_artifact(
            RelationDecl("Multi", [
                Field("k", "Surrogate"),
                Field("a", "SET OF X"),
                Field("b", "SET OF Y"),
            ], key=("k",)),
            kb_class="DBPL_Rel",
        )
        with pytest.raises(DecisionError):
            normalize_apply(gkbms, {"relation": "Multi"}, {})
        result = normalize_apply(gkbms, {"relation": "Multi"}, {"field": "b"})
        base = gkbms.module.relations[result["relations"][0]]
        assert "a" in base.field_names()
        assert "b" not in base.field_names()

    def test_unknown_relation(self, gkbms):
        from repro.core.mapping.normalize import normalize_apply

        with pytest.raises(DecisionError):
            normalize_apply(gkbms, {"relation": "Ghost"}, {})
