"""Tests for argumentation structures and multicriteria choice."""

import pytest

from repro.errors import GKBMSError
from repro.core.group import (
    Alternative,
    ArgumentationBase,
    ChoiceProblem,
    Criterion,
)
from repro.scenario import MeetingScenario


@pytest.fixture
def scenario():
    return MeetingScenario().setup()


class TestArgumentation:
    def _thread(self, scenario):
        base = ArgumentationBase(scenario.gkbms)
        issue = base.raise_issue(
            "jarke", "how should the Papers hierarchy be mapped?",
            about="Papers",
        )
        move_down = base.take_position(
            issue.iid, "rose", "use move-down: fewer relations",
            decision_class="DecMoveDown",
        )
        distribute = base.take_position(
            issue.iid, "jeusfeld", "use distribute: simpler updates",
            decision_class="DecDistribute",
        )
        base.argue(move_down.pid, "jarke", "hierarchy is shallow", True)
        base.argue(move_down.pid, "rose", "queries stay one-relation", True)
        base.argue(distribute.pid, "jarke", "update anomalies", False)
        return base, issue, move_down, distribute

    def test_thread_construction(self, scenario):
        base, issue, move_down, distribute = self._thread(scenario)
        assert base.score(move_down.pid) == 2
        assert base.score(distribute.pid) == -1
        assert base.preferred_position(issue.iid) is move_down

    def test_reflected_in_kb(self, scenario):
        base, issue, move_down, _ = self._thread(scenario)
        proc = scenario.gkbms.processor
        assert proc.is_instance_of(issue.iid, "Issue")
        assert proc.is_instance_of(move_down.pid, "Position")
        about = proc.attributes_of(issue.iid, label="about")
        assert about[0].destination == "Papers"

    def test_resolution_links_to_decision(self, scenario):
        base, issue, move_down, _ = self._thread(scenario)
        record = scenario.map_hierarchy()
        base.resolve(move_down.pid, record.did)
        assert move_down.is_resolved
        assert base.issues[issue.iid].status == "settled"
        assert base.open_issues() == []

    def test_render(self, scenario):
        base, issue, *_ = self._thread(scenario)
        text = base.render(issue.iid)
        assert "ISSUE" in text and "POSITION" in text
        assert "+ " in text and "- " in text

    def test_sync_with_history_reopens_issue(self, scenario):
        base, issue, move_down, _ = self._thread(scenario)
        record = scenario.map_hierarchy()
        base.resolve(move_down.pid, record.did)
        assert base.open_issues() == []
        scenario.gkbms.backtracker.retract(record.did)
        reopened = base.sync_with_history()
        assert reopened == [issue.iid]
        assert not move_down.is_resolved
        assert base.issues[issue.iid].status == "open"
        # a second sync is a no-op
        assert base.sync_with_history() == []

    def test_unknown_references(self, scenario):
        base = ArgumentationBase(scenario.gkbms)
        with pytest.raises(GKBMSError):
            base.take_position("issue99", "x", "y")
        with pytest.raises(GKBMSError):
            base.argue("pos99", "x", "y")
        with pytest.raises(GKBMSError):
            base.resolve("pos99", "dec1")
        with pytest.raises(GKBMSError):
            base.render("issue99")


class TestChoice:
    def _problem(self):
        problem = ChoiceProblem([
            Criterion("query_speed", weight=2.0),
            Criterion("update_simplicity", weight=1.0),
            Criterion("storage", weight=0.5),
        ])
        problem.add_alternative(Alternative(
            "move-down",
            {"query_speed": 5, "update_simplicity": 2, "storage": 3},
            decision_class="DecMoveDown",
        ))
        problem.add_alternative(Alternative(
            "distribute",
            {"query_speed": 2, "update_simplicity": 4, "storage": 4},
            decision_class="DecDistribute",
        ))
        return problem

    def test_weighted_ranking(self):
        problem = self._problem()
        ranking = problem.ranking()
        assert ranking[0][0] == "move-down"
        assert ranking[0][1] == pytest.approx(2 * 5 + 2 + 0.5 * 3)

    def test_best(self):
        assert self._problem().best().name == "move-down"

    def test_dominance(self):
        problem = self._problem()
        problem.add_alternative(Alternative(
            "bad", {"query_speed": 1, "update_simplicity": 1, "storage": 1}
        ))
        assert problem.dominated() == ["bad"]
        assert set(problem.pareto_front()) == {"move-down", "distribute"}

    def test_sensitivity(self):
        problem = self._problem()
        totals = problem.sensitivity("query_speed")
        assert totals["move-down"] == pytest.approx(2 + 0.5 * 3)

    def test_report(self):
        text = self._problem().report()
        assert "pareto front" in text
        assert "move-down" in text

    def test_validation(self):
        with pytest.raises(GKBMSError):
            ChoiceProblem([])
        with pytest.raises(GKBMSError):
            ChoiceProblem([Criterion("a"), Criterion("a")])
        with pytest.raises(GKBMSError):
            Criterion("bad", weight=-1)
        problem = self._problem()
        with pytest.raises(GKBMSError):
            problem.add_alternative(Alternative("move-down"))
        with pytest.raises(GKBMSError):
            problem.add_alternative(Alternative("x", {"nope": 1}))
        with pytest.raises(GKBMSError):
            problem.sensitivity("nope")

    def test_empty_best_rejected(self):
        problem = ChoiceProblem([Criterion("c")])
        with pytest.raises(GKBMSError):
            problem.best()
