"""Unit tests for the event calculus and the calculus interface."""

import pytest

from repro.errors import TimeError
from repro.timecalc import (
    AllenCalculus,
    AllenRelation,
    EventBasedCalculus,
    EventCalculus,
    Fluent,
    Interval,
    get_calculus,
)


@pytest.fixture
def history():
    ec = EventCalculus()
    on = Fluent("valid", ("spec_v1",))
    ec.happens("tell", 10, initiates=[on])
    ec.happens("untell", 20, terminates=[on])
    ec.happens("tell_again", 30, initiates=[on])
    return ec, on


class TestEventCalculus:
    def test_holds_between_initiation_and_termination(self, history):
        ec, on = history
        assert ec.holds_at(on, 15)
        assert not ec.holds_at(on, 25)
        assert ec.holds_at(on, 35)

    def test_boundary_semantics(self, history):
        """Holding spans are half-open [initiation, termination)."""
        ec, on = history
        assert ec.holds_at(on, 10)       # holds at the initiation instant
        assert not ec.holds_at(on, 20)   # gone at the termination instant

    def test_intervals_derived(self, history):
        ec, on = history
        spans = ec.intervals(on)
        assert len(spans) == 2
        assert spans[0].contains_point(15)
        assert not spans[0].contains_point(20)
        assert spans[1].contains_point(10**9)  # open towards the future

    def test_out_of_order_recording(self):
        ec = EventCalculus()
        f = Fluent("open")
        ec.happens("later", 30, terminates=[f])
        ec.happens("earlier", 10, initiates=[f])
        assert ec.holds_at(f, 20)
        assert not ec.holds_at(f, 40)

    def test_clipped(self, history):
        ec, on = history
        assert ec.clipped(on, 10, 30)
        assert not ec.clipped(on, 21, 29)
        with pytest.raises(TimeError):
            ec.clipped(on, 30, 30)

    def test_snapshot(self):
        ec = EventCalculus()
        a, b = Fluent("a"), Fluent("b")
        ec.happens("e1", 1, initiates=[a, b])
        ec.happens("e2", 5, terminates=[a])
        assert ec.snapshot(3) == [a, b]
        assert ec.snapshot(6) == [b]

    def test_fluents_census(self, history):
        ec, on = history
        assert ec.fluents() == [on]

    def test_same_instant_terminate_then_initiate(self):
        ec = EventCalculus()
        f = Fluent("f")
        ec.happens("start", 5, initiates=[f])
        ec.happens("switch", 9, initiates=[f], terminates=[f])
        assert ec.holds_at(f, 12)

    def test_initiated_terminated_lists(self, history):
        ec, on = history
        assert ec.initiated_at(on) == [10, 30]
        assert ec.terminated_at(on) == [20]


class TestCalculusInterface:
    def test_get_calculus(self):
        assert get_calculus("allen").name == "allen"
        assert get_calculus("events").name == "events"

    def test_unknown_calculus(self):
        with pytest.raises(TimeError):
            get_calculus("lightcone")

    def test_allen_calculus_valid_at(self):
        calc = AllenCalculus()
        assert calc.valid_at(Interval.from_ticks(0, 5), 3)
        assert not calc.valid_at(Interval.from_ticks(0, 5), 5)

    def test_allen_calculus_network(self):
        calc = AllenCalculus()
        calc.assert_relation("v1", "v2", [AllenRelation.BEFORE])
        calc.check_consistency()
        assert calc.classify(
            Interval.from_ticks(0, 2), Interval.from_ticks(3, 5)
        ) is AllenRelation.BEFORE

    def test_event_calculus_assert_retract(self):
        calc = EventBasedCalculus()
        calc.assert_proposition("p1", 10)
        assert calc.currently_valid("p1", 15)
        calc.retract_proposition("p1", 20)
        assert not calc.currently_valid("p1", 25)
        spans = calc.validity_intervals("p1")
        assert len(spans) == 1
        assert spans[0].contains_point(12)

    def test_event_calculus_cooccur(self):
        calc = EventBasedCalculus()
        assert calc.cooccur(Interval.from_ticks(0, 5), Interval.from_ticks(3, 8))
        assert not calc.cooccur(Interval.from_ticks(0, 3), Interval.from_ticks(3, 8))
