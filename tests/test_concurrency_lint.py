"""PR 6 — the static concurrency lint (guarded-by + lock order).

Exercises every diagnostic the pass can raise against small synthetic
sources, the suppression and ``# holds:`` markers, the CLI contract it
shares with ``python -m repro.analysis``, and — the acceptance gate —
that the annotated repo tree itself lints clean under ``--strict``.
"""

import json
import os

import pytest

import repro
from repro.analysis.concurrency.__main__ import main as ccy_main
from repro.analysis.concurrency.lint import (
    ConcurrencyLinter,
    lint_paths,
    lint_source,
)
from repro.analysis.diagnostics import Severity


def codes(report):
    return [d.code for d in report.diagnostics]


# ---------------------------------------------------------------------------
# guarded-by enforcement (CCY001 / CCY002)
# ---------------------------------------------------------------------------

class TestGuardedBy:
    def test_unlocked_access_is_ccy001(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0  # guarded-by: _lock\n"
            "    def peek(self):\n"
            "        return self._count\n"
        )
        found = report.by_code("CCY001")
        assert len(found) == 1
        assert found[0].subject == "S._count"
        assert found[0].severity is Severity.ERROR

    def test_with_block_access_is_clean(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0  # guarded-by: _lock\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
        )
        assert not report.errors()

    def test_init_is_exempt(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0  # guarded-by: _lock\n"
            "        self._count += 1\n"
        )
        assert not report.errors()

    def test_holds_marker_satisfies_the_guard(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0  # guarded-by: _lock\n"
            "    def _bump_locked(self):  # holds: _lock\n"
            "        self._count += 1\n"
        )
        assert not report.errors()

    def test_write_under_read_side_is_ccy002(self):
        report = lint_source(
            "from repro.analysis.concurrency.lockdep import make_rwlock\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._rw = make_rwlock('s.rw')\n"
            "        self._state = {}  # guarded-by: _rw\n"
            "    def read(self):\n"
            "        with self._rw.read_locked():\n"
            "            return dict(self._state)\n"
            "    def corrupt(self):\n"
            "        with self._rw.read_locked():\n"
            "            self._state = {}\n"
        )
        assert not report.by_code("CCY001")
        found = report.by_code("CCY002")
        assert len(found) == 1
        assert found[0].subject == "S._state"

    def test_write_locked_permits_the_write(self):
        report = lint_source(
            "from repro.analysis.concurrency.lockdep import make_rwlock\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._rw = make_rwlock('s.rw')\n"
            "        self._state = {}  # guarded-by: _rw\n"
            "    def replace(self):\n"
            "        with self._rw.write_locked():\n"
            "            self._state = {}\n"
        )
        assert not report.errors()

    def test_writer_confinement_violation(self):
        report = lint_source(
            "class S:\n"
            "    def __init__(self):\n"
            "        self._seq = 0  # guarded-by: <writer>\n"
            "    def _run(self):  # runs-on: writer\n"
            "        self._seq += 1\n"
            "    def poke(self):\n"
            "        self._seq += 1\n"
        )
        found = report.by_code("CCY001")
        assert len(found) == 1
        assert "S.poke" in found[0].message

    def test_atomic_and_external_are_documented_not_enforced(self):
        report = lint_source(
            "class S:\n"
            "    def __init__(self):\n"
            "        self._flag = False  # guarded-by: <atomic>\n"
            "        self._st = {}  # guarded-by: external: Other._lock\n"
            "    def poke(self):\n"
            "        self._flag = True\n"
            "        return self._st\n"
        )
        assert not report.errors()

    def test_unguarded_marker_suppresses_one_line(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0  # guarded-by: _lock\n"
            "    def peek(self):\n"
            "        return self._count  # unguarded: racy read is advisory\n"
            "    def leak(self):\n"
            "        return self._count\n"
        )
        found = report.by_code("CCY001")
        assert len(found) == 1
        assert "S.leak" in found[0].message


# ---------------------------------------------------------------------------
# annotation hygiene (CCY003 / CCY004)
# ---------------------------------------------------------------------------

class TestAnnotations:
    def test_unknown_lock_attribute_is_ccy003_warning(self):
        report = lint_source(
            "class S:\n"
            "    def __init__(self):\n"
            "        self._count = 0  # guarded-by: _nonexistent\n"
        )
        found = report.by_code("CCY003")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert not report.errors()

    def test_malformed_spec_is_ccy004(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0  # guarded-by: not an identifier!\n"
        )
        assert len(report.by_code("CCY004")) == 1

    def test_unparsable_holds_token_is_ccy004(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self):  # holds: two words\n"
            "        pass\n"
        )
        assert len(report.by_code("CCY004")) == 1

    def test_syntax_error_input_is_ccy004_not_a_crash(self):
        report = lint_source("def broken(:\n")
        assert len(report.by_code("CCY004")) == 1

    def test_strict_promotion_turns_warnings_fatal(self):
        report = lint_source(
            "class S:\n"
            "    def __init__(self):\n"
            "        self._count = 0  # guarded-by: _nonexistent\n"
        )
        assert not report.errors()
        promoted = report.promote_warnings()
        assert promoted.errors()


# ---------------------------------------------------------------------------
# blocking calls under a critical lock (CCY010)
# ---------------------------------------------------------------------------

class TestCriticalLocks:
    SOURCE = (
        "import os, threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()  # lock: critical\n"
        "    def flush(self, fd):\n"
        "        with self._lock:\n"
        "            os.fsync(fd)\n"
        "    def flush_outside(self, fd):\n"
        "        with self._lock:\n"
        "            pass\n"
        "        os.fsync(fd)\n"
    )

    def test_fsync_under_critical_lock_is_ccy010(self):
        report = lint_source(self.SOURCE)
        found = report.by_code("CCY010")
        assert len(found) == 1
        assert "S.flush " in found[0].message + " "
        assert found[0].subject == "S._lock"

    def test_non_critical_lock_permits_blocking_calls(self):
        report = lint_source(self.SOURCE.replace("  # lock: critical", ""))
        assert not report.by_code("CCY010")


# ---------------------------------------------------------------------------
# static lock-order cycles (CCY020)
# ---------------------------------------------------------------------------

class TestLockOrder:
    def test_abba_across_methods_is_ccy020(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def ab(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def ba(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                pass\n"
        )
        found = report.by_code("CCY020")
        assert len(found) == 1
        assert "S._a" in found[0].message and "S._b" in found[0].message
        # the hint carries the witness sites for both edges
        assert "S.ab" in found[0].hint and "S.ba" in found[0].hint

    def test_consistent_order_is_clean(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def ab(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
            "    def ab_again(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
        )
        assert not report.by_code("CCY020")

    def test_cross_file_cycle_is_detected(self):
        linter = ConcurrencyLinter()
        linter.lint_source(
            "import threading\n"
            "class P:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "    def f(self, other):\n"
            "        with self._a:\n"
            "            with other.q_lock:\n"
            "                pass\n",
            path="p.py",
        )
        linter.lint_source(
            "import threading\n"
            "class Q:\n"
            "    def __init__(self):\n"
            "        self.q_lock = threading.Lock()\n"
            "    def g(self, p):\n"
            "        with self.q_lock:\n"
            "            with p.a_lock:\n"
            "                pass\n",
            path="q.py",
        )
        # P._a -> other.q_lock and Q.q_lock -> p.a_lock never unify (the
        # lint is name-based and conservative), so no false cycle here…
        assert not linter.finish().by_code("CCY020")

    def test_rlock_reacquisition_is_not_a_self_cycle(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        assert not report.by_code("CCY020")

    def test_plain_lock_reacquisition_is_a_self_cycle(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        assert len(report.by_code("CCY020")) == 1

    def test_summary_line_reports_graph_size(self):
        report = lint_source(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "        self._x = 0  # guarded-by: _a\n"
            "    def ab(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
        )
        summary = report.by_code("CCY021")
        assert len(summary) == 1
        assert "1 classes" in summary[0].message
        assert "1 guarded fields" in summary[0].message
        assert "1 acquisition edges" in summary[0].message


# ---------------------------------------------------------------------------
# the acceptance gate: the annotated repo tree lints clean
# ---------------------------------------------------------------------------

class TestRepoTree:
    def test_src_repro_lints_clean_in_strict_mode(self):
        pkg = os.path.dirname(os.path.abspath(repro.__file__))
        report = lint_paths([pkg]).promote_warnings()
        assert not report.errors(), report.render_text()

    def test_src_repro_declares_guarded_fields(self):
        pkg = os.path.dirname(os.path.abspath(repro.__file__))
        summary = lint_paths([pkg]).by_code("CCY021")[0]
        # the service tier carries real annotations, not a token one
        fields = int(summary.message.split("guarded fields")[0]
                     .rsplit(",", 1)[1].strip())
        assert fields >= 20


# ---------------------------------------------------------------------------
# CLI contract (shared with python -m repro.analysis)
# ---------------------------------------------------------------------------

class TestCLI:
    @pytest.fixture
    def dirty_tree(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0  # guarded-by: _lock\n"
            "        self._m = 0  # guarded-by: _ghost\n"
            "    def peek(self):\n"
            "        return self._n\n"
        )
        return tmp_path

    def test_findings_exit_1(self, dirty_tree, capsys):
        assert ccy_main([str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "CCY001" in out and "CCY003" in out

    def test_clean_tree_exits_0(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert ccy_main([str(tmp_path)]) == 0

    def test_warning_only_exits_0_until_strict(self, tmp_path):
        warn = tmp_path / "warn.py"
        warn.write_text(
            "class S:\n"
            "    def __init__(self):\n"
            "        self._n = 0  # guarded-by: _ghost\n"
        )
        assert ccy_main([str(warn)]) == 0
        assert ccy_main(["--strict", str(warn)]) == 1

    def test_json_output_is_machine_readable(self, dirty_tree, capsys):
        ccy_main(["--json", str(dirty_tree)])
        payload = json.loads(capsys.readouterr().out)
        assert {"CCY001", "CCY003"} <= {d["code"]
                                        for d in payload["diagnostics"]}

    def test_missing_path_exits_2(self):
        assert ccy_main(["/nonexistent/file.py"]) == 2

    def test_codes_listing_is_ccy_only(self, capsys):
        assert ccy_main(["--codes"]) == 0
        out = capsys.readouterr().out
        assert "CCY001" in out and "CCY020" in out
        assert "CML001" not in out

    def test_default_paths_lint_the_repro_package(self, capsys):
        assert ccy_main(["--strict"]) == 0
        assert "lock-order graph" in capsys.readouterr().out
