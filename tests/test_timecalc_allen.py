"""Unit and property tests for the Allen interval algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TimeError
from repro.timecalc import (
    ALLEN_RELATIONS,
    AllenNetwork,
    AllenRelation,
    Interval,
    compose,
    invert,
    relation_between,
)

intervals = st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(
    lambda t: t[0] < t[1]
).map(lambda t: Interval.from_ticks(*t))


class TestBasicRelations:
    def test_thirteen_relations(self):
        assert len(ALLEN_RELATIONS) == 13

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ((0, 2), (5, 8), AllenRelation.BEFORE),
            ((5, 8), (0, 2), AllenRelation.AFTER),
            ((0, 5), (5, 8), AllenRelation.MEETS),
            ((5, 8), (0, 5), AllenRelation.MET_BY),
            ((0, 6), (4, 9), AllenRelation.OVERLAPS),
            ((4, 9), (0, 6), AllenRelation.OVERLAPPED_BY),
            ((0, 3), (0, 9), AllenRelation.STARTS),
            ((0, 9), (0, 3), AllenRelation.STARTED_BY),
            ((3, 6), (0, 9), AllenRelation.DURING),
            ((0, 9), (3, 6), AllenRelation.CONTAINS),
            ((6, 9), (0, 9), AllenRelation.FINISHES),
            ((0, 9), (6, 9), AllenRelation.FINISHED_BY),
            ((2, 7), (2, 7), AllenRelation.EQUAL),
        ],
    )
    def test_each_relation(self, a, b, expected):
        assert relation_between(
            Interval.from_ticks(*a), Interval.from_ticks(*b)
        ) is expected

    @given(intervals, intervals)
    def test_exactly_one_relation_holds(self, a, b):
        rel = relation_between(a, b)
        assert rel in ALLEN_RELATIONS

    @given(intervals, intervals)
    def test_inverse_is_converse(self, a, b):
        assert invert(relation_between(a, b)) is relation_between(b, a)

    def test_invert_is_involution(self):
        for rel in ALLEN_RELATIONS:
            assert invert(invert(rel)) is rel


class TestComposition:
    def test_before_before_is_before(self):
        assert compose(AllenRelation.BEFORE, AllenRelation.BEFORE) == frozenset(
            {AllenRelation.BEFORE}
        )

    def test_equal_is_identity(self):
        for rel in ALLEN_RELATIONS:
            assert compose(AllenRelation.EQUAL, rel) == frozenset({rel})
            assert compose(rel, AllenRelation.EQUAL) == frozenset({rel})

    def test_during_during_is_during(self):
        assert compose(AllenRelation.DURING, AllenRelation.DURING) == frozenset(
            {AllenRelation.DURING}
        )

    def test_before_after_is_full(self):
        # Nothing can be concluded from A before B, B after C.
        assert compose(AllenRelation.BEFORE, AllenRelation.AFTER) == frozenset(
            ALLEN_RELATIONS
        )

    @given(intervals, intervals, intervals)
    def test_composition_soundness(self, a, b, c):
        """The concrete relation A-to-C is always in compose(A-B, B-C)."""
        r1 = relation_between(a, b)
        r2 = relation_between(b, c)
        assert relation_between(a, c) in compose(r1, r2)

    def test_converse_composition_law(self):
        """inv(compose(r1, r2)) == compose(inv(r2), inv(r1))."""
        for r1 in ALLEN_RELATIONS:
            for r2 in ALLEN_RELATIONS:
                left = frozenset(invert(r) for r in compose(r1, r2))
                right = compose(invert(r2), invert(r1))
                assert left == right


class TestAllenNetwork:
    def test_transitive_before(self):
        net = AllenNetwork()
        net.constrain("a", "b", [AllenRelation.BEFORE])
        net.constrain("b", "c", [AllenRelation.BEFORE])
        net.propagate()
        assert net.relations("a", "c") == frozenset({AllenRelation.BEFORE})

    def test_inconsistency_detected(self):
        net = AllenNetwork()
        net.constrain("a", "b", [AllenRelation.BEFORE])
        net.constrain("b", "c", [AllenRelation.BEFORE])
        with pytest.raises(TimeError):
            net.constrain("c", "a", [AllenRelation.BEFORE])
            net.propagate()

    def test_is_consistent_helper(self):
        net = AllenNetwork()
        net.constrain("a", "b", [AllenRelation.BEFORE])
        assert net.is_consistent()

    def test_empty_constraint_rejected(self):
        net = AllenNetwork()
        with pytest.raises(TimeError):
            net.constrain("a", "b", [])

    def test_self_relation_is_equal(self):
        net = AllenNetwork()
        net.add_interval("a")
        assert net.relations("a", "a") == frozenset({AllenRelation.EQUAL})

    def test_constraint_tightens_existing(self):
        net = AllenNetwork()
        net.constrain("a", "b", [AllenRelation.BEFORE, AllenRelation.MEETS])
        net.constrain("a", "b", [AllenRelation.MEETS, AllenRelation.OVERLAPS])
        assert net.relations("a", "b") == frozenset({AllenRelation.MEETS})

    def test_contradictory_tightening_raises(self):
        net = AllenNetwork()
        net.constrain("a", "b", [AllenRelation.BEFORE])
        with pytest.raises(TimeError):
            net.constrain("a", "b", [AllenRelation.AFTER])

    def test_during_chain(self):
        net = AllenNetwork()
        net.constrain("step", "phase", [AllenRelation.DURING])
        net.constrain("phase", "project", [AllenRelation.DURING])
        net.propagate()
        assert net.relations("step", "project") == frozenset({AllenRelation.DURING})
