"""Decision histories over the wire: section 4's associative-key story.

The meeting scenario (:mod:`repro.scenario.meeting`) replays section
2.1 *inside* one GKBMS process.  This walkthrough replays the same
story against the **served** decision-history engine: every design
decision goes over the wire as a ``decide`` op, lands in the durable
ledger, and the fig 2-4 retraction is a served ``backtrack`` — the
decision and its transitive consequents fall together, the rest of the
design stands.

1. the conceptual schema is told outright (facts, not decisions);
2. move-down mapping, normalisation and the associative-key choice are
   recorded as ``decide`` ops (kind mapping / refinement / choice);
3. ``history`` shows the ledger and the justification graph;
4. ``Minutes`` arrives — the key assumption breaks — and ``backtrack``
   selectively retracts the key choice;
5. ``replay`` reports whether the retracted choice would still apply;
6. ``versions`` derives the version/configuration structure (fig 3-4)
   from the surviving ledger.

Run:  PYTHONPATH=src python examples/decision_history.py
"""

from repro.server.client import LocalClient
from repro.server.service import GKBMSService


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    service = GKBMSService()
    client = LocalClient(service)

    # -- the conceptual design (told, not decided) ---------------------
    client.tell("TELL TDL_EntityClass IN SimpleClass END")
    client.tell("TELL DBPL_Rel IN SimpleClass END")
    client.tell("TELL Papers IN TDL_EntityClass END")
    client.tell("TELL Invitations IN TDL_EntityClass ISA Papers END")

    banner("fig 2-2: decide the move-down mapping (kind=mapping)")
    d1 = client.decide(
        "DecMoveDown",
        kind="mapping",
        tool="MoveDownMapper",
        inputs={"hierarchy": "Papers"},
        tell=["TELL InvitationRel IN DBPL_Rel END"],
        rationale="leaves only: Invitations is the single concrete class",
    )
    print("recorded", d1["did"], "->", d1["outputs"])

    banner("fig 2-3a: decide the normalisation (kind=refinement)")
    d2 = client.decide(
        "DecNormalize",
        kind="refinement",
        tool="Normalizer",
        inputs={"rel": "InvitationRel"},
        tell=[
            "TELL InvitationRel2 IN DBPL_Rel END",
            "TELL InvReceivRel IN DBPL_Rel END",
        ],
        rationale="receiver is set-valued: split it out",
    )
    print("recorded", d2["did"], "->", d2["outputs"])

    banner("fig 2-3b: decide the associative key (kind=choice)")
    d3 = client.decide(
        "DecKeySubstitution",
        kind="choice",
        tool="KeySubstituter",
        inputs={"rel": "InvitationRel2"},
        tell=["TELL InvitationRel2~assockey IN DBPL_Rel END"],
        rationale="key (date, author): only invitations are papers",
    )
    print("recorded", d3["did"], "->", d3["outputs"])

    banner("the ledger and its justification graph")
    history = client.history()
    for entry in history["decisions"]:
        print(f"  {entry['did']}: {entry['decision_class']:<22}"
              f" kind={entry['kind']:<10} status={entry['status']}")
    for edge in history["edges"]:
        print(f"  {edge['from']} -> {edge['to']}  ({edge['reason']})")

    banner("fig 2-4: Minutes arrives; the key assumption breaks")
    client.tell("TELL Minutes IN TDL_EntityClass ISA Papers END")
    report = client.backtrack(d3["did"])
    print("backtracked", report["did"], "retracted:", report["retracted"],
          f"({report['reapplied']} proposition(s) touched)")

    banner("replay: would the key choice still apply?")
    outcome = client.replay(d3["did"])
    print("applicable:", outcome["applicable"])
    for drift in outcome["drift"]:
        print("  drift:", drift)

    banner("fig 3-4: versions derived from the surviving ledger")
    versions = client.versions()
    for base, variants in sorted(versions["versions"].items()):
        names = ", ".join(
            f"{v['name']}{'' if v['active'] else ' (retracted)'}"
            for v in variants
        )
        print(f"  {base}: {names}")
    for edge in versions["alternatives"]:
        state = "active" if edge["active"] else "retracted"
        print(f"  choice {edge['decision']} ({state}): "
              f"{edge['from']} -> {edge['to']}")

    client.close()


if __name__ == "__main__":
    main()
