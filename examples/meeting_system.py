"""The paper's running example: project-meeting organisation.

Replays section 2.1 end to end and prints the content of each figure:
browsing (fig 2-1), the move-down dependency graph and code frames
(fig 2-2), the state after normalisation and key substitution
(fig 2-3), and the selectively-backtracked state after Minutes arrives
(fig 2-4), closing with the decision-based version lattice (fig 3-4).

Run:  python examples/meeting_system.py
"""

from repro.scenario import MeetingScenario


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    scenario = MeetingScenario().setup()
    gkbms = scenario.gkbms

    banner("fig 2-1: browsing design objects, focusing on the IsA hierarchy")
    print("unmapped TaxisDL objects:", scenario.browse_unmapped())
    print("\nmenu for focus 'Invitations':")
    for dc, roles, tools in scenario.menu_for("Invitations"):
        print(f"  {dc.name:<18} via {tools}")

    banner("fig 2-2: decision for move-down")
    scenario.map_hierarchy("move-down")
    print(gkbms.dependency_graph().to_ascii())
    print()
    print(gkbms.code_frames())

    banner("fig 2-3: normalisation, then key substitution")
    scenario.normalize()
    scenario.substitute_key()
    print(gkbms.dependency_graph().to_ascii())
    print()
    print(gkbms.code_frames())

    banner("fig 2-4: Minutes arrives; backtrack the key decision")
    scenario.add_minutes()
    print("violated assumptions:", gkbms.violated_assumptions())
    reports = scenario.backtrack_keys()
    for report in reports:
        print(report)
    scenario.map_minutes()
    print()
    print(gkbms.code_frames())

    banner("fig 3-4: decision-based configurations and versions")
    versions = gkbms.versions()
    print(versions.render_lattice())
    print("\nversions of InvitationRel2:")
    for node in versions.versions_of("InvitationRel2"):
        state = "ACTIVE" if node.active else "inactive"
        print(f"  {node.name:<22} t{node.tick} by {node.decision} [{state}]")
    print("\nimplementation configuration:", versions.configure("implementation"))

    banner("why was the key decision retracted?")
    print(gkbms.explainer().why_retracted(scenario.records["keys"].did))


if __name__ == "__main__":
    main()
