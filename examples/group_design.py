"""Group decision support: argumentation + reason maintenance.

Multiple developers argue about how to map a hierarchy; the winning
position is executed and the issue resolved against the documented
decision (section 3.3.3 / [HI88]).  A reason maintenance system loaded
from the decision history then shows how retracting one decision
propagates — first flat (Doyle-style), then partitioned by GKBMS
abstraction, the combination the paper proposes for scalability.

Run:  python examples/group_design.py
"""

from repro.core.group import ArgumentationBase
from repro.core.rms import DecisionRMS, PartitionedDecisionRMS
from repro.scenario import MeetingScenario


def main() -> None:
    scenario = MeetingScenario().setup()
    gkbms = scenario.gkbms

    # --- the group argues -------------------------------------------------
    base = ArgumentationBase(gkbms)
    issue = base.raise_issue(
        "jarke", "how should the Papers hierarchy be mapped?", about="Papers"
    )
    move_down = base.take_position(
        issue.iid, "rose", "move-down: one relation per leaf",
        decision_class="DecMoveDown",
    )
    distribute = base.take_position(
        issue.iid, "jeusfeld", "distribute: one relation per class",
        decision_class="DecDistribute",
    )
    base.argue(move_down.pid, "jarke",
               "the hierarchy is shallow, views are cheap", supports=True)
    base.argue(move_down.pid, "rose",
               "instance queries stay single-relation", supports=True)
    base.argue(distribute.pid, "jarke",
               "splitting attributes over relations complicates updates",
               supports=False)

    print("== argumentation thread ==")
    print(base.render(issue.iid))

    # --- the preferred position is executed and resolves the issue --------
    preferred = base.preferred_position(issue.iid)
    print(f"\npreferred position: {preferred.pid} -> {preferred.decision_class}")
    record = scenario.map_hierarchy("move-down")
    base.resolve(preferred.pid, record.did)
    print(f"issue status: {base.issues[issue.iid].status} "
          f"(resolved by {record.did})")

    # --- the rest of the history ------------------------------------------
    scenario.normalize()
    scenario.substitute_key()

    # --- reason maintenance over the decision history ---------------------
    print("\n== flat JTMS over the decision history ==")
    flat = DecisionRMS()
    flat.load(gkbms.decisions.records.values())
    print(f"believed design objects: {len(flat.believed_objects())}")
    fell_out = flat.retract_decision(scenario.records["normalize"].did)
    print(f"retracting the normalisation takes out: {sorted(fell_out)}")

    print("\n== partitioned RMS (GKBMS abstraction) ==")
    partitioned = PartitionedDecisionRMS()
    partitioned.load(gkbms.decisions.records.values())
    print(f"partition sizes: {partitioned.partition_sizes()}")
    fell_out = partitioned.retract_decision(scenario.records["normalize"].did)
    print(f"same retraction, same consequences: {sorted(fell_out)}")


if __name__ == "__main__":
    main()
