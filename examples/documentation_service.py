"""The GKBMS as a long-lived documentation service.

Shows the ex-post role of the GKBMS across sessions: run the scenario,
save the whole state to disk, reload it in a "new session", query the
restored history with query classes, and continue working (discharging
an obligation, mapping a transaction) — ids, clocks and versions all
continue seamlessly.

Run:  python examples/documentation_service.py
"""

import os
import tempfile

from repro import QueryCatalog
from repro.core.persistence import load_from_file, save_to_file
from repro.scenario import MeetingScenario


def main() -> None:
    # --- session 1: the scenario happens, then everyone goes home -------
    scenario = MeetingScenario().run_all()
    path = os.path.join(tempfile.mkdtemp(), "meeting-gkbms.json")
    save_to_file(scenario.gkbms, path)
    print(f"session 1: documented {len(scenario.gkbms.decisions.order)} "
          f"decisions, saved to {path} "
          f"({os.path.getsize(path)} bytes)")

    # --- session 2: a different developer picks the project up ----------
    gkbms = load_from_file(path)
    print(f"\nsession 2: restored at clock t{gkbms.clock}")

    # query classes over the restored documentation
    queries = QueryCatalog(gkbms.processor)
    queries.define(
        "UnjustifiedImplementation", "x", "DBPL_Object",
        "not Known(x.justification)",
    )
    queries.define(
        "NormalizedRelations", "r", "NormalizedDBPL_Rel", "Known(r.implements)",
    )
    print("normalized relations:", queries.extent("NormalizedRelations"))
    print("implementation objects lacking a justifying decision:",
          queries.extent("UnjustifiedImplementation"))

    # the restored history explains itself
    print("\nwhy does InvitationRel2 exist?")
    print(gkbms.explainer().explain_object("InvitationRel2"))

    # work continues: discharge the open obligation, map a transaction
    for obligation in gkbms.decisions.open_obligations():
        gkbms.decisions.sign(obligation.oid, "second developer")
        print(f"\nsigned obligation {obligation.name} ({obligation.oid})")
    record = gkbms.execute(
        "DecMapTransaction", {"transaction": "SendInvitation"},
        tool="TransactionMapper",
    )
    print(f"new decision in session 2: {record.did} -> {record.outputs}")

    config = gkbms.versions().configure("implementation")
    print(f"\nfinal configuration: {config}")
    assert config.complete and config.consistent


if __name__ == "__main__":
    main()
