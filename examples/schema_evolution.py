"""Schema evolution: comparing mapping strategies and replaying decisions.

Demonstrates three GKBMS capabilities beyond the basic scenario:

1. *multicriteria choice* between the two mapping strategies the paper
   names (move-down vs distribute), with dominance analysis;
2. executing the chosen strategy and inspecting both implementations
   side by side;
3. *revision support*: the design gains an attribute, the mapping is
   backtracked and replayed, and the regenerated implementation picks
   up the change automatically.

Run:  python examples/schema_evolution.py
"""

from repro.core import GKBMS
from repro.core.group import Alternative, ChoiceProblem, Criterion

LIBRARY_DESIGN = """
entity class Persons
end

entity class Items with
  acquired : Persons
  shelf : Persons
end

entity class Books isa Items with
  author : Persons
end

entity class Journals isa Items with
  volume : Persons
end
"""


def choose_strategy() -> str:
    """Multicriteria choice between the two mapping strategies."""
    problem = ChoiceProblem([
        Criterion("query_speed", weight=2.0),
        Criterion("update_simplicity", weight=1.0),
        Criterion("storage", weight=0.5),
    ])
    problem.add_alternative(Alternative(
        "move-down",
        {"query_speed": 5, "update_simplicity": 2, "storage": 3},
        decision_class="DecMoveDown",
    ))
    problem.add_alternative(Alternative(
        "distribute",
        {"query_speed": 2, "update_simplicity": 4, "storage": 4},
        decision_class="DecDistribute",
    ))
    print("== strategy choice ==")
    print(problem.report())
    best = problem.best()
    print(f"selected: {best.name} -> {best.decision_class}\n")
    return best.decision_class


def main() -> None:
    gkbms = GKBMS()
    gkbms.register_standard_library()
    gkbms.import_design(LIBRARY_DESIGN)

    decision_class = choose_strategy()
    tool = {
        "DecMoveDown": "MoveDownMapper",
        "DecDistribute": "DistributeMapper",
    }[decision_class]
    record = gkbms.execute(decision_class, {"hierarchy": "Items"}, tool=tool,
                           rationale="chosen by weighted scoring")
    print("== implementation after initial mapping ==")
    print(gkbms.code_frames())

    # --- the design evolves: Books gain an isbn ----------------------------
    print("\n== design change: Books gain an isbn attribute ==")
    from repro.languages.taxisdl.ast import TDLAttribute

    books = gkbms.design.get("Books")
    books.attributes.append(TDLAttribute("isbn", "Persons"))

    # revision support: backtrack the mapping, then replay it
    report = gkbms.backtracker.retract(record.did)
    print(f"backtracked: {report.retracted_decisions}")
    outcome = gkbms.replayer.replay(record)
    print(f"replay outcome: {outcome.status} -> {outcome.new_decision}")

    print("\n== regenerated implementation ==")
    print(gkbms.code_frames())
    fields = gkbms.module.relations["BookRel"].field_names()
    assert "isbn" in fields, "replayed mapping must pick up the new attribute"
    print(f"\nBookRel now carries: {fields}")

    # run it
    database = gkbms.build_database()
    with database.transaction():
        database.relation("BookRel").insert({
            "paperkey": database.fresh_surrogate(),
            "acquired": "a", "shelf": "s3", "author": "knuth", "isbn": "i1",
        })
    print("\nlive rows:", database.rows("BookRel"))


if __name__ == "__main__":
    main()
