"""Quickstart: a minimal tour of the GKBMS public API.

Builds a tiny design, registers the standard tool/decision library,
executes one mapping decision, and shows the three things the GKBMS is
for: tool selection, documentation, and explanation.

Run:  python examples/quickstart.py
"""

from repro.core import GKBMS


def main() -> None:
    # 1. a GKBMS with the prototype's kernel knowledge
    gkbms = GKBMS()
    gkbms.register_standard_library()

    # 2. a small TaxisDL design (conceptual level)
    gkbms.import_design(
        """
        entity class Persons
        end

        entity class Documents with
          title : Persons
          owner : Persons
        end

        entity class Reports isa Documents with
          reviewer : Persons
        end
        """
    )

    # 3. ex ante: which decisions/tools apply to the focused object?
    print("== tool selection for focus 'Documents' ==")
    for dc, roles, tools in gkbms.decisions.applicable_decisions("Documents"):
        print(f"  {dc.name:<18} roles={roles} tools={tools}")

    # 4. execute the most specific mapping decision with its tool
    record = gkbms.execute(
        "DecMoveDown", {"hierarchy": "Documents"}, tool="MoveDownMapper",
        rationale="leaves only: Reports is the single concrete class",
    )
    print("\n== executed decision ==")
    print(f"  {record.did}: {record.decision_class} -> {record.outputs}")

    # 5. the generated DBPL code frames
    print("\n== code frames ==")
    print(gkbms.code_frames())

    # 6. ex post: documentation as a dependency graph + explanation
    print("\n== dependency graph ==")
    print(gkbms.dependency_graph().to_ascii())
    print("\n== explanation ==")
    print(gkbms.explainer().explain_object(record.outputs["relations"][0]))

    # 7. and the implementation actually runs
    database = gkbms.build_database()
    with database.transaction():
        database.relation("ReportRel").insert(
            {"paperkey": database.fresh_surrogate(), "title": "t1",
             "owner": "ada", "reviewer": "bob"}
        )
    print("\n== live query over the generated module ==")
    print(database.rows("ConsDocuments"))


if __name__ == "__main__":
    main()
