"""The CML assertion language (S4).

Section 3.1: "Queries are built using (open or closed) first-order logic
expressions over CML objects.  Since the same assertion language is used
in rules [...] the inference engines are also capable of evaluating
rules" and "Constraints [...] point to objects representing first-order
logic expressions."

The language implemented here:

.. code-block:: text

    forall i/Invitation (In(i.sender, Person))
    exists d/DesignDecision (A(d, from, i) and d.by = MappingTool)
    forall r/DBPL_Rel (Known(r.key) ==> not Isa(r, View))

- quantifiers range over class extents;
- ``t.label`` traverses attribute links (explicit *and* deduced) and
  evaluates to a value set, which is how set-valued attributes — the
  trigger of the paper's normalisation decision — are handled;
- ``In``/``Isa``/``A``/``Known`` are the membership, specialization,
  link and definedness atoms; comparisons use existential semantics
  over value sets, ``In`` uses universal semantics (typing reads
  naturally), ``Known`` tests non-emptiness.
"""

from repro.assertions.ast import (
    Atom,
    AttributeAtom,
    BinaryOp,
    Comparison,
    Expression,
    InAtom,
    IsaAtom,
    KnownAtom,
    Not,
    PathTerm,
    Quantifier,
    SimpleTerm,
    Term,
)
from repro.assertions.parser import parse_assertion
from repro.assertions.evaluator import Bindings, Evaluator

__all__ = [
    "Atom",
    "AttributeAtom",
    "BinaryOp",
    "Comparison",
    "Expression",
    "InAtom",
    "IsaAtom",
    "KnownAtom",
    "Not",
    "PathTerm",
    "Quantifier",
    "SimpleTerm",
    "Term",
    "parse_assertion",
    "Bindings",
    "Evaluator",
]
