"""Evaluator for assertion expressions against a proposition processor.

Semantics:

- a :class:`~repro.assertions.ast.SimpleTerm` identifier evaluates to
  the bound value when the identifier is a bound variable, else to the
  constant name itself (so class names and individuals can be written
  bare);
- a :class:`~repro.assertions.ast.PathTerm` ``t.label`` evaluates to the
  *set* of destinations of attribute links labelled ``label`` leaving
  any value of ``t`` — including deduced links, so rule conclusions
  participate in constraint checking;
- comparisons hold when *some* pair of values satisfies them
  (existential reading, the useful one for set-valued attributes);
- ``In(t, C)`` holds when *every* value of ``t`` is an instance of C
  (universal reading: typing constraints such as
  ``In(i.receiver, Person)`` mean all receivers);
- quantifiers range over class extents (``instances_of``).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable

from repro.errors import EvaluationError
from repro.assertions.ast import (
    AttributeAtom,
    BinaryOp,
    Comparison,
    Expression,
    InAtom,
    IsaAtom,
    KnownAtom,
    Not,
    PathTerm,
    Quantifier,
    SimpleTerm,
    Term,
)
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Pattern

Bindings = Dict[str, Any]


def _comparable(left: Any, right: Any) -> tuple:
    """Coerce a pair for ordering: numbers compare numerically when both
    parse, otherwise both compare as strings."""
    def as_number(value: Any):
        if isinstance(value, (int, float)):
            return value
        try:
            text = str(value)
            return float(text) if "." in text else int(text)
        except (TypeError, ValueError):
            return None

    lnum, rnum = as_number(left), as_number(right)
    if lnum is not None and rnum is not None:
        return (lnum, rnum)
    return (str(left), str(right))


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Evaluator:
    """Evaluates assertion expressions over a proposition processor."""

    def __init__(self, processor: PropositionProcessor,
                 include_deduced: bool = True) -> None:
        self.processor = processor
        self.include_deduced = include_deduced

    # -- terms -------------------------------------------------------------

    def eval_term(self, term: Term, env: Bindings) -> FrozenSet[Any]:
        """The value set of a term under an environment."""
        if isinstance(term, SimpleTerm):
            if term.is_name and term.value in env:
                return frozenset({env[term.value]})
            return frozenset({term.value})
        if isinstance(term, PathTerm):
            values = set()
            for base in self.eval_term(term.base, env):
                if not isinstance(base, str):
                    continue  # numbers have no attributes
                pattern = Pattern(source=base, label=term.label)
                for prop in self.processor.retrieve_proposition(
                    pattern, include_deduced=self.include_deduced
                ):
                    if prop.is_link and not prop.is_instanceof and not prop.is_isa:
                        values.add(prop.destination)
            return frozenset(values)
        raise EvaluationError(f"unknown term type {term!r}")

    # -- expressions ---------------------------------------------------------

    def evaluate(self, expr: Expression, env: Bindings | None = None) -> bool:
        """Truth of an expression under an environment."""
        return self._eval(expr, dict(env or {}))

    def _eval(self, expr: Expression, env: Bindings) -> bool:
        if isinstance(expr, Quantifier):
            return self._eval_quantifier(expr, env)
        if isinstance(expr, BinaryOp):
            if expr.op == "and":
                return self._eval(expr.left, env) and self._eval(expr.right, env)
            if expr.op == "or":
                return self._eval(expr.left, env) or self._eval(expr.right, env)
            if expr.op == "==>":
                return (not self._eval(expr.left, env)) or self._eval(expr.right, env)
            raise EvaluationError(f"unknown operator {expr.op!r}")
        if isinstance(expr, Not):
            return not self._eval(expr.operand, env)
        if isinstance(expr, InAtom):
            values = self.eval_term(expr.term, env)
            return all(
                isinstance(v, str) and self.processor.is_instance_of(v, expr.class_name)
                for v in values
            )
        if isinstance(expr, IsaAtom):
            subs = self.eval_term(expr.sub, env)
            sups = self.eval_term(expr.sup, env)
            for sub in subs:
                if not isinstance(sub, str):
                    continue
                ancestors = self.processor.generalizations(sub)
                if any(sup in ancestors for sup in sups):
                    return True
            return False
        if isinstance(expr, AttributeAtom):
            sources = self.eval_term(expr.source, env)
            destinations = self.eval_term(expr.destination, env)
            for source in sources:
                if not isinstance(source, str):
                    continue
                pattern = Pattern(source=source, label=expr.label)
                for prop in self.processor.retrieve_proposition(
                    pattern, include_deduced=self.include_deduced
                ):
                    if prop.is_instanceof or prop.is_isa or not prop.is_link:
                        continue
                    if prop.destination in destinations:
                        return True
            return False
        if isinstance(expr, KnownAtom):
            return bool(self.eval_term(expr.term, env))
        if isinstance(expr, Comparison):
            op = _OPS[expr.op]
            lefts = self.eval_term(expr.left, env)
            rights = self.eval_term(expr.right, env)
            for left in lefts:
                for right in rights:
                    a, b = _comparable(left, right)
                    try:
                        if op(a, b):
                            return True
                    except TypeError:
                        continue
            return False
        raise EvaluationError(f"unknown expression type {expr!r}")

    def _eval_quantifier(self, expr: Quantifier, env: Bindings) -> bool:
        def recurse(bindings: tuple, env: Bindings) -> bool:
            if not bindings:
                return self._eval(expr.body, env)
            (var, cls), rest = bindings[0], bindings[1:]
            extent = sorted(self.processor.instances_of(cls))
            if expr.kind == "forall":
                return all(
                    recurse(rest, {**env, var: value}) for value in extent
                )
            return any(recurse(rest, {**env, var: value}) for value in extent)

        return recurse(expr.bindings, env)

    # -- explanation -------------------------------------------------------

    def explain(self, expr: Expression, env: Bindings | None = None,
                _depth: int = 0) -> str:
        """An evaluation trace: each sub-expression with its truth value,
        and for quantifiers the witnesses/counterexamples.

        This is the assertion half of the paper's design explanation
        facility (§3.3.3): constraints point at first-order expressions,
        so explaining a violation means showing which sub-formula failed
        for which binding.
        """
        env = dict(env or {})
        indent = "  " * _depth
        value = self._eval(expr, env)
        mark = "✓" if value else "✗"
        lines = [f"{indent}{mark} {expr!r}"]
        if isinstance(expr, Quantifier):
            # show the decisive bindings: counterexamples for forall,
            # witnesses for exists (at most three of each)
            shown = 0
            def bindings_stream(bindings, env):
                if not bindings:
                    yield dict(env)
                    return
                (var, cls), rest = bindings[0], bindings[1:]
                for candidate in sorted(self.processor.instances_of(cls)):
                    yield from bindings_stream(rest, {**env, var: candidate})
            for candidate_env in bindings_stream(expr.bindings, env):
                body_value = self._eval(expr.body, candidate_env)
                decisive = (
                    not body_value if expr.kind == "forall" else body_value
                )
                if decisive and shown < 3:
                    shown += 1
                    kind = ("counterexample" if expr.kind == "forall"
                            else "witness")
                    bound = {k: v for k, v in candidate_env.items()
                             if k not in env or env[k] != v}
                    lines.append(f"{indent}  {kind}: {bound}")
                    lines.append(
                        self.explain(expr.body, candidate_env, _depth + 2)
                    )
        elif isinstance(expr, BinaryOp):
            lines.append(self.explain(expr.left, env, _depth + 1))
            lines.append(self.explain(expr.right, env, _depth + 1))
        elif isinstance(expr, Not):
            lines.append(self.explain(expr.operand, env, _depth + 1))
        elif isinstance(expr, (InAtom, KnownAtom)):
            values = sorted(map(str, self.eval_term(expr.term, env)))
            lines.append(f"{indent}  term values: {values}")
        elif isinstance(expr, Comparison):
            lefts = sorted(map(str, self.eval_term(expr.left, env)))
            rights = sorted(map(str, self.eval_term(expr.right, env)))
            lines.append(f"{indent}  left: {lefts}  right: {rights}")
        return "\n".join(lines)

    # -- answers ---------------------------------------------------------------

    def satisfying(self, expr: Quantifier, env: Bindings | None = None) -> Iterable[Bindings]:
        """For an ``exists`` expression, yield the witnessing bindings."""
        if not isinstance(expr, Quantifier) or expr.kind != "exists":
            raise EvaluationError("satisfying() requires an exists-quantified expression")
        env = dict(env or {})

        def recurse(bindings: tuple, env: Bindings):
            if not bindings:
                if self._eval(expr.body, env):
                    yield dict(env)
                return
            (var, cls), rest = bindings[0], bindings[1:]
            for value in sorted(self.processor.instances_of(cls)):
                yield from recurse(rest, {**env, var: value})

        yield from recurse(expr.bindings, env)
