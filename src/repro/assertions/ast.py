"""Abstract syntax of the assertion language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Expression:
    """Base class for all assertion expressions."""

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        raise NotImplementedError


class Term:
    """Base class for terms (things that evaluate to value sets)."""

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        raise NotImplementedError


@dataclass(frozen=True)
class SimpleTerm(Term):
    """An identifier (a variable if bound, else a constant name), a
    quoted string, or a number."""

    value: object
    is_name: bool = True  # False for quoted strings / numbers

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        return frozenset({self.value}) if self.is_name else frozenset()

    def __repr__(self) -> str:
        return str(self.value) if self.is_name else repr(self.value)


@dataclass(frozen=True)
class PathTerm(Term):
    """Attribute traversal ``base.label`` — evaluates to the set of
    destinations of matching attribute links (explicit and deduced)."""

    base: Term
    label: str

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        return self.base.free_variables()

    def __repr__(self) -> str:
        return f"{self.base!r}.{self.label}"


class Atom(Expression):
    """Base class for atomic formulas."""


@dataclass(frozen=True)
class InAtom(Atom):
    """``In(t, C)`` — every value of ``t`` is an instance of class C."""

    term: Term
    class_name: str

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        return self.term.free_variables()

    def __repr__(self) -> str:
        return f"In({self.term!r}, {self.class_name})"


@dataclass(frozen=True)
class IsaAtom(Atom):
    """``Isa(c, d)`` — some value of c specialises some value of d."""

    sub: Term
    sup: Term

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        return self.sub.free_variables() | self.sup.free_variables()

    def __repr__(self) -> str:
        return f"Isa({self.sub!r}, {self.sup!r})"


@dataclass(frozen=True)
class AttributeAtom(Atom):
    """``A(x, l, y)`` — an attribute link labelled l connects values of
    x and y."""

    source: Term
    label: str
    destination: Term

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        return self.source.free_variables() | self.destination.free_variables()

    def __repr__(self) -> str:
        return f"A({self.source!r}, {self.label}, {self.destination!r})"


@dataclass(frozen=True)
class KnownAtom(Atom):
    """``Known(t)`` — the term evaluates to a non-empty value set."""

    term: Term

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        return self.term.free_variables()

    def __repr__(self) -> str:
        return f"Known({self.term!r})"


@dataclass(frozen=True)
class Comparison(Atom):
    """``t1 op t2`` with existential semantics over value sets."""

    op: str  # '=', '!=', '<', '<=', '>', '>='
    left: Term
    right: Term

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        return self.left.free_variables() | self.right.free_variables()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation of an expression."""
    operand: Expression

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        return self.operand.free_variables()

    def __repr__(self) -> str:
        return f"not {self.operand!r}"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """``and`` / ``or`` / ``==>`` between two expressions."""

    op: str
    left: Expression
    right: Expression

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        return self.left.free_variables() | self.right.free_variables()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Quantifier(Expression):
    """``forall``/``exists`` over bindings ``var/Class``."""

    kind: str  # 'forall' | 'exists'
    bindings: Tuple[Tuple[str, str], ...]  # (variable, class) pairs
    body: Expression

    def free_variables(self) -> frozenset:
        """The free (unbound) identifiers of this node."""
        bound = frozenset(var for var, _cls in self.bindings)
        return self.body.free_variables() - bound

    def __repr__(self) -> str:
        binds = ", ".join(f"{v}/{c}" for v, c in self.bindings)
        return f"{self.kind} {binds} ({self.body!r})"
