"""Recursive-descent parser for the assertion language.

Grammar::

    expr        := quantified | implication
    quantified  := ("forall" | "exists") binding ("," binding)* "(" expr ")"
    binding     := IDENT "/" IDENT
    implication := disjunction ("==>" disjunction)?
    disjunction := conjunction ("or" conjunction)*
    conjunction := negation ("and" negation)*
    negation    := "not" negation | primary
    primary     := "(" expr ")" | atom
    atom        := "In" "(" term "," IDENT ")"
                 | "Isa" "(" term "," term ")"
                 | "A" "(" term "," IDENT "," term ")"
                 | "Known" "(" term ")"
                 | term OP term
    term        := (IDENT | STRING | NUMBER) ("." IDENT)*
    OP          := "=" | "!=" | "<" | "<=" | ">" | ">="
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import AssertionSyntaxError
from repro.assertions.ast import (
    AttributeAtom,
    BinaryOp,
    Comparison,
    Expression,
    InAtom,
    IsaAtom,
    KnownAtom,
    Not,
    PathTerm,
    Quantifier,
    SimpleTerm,
    Term,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<implies>==>)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),./])
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"forall", "exists", "and", "or", "not", "true", "false"}
_ATOM_HEADS = {"In", "Isa", "A", "Known"}


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise AssertionSyntaxError(
                f"unexpected character {text[pos]!r}", position=pos
            )
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group(), pos))
        pos = match.end()
    tokens.append(("eof", "", pos))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self, ahead: int = 0) -> Tuple[str, str, int]:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Tuple[str, str, int]:
        token = self._tokens[self._index]
        if token[0] != "eof":
            self._index += 1
        return token

    def _expect(self, value: str) -> None:
        kind, text, pos = self._advance()
        if text != value:
            raise AssertionSyntaxError(
                f"expected {value!r}, got {text or 'end of input'!r}", position=pos
            )

    def parse(self) -> Expression:
        """Parse a complete expression; reject trailing input."""
        expr = self.expression()
        kind, text, pos = self._peek()
        if kind != "eof":
            raise AssertionSyntaxError(f"trailing input {text!r}", position=pos)
        return expr

    # -- grammar ---------------------------------------------------------

    def expression(self) -> Expression:
        """expr := quantified | implication."""
        kind, text, _pos = self._peek()
        if kind == "ident" and text in ("forall", "exists"):
            return self.quantified()
        return self.implication()

    def quantified(self) -> Expression:
        """forall/exists with bindings and a body."""
        _kind, quantifier, _pos = self._advance()
        bindings = [self.binding()]
        while self._peek()[1] == ",":
            self._advance()
            bindings.append(self.binding())
        self._expect("(")
        body = self.expression()
        self._expect(")")
        return Quantifier(quantifier, tuple(bindings), body)

    def binding(self) -> Tuple[str, str]:
        """One ``var/Class`` pair."""
        kind, var, pos = self._advance()
        if kind != "ident" or var in _KEYWORDS:
            raise AssertionSyntaxError(f"expected a variable, got {var!r}", position=pos)
        self._expect("/")
        kind, cls, pos = self._advance()
        if kind != "ident":
            raise AssertionSyntaxError(f"expected a class name, got {cls!r}", position=pos)
        return (var, cls)

    def implication(self) -> Expression:
        """Right side optional: ``a ==> b``."""
        left = self.disjunction()
        if self._peek()[0] == "implies":
            self._advance()
            right = self.disjunction()
            return BinaryOp("==>", left, right)
        return left

    def disjunction(self) -> Expression:
        """Left-associative ``or`` chain."""
        left = self.conjunction()
        while self._peek()[1] == "or":
            self._advance()
            left = BinaryOp("or", left, self.conjunction())
        return left

    def conjunction(self) -> Expression:
        """Left-associative ``and`` chain."""
        left = self.negation()
        while self._peek()[1] == "and":
            self._advance()
            left = BinaryOp("and", left, self.negation())
        return left

    def negation(self) -> Expression:
        """``not`` prefix chain."""
        if self._peek()[1] == "not":
            self._advance()
            return Not(self.negation())
        return self.primary()

    def primary(self) -> Expression:
        """Parenthesised expression, builtin atom, or comparison."""
        kind, text, _pos = self._peek()
        if text == "(":
            # Could be a parenthesised expression OR a term comparison
            # starting with '('.  Terms never start with '(', so recurse.
            self._advance()
            expr = self.expression()
            self._expect(")")
            return expr
        if kind == "ident" and text in _ATOM_HEADS and self._peek(1)[1] == "(":
            return self.builtin_atom()
        return self.comparison()

    def builtin_atom(self) -> Expression:
        """In / Isa / A / Known."""
        _kind, head, _pos = self._advance()
        self._expect("(")
        if head == "In":
            term = self.term()
            self._expect(",")
            kind, cls, pos = self._advance()
            if kind != "ident":
                raise AssertionSyntaxError(
                    f"expected class name in In(), got {cls!r}", position=pos
                )
            self._expect(")")
            return InAtom(term, cls)
        if head == "Isa":
            sub = self.term()
            self._expect(",")
            sup = self.term()
            self._expect(")")
            return IsaAtom(sub, sup)
        if head == "A":
            source = self.term()
            self._expect(",")
            kind, label, pos = self._advance()
            if kind not in ("ident", "string"):
                raise AssertionSyntaxError(
                    f"expected label in A(), got {label!r}", position=pos
                )
            if kind == "string":
                label = label[1:-1]
            self._expect(",")
            destination = self.term()
            self._expect(")")
            return AttributeAtom(source, label, destination)
        # Known
        term = self.term()
        self._expect(")")
        return KnownAtom(term)

    def comparison(self) -> Expression:
        """``term OP term``."""
        left = self.term()
        kind, op, pos = self._peek()
        if kind != "op":
            raise AssertionSyntaxError(
                f"expected a comparison operator after term, got {op!r}",
                position=pos,
            )
        self._advance()
        right = self.term()
        return Comparison(op, left, right)

    def term(self) -> Term:
        """Identifier, literal, or dotted attribute path."""
        kind, text, pos = self._advance()
        if kind == "string":
            base: Term = SimpleTerm(text[1:-1], is_name=False)
        elif kind == "number":
            value = float(text) if "." in text else int(text)
            base = SimpleTerm(value, is_name=False)
        elif kind == "ident" and text not in _KEYWORDS:
            base = SimpleTerm(text, is_name=True)
        else:
            raise AssertionSyntaxError(f"expected a term, got {text!r}", position=pos)
        while self._peek()[1] == ".":
            self._advance()
            kind, label, pos = self._advance()
            if kind != "ident":
                raise AssertionSyntaxError(
                    f"expected attribute label after '.', got {label!r}", position=pos
                )
            base = PathTerm(base, label)
        return base


def parse_assertion(text: str) -> Expression:
    """Parse an assertion-language expression into its AST."""
    return _Parser(text).parse()
