"""The object transformer: frames to propositions and back (fig 3-2).

Telling the frame ::

    TELL Invitation IN TDL_EntityClass ISA Paper WITH
      attribute sender : Person
    END

creates exactly the proposition network of fig 3-2: the individual
``Invitation``, an ``instanceof`` link to ``TDL_EntityClass``, an
``isa`` link to ``Paper``, and an attribute link labelled ``sender`` to
``Person`` that is itself classified under the matching attribute class
(``attribute`` selects the predefined omega ``Attribute``; a category
like ``FROM`` selects the attribute metaclass instance of that label on
one of the object's classes — the instantiation principle at work).
"""

from __future__ import annotations

from typing import List

from repro.errors import PropositionError
from repro.objects.frame import AttributeDecl, ObjectFrame
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Proposition
from repro.timecalc.interval import ALWAYS, Interval


class ObjectTransformer:
    """Bidirectional frame <-> proposition-set transformation."""

    def __init__(self, processor: PropositionProcessor) -> None:
        self.processor = processor

    # ------------------------------------------------------------------
    # frame -> propositions
    # ------------------------------------------------------------------

    def _find_attribute_class(self, owner: str, decl: AttributeDecl) -> str:
        """The attribute class ``decl`` instantiates.

        ``attribute`` (the default category) maps to the omega
        ``Attribute`` class unless one of the owner's classes declares an
        attribute class with the same *label*; any other category must
        name the label of an attribute class on one of the owner's
        classes (or be the pid of an attribute class)."""
        candidates: List[Proposition] = []
        for cls in sorted(self.processor.classes_of(owner)):
            candidates.extend(self.processor.attribute_classes(cls))
        if decl.category.lower() == "attribute":
            for prop in candidates:
                if prop.label == decl.label:
                    return prop.pid
            return "Attribute"
        for prop in candidates:
            if prop.label == decl.category:
                return prop.pid
        if self.processor.exists(decl.category):
            return decl.category
        raise PropositionError(
            f"no attribute class for category {decl.category!r} on {owner!r}"
        )

    def tell(self, frame: ObjectFrame, time: Interval = ALWAYS) -> List[Proposition]:
        """Create the proposition set for ``frame``; returns it."""
        created: List[Proposition] = []
        proc = self.processor
        if not proc.exists(frame.name):
            created.append(proc.tell_individual(frame.name, time=time))
        for cls in frame.in_classes:
            created.append(proc.tell_instanceof(frame.name, cls, time=time))
        for sup in frame.isa:
            created.append(proc.tell_isa(frame.name, sup, time=time))
        for decl in frame.attributes:
            attr_class = self._find_attribute_class(frame.name, decl)
            link_pid = f"{frame.name}.{decl.label}"
            if proc.exists(link_pid):
                link_pid = proc.fresh_pid()
            created.append(
                proc.tell_link(
                    frame.name, decl.label, decl.target,
                    pid=link_pid, time=time, of_class=attr_class,
                )
            )
        return created

    # ------------------------------------------------------------------
    # propositions -> frame
    # ------------------------------------------------------------------

    def _category_of(self, link_pid: str) -> str:
        """Best human-readable category for an attribute link: the label
        of the most specific user attribute class it instantiates."""
        classes = self.processor.classification_of_link(link_pid)
        classes.discard("Attribute")
        classes.discard("Proposition")
        for pid in sorted(classes):
            try:
                prop = self.processor.get(pid)
            except Exception:
                continue
            if prop.is_link:
                return prop.label
        return "attribute"

    def ask(self, name: str) -> ObjectFrame:
        """Reconstruct the frame for object ``name`` from its
        propositions (the inverse of :meth:`tell`)."""
        proc = self.processor
        if not proc.exists(name):
            raise PropositionError(f"unknown object {name!r}")
        frame = ObjectFrame(name=name)
        from repro.propositions.proposition import Pattern

        for prop in sorted(
            proc.store.retrieve(Pattern(source=name)), key=lambda p: p.pid
        ):
            if prop.pid == name:
                continue
            if prop.is_instanceof:
                frame.in_classes.append(prop.destination)
            elif prop.is_isa:
                frame.isa.append(prop.destination)
            else:
                category = self._category_of(prop.pid)
                frame.attributes.append(
                    AttributeDecl(category, prop.label, prop.destination)
                )
        frame.in_classes.sort()
        frame.isa.sort()
        frame.attributes.sort(key=lambda d: (d.label, d.target))
        return frame

    def roundtrip_equal(self, frame: ObjectFrame) -> bool:
        """Does telling then asking reproduce the frame (up to order)?"""
        told = self.ask(frame.name)
        return (
            sorted(told.in_classes) == sorted(frame.in_classes)
            and sorted(told.isa) == sorted(frame.isa)
            and sorted((d.label, d.target) for d in told.attributes)
            == sorted((d.label, d.target) for d in frame.attributes)
        )
