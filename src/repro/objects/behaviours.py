"""Behaviour propositions (section 3.1).

"Behaviours (behaviour propositions) are much like methods of classes
in SMALLTALK [GR83].  They associate operations such as create or
display to the instances of a class by appropriate behaviour links."

A behaviour is a named Python callable attached to a class; the
attachment is documented in the knowledge base as a ``behaviour`` link
from the class to a ``BehaviourSpec`` individual (instantiating the
predefined ``BehaviourAttribute`` link class).  Dispatch walks the
object's classes most-specific-first, so a specialised class can
override an inherited behaviour — method lookup, CML style.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import PropositionError
from repro.propositions.processor import PropositionProcessor

#: behaviour(processor, object_name, *args) -> Any
BehaviourFn = Callable[..., Any]


class BehaviourBase:
    """Registry and dispatcher for behaviour propositions."""

    def __init__(self, processor: PropositionProcessor) -> None:
        self.processor = processor
        self._behaviours: Dict[Tuple[str, str], BehaviourFn] = {}
        self._install_defaults()

    # ------------------------------------------------------------------

    def define(self, cls: str, name: str, fn: BehaviourFn,
               document: bool = True) -> None:
        """Attach behaviour ``name`` to class ``cls``."""
        if not self.processor.is_class(cls):
            raise PropositionError(f"{cls!r} is not a class")
        self._behaviours[(cls, name)] = fn
        if document:
            spec = f"Behaviour_{cls}_{name}"
            if not self.processor.exists(spec):
                self.processor.tell_individual(spec, in_class="BehaviourSpec")
            self.processor.tell_link(cls, "behaviour", spec,
                                     of_class="BehaviourAttribute")

    def _install_defaults(self) -> None:
        """Predefined operations on every proposition: display, classes."""

        def display(proc: PropositionProcessor, name: str) -> str:
            from repro.objects.transformer import ObjectTransformer

            return ObjectTransformer(proc).ask(name).render()

        def classes(proc: PropositionProcessor, name: str) -> List[str]:
            return sorted(proc.classes_of(name))

        self._behaviours[("Proposition", "display")] = display
        self._behaviours[("Proposition", "classes")] = classes

    # ------------------------------------------------------------------

    def _resolution_order(self, name: str) -> List[str]:
        """The object's classes, most specific first (more
        generalizations above = less specific, so sort descending by
        own generalization count)."""
        classes = list(self.processor.classes_of(name))
        return sorted(
            classes,
            key=lambda cls: (
                -len(self.processor.generalizations(cls, strict=True)),
                cls,
            ),
        )

    def lookup(self, name: str, behaviour: str) -> Optional[BehaviourFn]:
        """Resolve a behaviour along the object's classes."""
        for cls in self._resolution_order(name):
            fn = self._behaviours.get((cls, behaviour))
            if fn is not None:
                return fn
        return self._behaviours.get(("Proposition", behaviour))

    def invoke(self, name: str, behaviour: str, *args: Any) -> Any:
        """Run a behaviour on an object."""
        if not self.processor.exists(name):
            raise PropositionError(f"unknown object {name!r}")
        fn = self.lookup(name, behaviour)
        if fn is None:
            raise PropositionError(
                f"no behaviour {behaviour!r} applicable to {name!r}"
            )
        return fn(self.processor, name, *args)

    def behaviours_of(self, name: str) -> List[str]:
        """The behaviour names applicable to an object."""
        classes = set(self._resolution_order(name)) | {"Proposition"}
        return sorted({
            behaviour
            for (cls, behaviour) in self._behaviours
            if cls in classes
        })
