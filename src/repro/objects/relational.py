"""The deductive relational view of the knowledge base.

Section 3.1: "the object processor understands the knowledge base as a
deductive relational database; in this way, large sets of similarly
structured objects can be managed more efficiently."  And 3.3.1
describes the *relational display* showing "the properties of objects in
tabular form".

:class:`RelationalView` exposes one relation per class: rows are the
instances, columns the attribute labels declared on the class (or
inherited), cells the attribute-value sets.  Deduced attribute links
appear in the cells when a rule engine hook is installed, which is what
makes the view *deductive*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.errors import PropositionError
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Pattern

Row = Tuple  # (instance, value-set per column...)


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a class relation: name + attribute columns."""

    class_name: str
    columns: Tuple[str, ...]

    @property
    def heading(self) -> Tuple[str, ...]:
        """object column + attribute columns."""
        return ("object",) + self.columns


class RelationalView:
    """Class extents as relations over attribute columns."""

    def __init__(self, processor: PropositionProcessor,
                 include_deduced: bool = True) -> None:
        self.processor = processor
        self.include_deduced = include_deduced

    #: labels carrying annotations rather than data (rule/constraint/
    #: behaviour propositions do not become relation columns).
    ANNOTATION_LABELS = frozenset({"rule", "constraint", "behaviour"})

    def schema(self, cls: str) -> RelationSchema:
        """The relation schema of a class."""
        if not self.processor.is_class(cls):
            raise PropositionError(f"{cls!r} is not a class")
        labels: List[str] = []
        for prop in self.processor.attribute_classes(cls):
            if prop.label in self.ANNOTATION_LABELS:
                continue
            if prop.label not in labels:
                labels.append(prop.label)
        return RelationSchema(cls, tuple(sorted(labels)))

    def _values(self, instance: str, label: str) -> FrozenSet[str]:
        values = set()
        for prop in self.processor.retrieve_proposition(
            Pattern(source=instance, label=label),
            include_deduced=self.include_deduced,
        ):
            if prop.is_link and not prop.is_instanceof and not prop.is_isa:
                values.add(prop.destination)
        return frozenset(values)

    def rows(self, cls: str) -> List[Row]:
        """The relation for ``cls``: one row per instance."""
        schema = self.schema(cls)
        out: List[Row] = []
        for instance in sorted(self.processor.instances_of(cls)):
            row = [instance]
            for column in schema.columns:
                row.append(self._values(instance, column))
            out.append(tuple(row))
        return out

    # -- relational operators over class relations --------------------------

    def select(self, cls: str, predicate: Callable[[Dict[str, FrozenSet[str]]], bool]) -> List[Row]:
        """Rows of ``cls`` whose column dict satisfies ``predicate``."""
        schema = self.schema(cls)
        matching = []
        for row in self.rows(cls):
            columns = dict(zip(schema.columns, row[1:]))
            columns["object"] = frozenset({row[0]})
            if predicate(columns):
                matching.append(row)
        return matching

    def project(self, cls: str, columns: List[str]) -> List[Tuple]:
        """Distinct projections of the class relation."""
        schema = self.schema(cls)
        indexes = []
        for column in columns:
            if column == "object":
                indexes.append(0)
            elif column in schema.columns:
                indexes.append(1 + schema.columns.index(column))
            else:
                raise PropositionError(
                    f"unknown column {column!r} of relation {cls!r}"
                )
        seen = set()
        out: List[Tuple] = []
        for row in self.rows(cls):
            projected = tuple(row[i] for i in indexes)
            if projected not in seen:
                seen.add(projected)
                out.append(projected)
        return out

    def join(self, left_cls: str, label: str, right_cls: str) -> List[Tuple[str, str]]:
        """Pairs (x, y) with x in left class, y in right class, and an
        attribute link labelled ``label`` from x to y."""
        right_extent = self.processor.instances_of(right_cls)
        pairs: List[Tuple[str, str]] = []
        for instance in sorted(self.processor.instances_of(left_cls)):
            for value in sorted(self._values(instance, label)):
                if value in right_extent:
                    pairs.append((instance, value))
        return pairs

    def as_table(self, cls: str) -> str:
        """Plain-text rendering (the Relational Display of 3.3.1 uses a
        richer version of this in repro.models.display)."""
        schema = self.schema(cls)
        lines = ["\t".join(schema.heading)]
        for row in self.rows(cls):
            cells = [row[0]]
            for value in row[1:]:
                cells.append(",".join(sorted(value)) if value else "-")
            lines.append("\t".join(cells))
        return "\n".join(lines)
