"""Frame notation for complex objects.

The paper's example (section 3.1): "Consider, for example, a class
TDL_EntityClass called Invitation, which relates invitations to persons
by an attribute sender."  In frame notation::

    TELL Invitation IN TDL_EntityClass ISA Paper WITH
      attribute sender : Person
      attribute receiver : Person
    END

Each attribute line reads ``<category> <label> : <target>``; the
category names the attribute class the link instantiates (``attribute``
selects the most general one, user-defined categories select attribute
metaclass instances, which is how the GKBMS's FROM/TO/BY categories are
written down).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import PropositionError


@dataclass(frozen=True)
class AttributeDecl:
    """One attribute line of a frame."""

    category: str
    label: str
    target: str

    def __repr__(self) -> str:
        return f"{self.category} {self.label} : {self.target}"


@dataclass
class ObjectFrame:
    """A complex object: name, classifications, generalizations and
    attributes grouped around one object identifier."""

    name: str
    in_classes: List[str] = field(default_factory=list)
    isa: List[str] = field(default_factory=list)
    attributes: List[AttributeDecl] = field(default_factory=list)

    def attribute(self, label: str) -> Optional[AttributeDecl]:
        """Look an attribute declaration up by label."""
        for decl in self.attributes:
            if decl.label == label:
                return decl
        return None

    def values(self, label: str) -> List[str]:
        """All targets declared under ``label`` (set-valued attributes
        appear as several lines with the same label)."""
        return [d.target for d in self.attributes if d.label == label]

    def render(self) -> str:
        """Pretty-print back to TELL syntax."""
        lines = [f"TELL {self.name}"]
        if self.in_classes:
            lines[0] += " IN " + ", ".join(self.in_classes)
        if self.isa:
            lines[0] += " ISA " + ", ".join(self.isa)
        if self.attributes:
            lines[0] += " WITH"
            for decl in self.attributes:
                lines.append(f"  {decl.category} {decl.label} : {decl.target}")
        lines.append("END")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ObjectFrame({self.name!r})"


_ATTR_RE = re.compile(
    r"^\s*(?P<category>\S+)\s+(?P<label>\S+)\s*:\s*(?P<target>\S+)\s*$"
)


def _parse_header(head: str) -> Tuple[str, List[str], List[str], bool]:
    """Parse ``TELL name [IN c, ...] [ISA d, ...] [WITH]``."""
    words = head.replace(",", " , ").split()
    if not words or words[0].upper() != "TELL" or len(words) < 2:
        raise PropositionError(f"bad frame header: {head!r}")
    name = words[1]
    in_classes: List[str] = []
    isa: List[str] = []
    has_with = False
    target: Optional[List[str]] = None
    for word in words[2:]:
        upper = word.upper()
        if upper == "IN":
            target = in_classes
        elif upper == "ISA":
            target = isa
        elif upper == "WITH":
            has_with = True
            target = None
        elif word == ",":
            continue
        elif target is not None:
            target.append(word)
        else:
            raise PropositionError(f"unexpected token {word!r} in header {head!r}")
    return name, in_classes, isa, has_with


def parse_frame(text: str) -> ObjectFrame:
    """Parse one TELL ... END frame."""
    lines = [line.strip() for line in text.strip().splitlines() if line.strip()]
    if not lines:
        raise PropositionError("empty frame")
    # Allow the one-line form ``TELL x IN c END``.
    if lines[-1].upper() != "END" and lines[-1].upper().endswith(" END"):
        lines[-1:] = [lines[-1][: -len(" END")].rstrip(), "END"]
    if not lines[-1].upper() == "END":
        raise PropositionError(f"frame must close with END: {lines[-1]!r}")
    name, in_classes, isa, has_with = _parse_header(lines[0])
    frame = ObjectFrame(name=name, in_classes=in_classes, isa=isa)
    body = lines[1:-1]
    if body and not has_with:
        raise PropositionError("attribute lines require WITH in the header")
    for line in body:
        attr_match = _ATTR_RE.match(line)
        if attr_match is None:
            raise PropositionError(f"bad attribute line: {line!r}")
        frame.attributes.append(
            AttributeDecl(
                attr_match.group("category"),
                attr_match.group("label"),
                attr_match.group("target"),
            )
        )
    return frame


def parse_frames(text: str) -> List[ObjectFrame]:
    """Parse a sequence of TELL ... END frames."""
    frames: List[ObjectFrame] = []
    current: List[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        current.append(line)
        if stripped.upper() == "END" or stripped.upper().endswith(" END"):
            frames.append(parse_frame("\n".join(current)))
            current = []
    if current:
        raise PropositionError("unterminated frame (missing END)")
    return frames
