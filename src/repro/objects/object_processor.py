"""The object processor facade: tell/ask complex objects."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.objects.frame import ObjectFrame, parse_frame, parse_frames
from repro.objects.transformer import ObjectTransformer
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Proposition
from repro.timecalc.interval import ALWAYS, Interval


class ObjectProcessor:
    """Groups propositions around object identifiers (section 3.1).

    The facade most upper layers use: ``tell`` accepts frames (parsed or
    textual), ``ask`` reconstructs them, and the usual class queries are
    re-exported at object granularity.
    """

    def __init__(self, processor: Optional[PropositionProcessor] = None) -> None:
        self.propositions = processor if processor is not None else PropositionProcessor()
        self.transformer = ObjectTransformer(self.propositions)

    # ------------------------------------------------------------------

    def tell(self, frame: Union[str, ObjectFrame],
             time: Interval = ALWAYS) -> List[Proposition]:
        """Tell one frame (textual TELL syntax or an ObjectFrame)."""
        if isinstance(frame, str):
            frame = parse_frame(frame)
        return self.transformer.tell(frame, time=time)

    def tell_all(self, text: str, time: Interval = ALWAYS) -> List[Proposition]:
        """Tell a whole script of frames."""
        created: List[Proposition] = []
        for frame in parse_frames(text):
            created.extend(self.transformer.tell(frame, time=time))
        return created

    def ask(self, name: str) -> ObjectFrame:
        """The frame grouped around ``name``."""
        return self.transformer.ask(name)

    def exists(self, name: str) -> bool:
        """Is the object in the base?"""
        return self.propositions.exists(name)

    def untell(self, name: str) -> List[Proposition]:
        """Retract an object and everything referencing it."""
        return self.propositions.retract(name)

    # ------------------------------------------------------------------
    # object-granularity queries
    # ------------------------------------------------------------------

    def instances(self, cls: str) -> List[str]:
        """Sorted extent of a class."""
        return sorted(self.propositions.instances_of(cls))

    def classes(self, name: str) -> List[str]:
        """Sorted classes of an object."""
        return sorted(self.propositions.classes_of(name))

    def attribute_values(self, name: str, label: str) -> List[str]:
        """Destinations of (explicit and deduced) attribute links."""
        from repro.propositions.proposition import Pattern

        values = []
        for prop in self.propositions.retrieve_proposition(
            Pattern(source=name, label=label)
        ):
            if prop.is_link and not prop.is_instanceof and not prop.is_isa:
                values.append(prop.destination)
        return sorted(values)

    def attribute_dict(self, name: str) -> Dict[str, List[str]]:
        """All attributes of ``name`` grouped by label."""
        grouped: Dict[str, List[str]] = {}
        for prop in self.propositions.attributes_of(name):
            grouped.setdefault(prop.label, []).append(prop.destination)
        for values in grouped.values():
            values.sort()
        return grouped

    def objects_in(self, classes: Iterable[str]) -> List[str]:
        """Union of the extents of several classes."""
        names: set = set()
        for cls in classes:
            names |= self.propositions.instances_of(cls)
        return sorted(names)
