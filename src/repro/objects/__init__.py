"""The object processor (S7).

Section 3.1: "The next layer of ConceptBase, the Object Processor,
groups propositions around a common source, the object identifier. [...]
The Object Transformer transforms this class into a set of propositions
as shown in Fig 3-2.  [...] the object processor understands the
knowledge base as a deductive relational database."

- :mod:`repro.objects.frame` — frame notation (``TELL x IN c ISA d WITH
  attribute l : y END``) with a parser and pretty-printer;
- :mod:`repro.objects.transformer` — frames to proposition sets and
  back (the fig 3-2 transformation);
- :mod:`repro.objects.object_processor` — tell/ask objects;
- :mod:`repro.objects.relational` — class extents as relations with
  attribute columns, the deductive relational view.
"""

from repro.objects.frame import AttributeDecl, ObjectFrame, parse_frame
from repro.objects.transformer import ObjectTransformer
from repro.objects.object_processor import ObjectProcessor
from repro.objects.relational import RelationalView, RelationSchema

__all__ = [
    "AttributeDecl",
    "ObjectFrame",
    "parse_frame",
    "ObjectTransformer",
    "ObjectProcessor",
    "RelationalView",
    "RelationSchema",
]
