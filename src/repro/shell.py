"""An interactive shell for the GKBMS (the "integrative tool server").

The paper's GKBMS fronts an interactive environment: browse objects,
focus, pick decisions from menus, inspect code frames and dependency
graphs, explain, backtrack.  This module provides that loop for a
terminal, and — equally important for testing and scripting — a pure
function :func:`run_commands` that executes a command list against a
GKBMS and returns the transcript.

Commands::

    design <file-or-inline TaxisDL ...>   load a conceptual design
    objects [level]                       list design objects
    menu <object>                         applicable decisions + tools
    map <decision-class> <role>=<obj> [tool]
    frames                                current DBPL code frames
    deps [--all]                          dependency graph (ASCII)
    explain <object|decision>             design explanation
    history                               decision timeline
    versions <object>                     version list
    configure [level]                     derive a configuration
    backtrack <decision>                  selective backtracking
    obligations / sign <oid> <name>       verification obligations
    save <path> / load <path>             persistence
    connect <host> <port> / disconnect    client mode (remote GKBMS)
    rtell / rask / rquery / rinstances    remote ops over the connection
    help / quit
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.gkbms import GKBMS
from repro.obs.logging import StreamSink, log, set_sink


class GKBMSShell:
    """Command interpreter over one GKBMS."""

    def __init__(self, gkbms: Optional[GKBMS] = None) -> None:
        if gkbms is None:
            gkbms = GKBMS()
            gkbms.register_standard_library()
        self.gkbms = gkbms
        self.done = False
        #: Remote service connection (client mode); any object with the
        #: :class:`repro.server.client._BaseClient` API works, so tests
        #: plug a LocalClient in where the REPL would open a TCPClient.
        self.client = None
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "design": self._cmd_design,
            "objects": self._cmd_objects,
            "menu": self._cmd_menu,
            "map": self._cmd_map,
            "frames": self._cmd_frames,
            "deps": self._cmd_deps,
            "explain": self._cmd_explain,
            "history": self._cmd_history,
            "versions": self._cmd_versions,
            "configure": self._cmd_configure,
            "backtrack": self._cmd_backtrack,
            "obligations": self._cmd_obligations,
            "sign": self._cmd_sign,
            "save": self._cmd_save,
            "load": self._cmd_load,
            "connect": self._cmd_connect,
            "disconnect": self._cmd_disconnect,
            "rtell": self._cmd_rtell,
            "rask": self._cmd_rask,
            "rquery": self._cmd_rquery,
            "rinstances": self._cmd_rinstances,
            "help": self._cmd_help,
            "quit": self._cmd_quit,
        }

    # ------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; errors become messages, not crashes
        (the 'improved error handling and recovery' of §3.3.1)."""
        line = line.strip()
        if not line or line.startswith("#"):
            return ""
        try:
            parts = shlex.split(line)
        except ValueError as exc:
            return f"error: {exc}"
        command, args = parts[0], parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            return f"error: unknown command {command!r} (try 'help')"
        try:
            return handler(args)
        except Exception as exc:  # recover, report, keep the session
            return f"error: {exc}"

    # ------------------------------------------------------------------

    def _cmd_design(self, args: List[str]) -> str:
        source = " ".join(args)
        try:
            with open(source) as handle:
                source = handle.read()
        except OSError:
            source = source.replace(";", "\n")
        if self.gkbms.design.classes:
            added = self.gkbms.extend_design(source)
            return f"extended design: {', '.join(added)}"
        self.gkbms.import_design(source)
        return f"design loaded: {', '.join(self.gkbms.design.classes)}"

    def _cmd_objects(self, args: List[str]) -> str:
        nav = self.gkbms.navigator()
        levels = [args[0]] if args else nav.levels()
        lines = []
        for level in levels:
            lines.append(f"{level}: {', '.join(nav.status_view(level)) or '-'}")
        return "\n".join(lines)

    def _cmd_menu(self, args: List[str]) -> str:
        if not args:
            return "usage: menu <object>"
        matches = self.gkbms.decisions.applicable_decisions(args[0])
        if not matches:
            return f"no applicable decisions for {args[0]}"
        lines = [f"menu for {args[0]}:"]
        for dc, roles, tools in matches:
            lines.append(f"  {dc.name:<20} roles={roles} tools={tools}")
        return "\n".join(lines)

    def _cmd_map(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: map <decision-class> <role>=<object> [tool]"
        decision_class = args[0]
        inputs = {}
        tool = None
        for arg in args[1:]:
            if "=" in arg:
                role, value = arg.split("=", 1)
                inputs[role] = value
            else:
                tool = arg
        if tool is None:
            dc = self.gkbms.decisions.get(decision_class)
            tool = dc.tools[0] if dc.tools else None
        record = self.gkbms.execute(decision_class, inputs, tool=tool)
        return (
            f"executed {record.did}: {decision_class} by {record.tool} "
            f"-> {record.outputs}"
        )

    def _cmd_frames(self, args: List[str]) -> str:
        return self.gkbms.code_frames()

    def _cmd_deps(self, args: List[str]) -> str:
        include_retracted = "--all" in args
        return self.gkbms.dependency_graph(include_retracted).to_ascii()

    def _cmd_explain(self, args: List[str]) -> str:
        if not args:
            return "usage: explain <object|decision>"
        name = args[0]
        explainer = self.gkbms.explainer()
        if name in self.gkbms.decisions.records:
            return explainer.explain_decision(name)
        return explainer.explain_object(name)

    def _cmd_history(self, args: List[str]) -> str:
        events = self.gkbms.navigator().timeline()
        return "\n".join(repr(event) for event in events) or "(empty)"

    def _cmd_versions(self, args: List[str]) -> str:
        if not args:
            return "usage: versions <object>"
        nodes = self.gkbms.versions().versions_of(args[0])
        return "\n".join(
            f"{node.name:<24} t{node.tick} by {node.decision} "
            f"[{'ACTIVE' if node.active else 'inactive'}]"
            for node in nodes
        )

    def _cmd_configure(self, args: List[str]) -> str:
        level = args[0] if args else "implementation"
        config = self.gkbms.versions().configure(level)
        lines = [repr(config)]
        lines.append("objects: " + ", ".join(config.objects))
        if config.missing:
            lines.append("missing: " + ", ".join(config.missing))
        lines.extend(config.issues)
        return "\n".join(lines)

    def _cmd_backtrack(self, args: List[str]) -> str:
        if not args:
            return "usage: backtrack <decision-id>"
        report = self.gkbms.backtracker.retract(args[0])
        return (
            f"retracted {report.retracted_decisions}; "
            f"{len(report.retracted_objects)} proposition(s) removed"
        )

    def _cmd_obligations(self, args: List[str]) -> str:
        open_obligations = self.gkbms.decisions.open_obligations()
        if not open_obligations:
            return "no open obligations"
        return "\n".join(
            f"{o.oid}: {o.name} (decision {o.decision_id})"
            for o in open_obligations
        )

    def _cmd_sign(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: sign <oid> <signer>"
        obligation = self.gkbms.decisions.sign(args[0], args[1])
        return f"{obligation.oid} signed by {obligation.signer}"

    def _cmd_save(self, args: List[str]) -> str:
        if not args:
            return "usage: save <path>"
        from repro.core.persistence import save_to_file

        save_to_file(self.gkbms, args[0])
        return f"saved to {args[0]}"

    def _cmd_load(self, args: List[str]) -> str:
        if not args:
            return "usage: load <path>"
        from repro.core.persistence import load_from_file

        self.gkbms = load_from_file(args[0])
        return f"loaded from {args[0]} (clock t{self.gkbms.clock})"

    # -- client mode (remote GKBMS service) ----------------------------

    def _remote(self):
        if self.client is None:
            raise RuntimeError("not connected (use 'connect <host> <port>')")
        return self.client

    def _cmd_connect(self, args: List[str]) -> str:
        if self.client is not None:
            return "error: already connected (use 'disconnect' first)"
        from repro.server.client import TCPClient

        host = args[0] if args else "127.0.0.1"
        port = int(args[1]) if len(args) > 1 else 8731
        self.client = TCPClient(host, port)
        return f"connected to {host}:{port} as session {self.client.session}"

    def _cmd_disconnect(self, args: List[str]) -> str:
        if self.client is None:
            return "not connected"
        session = self.client.session
        try:
            self.client.close()
        finally:
            self.client = None
        return f"disconnected (session {session})"

    def _cmd_rtell(self, args: List[str]) -> str:
        source = " ".join(args)
        if not source:
            return "usage: rtell <TELL ... END>"
        result = self._remote().tell(source)
        if "staged" in result:
            return f"staged ({result['staged']} op(s) pending)"
        return (f"committed seq {result.get('commit_seq')}: "
                f"{result.get('created', 0)} proposition(s)")

    def _cmd_rask(self, args: List[str]) -> str:
        assertion = " ".join(args)
        if not assertion:
            return "usage: rask <assertion>"
        return "true" if self._remote().ask(assertion) else "false"

    def _cmd_rquery(self, args: List[str]) -> str:
        literal = " ".join(args)
        if not literal:
            return "usage: rquery <literal>"
        answers = self._remote().query(literal)
        if not answers:
            return "(no answers)"
        return "\n".join(", ".join(str(v) for v in row) for row in answers)

    def _cmd_rinstances(self, args: List[str]) -> str:
        if not args:
            return "usage: rinstances <class>"
        instances = self._remote().instances(args[0])
        return ", ".join(instances) or "(none)"

    def _cmd_help(self, args: List[str]) -> str:
        return "commands: " + ", ".join(sorted(self._commands))

    def _cmd_quit(self, args: List[str]) -> str:
        self.done = True
        if self.client is not None:
            self._cmd_disconnect([])
        return "bye"


def run_commands(lines: Iterable[str],
                 gkbms: Optional[GKBMS] = None) -> List[str]:
    """Execute a command script; returns one output string per command."""
    shell = GKBMSShell(gkbms)
    outputs = []
    for line in lines:
        outputs.append(shell.execute(line))
        if shell.done:
            break
    return outputs


def main() -> None:  # pragma: no cover - interactive entry point
    """Interactive read-eval-print loop over one GKBMS session.

    The REPL is an application, so it installs a stream sink for its
    own output; importing this module emits nothing (the
    :mod:`repro.obs.logging` process default is silence)."""
    previous = set_sink(StreamSink())
    try:
        shell = GKBMSShell()
        log("info", "GKBMS shell — 'help' lists commands, 'quit' exits.",
            logger="repro.shell")
        while not shell.done:
            try:
                line = input("gkbms> ")
            except EOFError:
                break
            output = shell.execute(line)
            if output:
                log("info", output, logger="repro.shell")
    finally:
        set_sink(previous)


if __name__ == "__main__":  # pragma: no cover
    main()
