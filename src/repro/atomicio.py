"""Atomic, checksummed file IO for every durable representation.

The GKBMS is "ex post a documentation service" — a role that collapses
if the documentation can be half-written.  This module centralises the
two disciplines every durable artefact in the repo follows:

- **Atomic replace**: data is fully serialised in memory, written to a
  sibling ``*.tmp`` file, fsynced, and only then ``os.replace``d over
  the destination.  A crash at any point leaves either the old file or
  the new file, never a torn mixture (:func:`atomic_write_bytes`).
- **Versioned, checksummed envelopes**: JSON payloads are wrapped in
  ``{"format", "kind", "checksum", "payload"}`` where the checksum is a
  CRC-32 over the canonical (sorted-key, compact) payload encoding.
  :func:`read_checked_json` validates all three and raises a typed
  :class:`~repro.errors.PersistenceError` instead of surfacing raw
  ``JSONDecodeError``/``KeyError`` (:func:`atomic_write_json`).

All filesystem access goes through an :class:`FileIO` object so the
fault-injection harness (:mod:`repro.faults`) can substitute an IO that
tears writes, lies about fsync, or kills the process mid-operation —
the recovery paths are tested against exactly the same code that runs
in production.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Optional, Tuple

from repro.errors import PersistenceError

ENVELOPE_VERSION = 1


def canonical_json(payload: Any) -> bytes:
    """The canonical encoding checksums are computed over: sorted keys,
    compact separators, UTF-8."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def checksum(data: bytes) -> int:
    """CRC-32 of ``data`` (cheap, catches torn and bit-flipped tails)."""
    return zlib.crc32(data) & 0xFFFFFFFF


class FileIO:
    """Direct filesystem operations — the production IO.

    Every durable-layer component (WAL, snapshots, dump files) calls
    the filesystem only through this interface, so
    :class:`repro.faults.FaultyIO` can wrap it and inject torn writes,
    lying fsyncs and crashes deterministically.
    """

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def size(self, path: str) -> int:
        return os.path.getsize(path)

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def open_append(self, path: str):
        return open(path, "ab")

    def open_truncate(self, path: str):
        return open(path, "wb")

    def write(self, handle, data: bytes) -> None:
        handle.write(data)
        handle.flush()

    def fsync(self, handle) -> None:
        os.fsync(handle.fileno())

    def close(self, handle) -> None:
        handle.close()

    def write_bytes(self, path: str, data: bytes) -> None:
        """Write a whole file and fsync it before returning."""
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def truncate(self, path: str, size: int) -> None:
        os.truncate(path, size)


REAL_IO = FileIO()


def atomic_write_bytes(path: str, data: bytes,
                       io: Optional[FileIO] = None) -> None:
    """Write ``data`` to ``path`` via tmp + fsync + ``os.replace``.

    An interruption at any point leaves either the previous file or the
    complete new one — never a truncated mixture.
    """
    io = io if io is not None else REAL_IO
    tmp = path + ".tmp"
    io.write_bytes(tmp, data)
    io.replace(tmp, path)


def encode_envelope(kind: str, payload: Any,
                    version: int = ENVELOPE_VERSION) -> bytes:
    """Serialise ``payload`` inside a versioned, checksummed envelope."""
    envelope = {
        "format": version,
        "kind": kind,
        "checksum": checksum(canonical_json(payload)),
        "payload": payload,
    }
    return json.dumps(envelope, sort_keys=True, indent=1).encode("utf-8")


def atomic_write_json(path: str, kind: str, payload: Any,
                      io: Optional[FileIO] = None) -> None:
    """Atomically write ``payload`` as a checksummed JSON envelope.

    Serialisation happens entirely in memory before any file is
    touched, so an unserialisable payload cannot corrupt an existing
    file (it raises before the tmp file is even created).
    """
    atomic_write_bytes(path, encode_envelope(kind, payload), io=io)


def decode_envelope(data: bytes, kind: str,
                    versions: Tuple[int, ...] = (ENVELOPE_VERSION,),
                    allow_legacy: bool = False) -> Any:
    """Validate and unwrap an envelope produced by :func:`encode_envelope`.

    ``allow_legacy=True`` passes through JSON documents that predate
    the envelope (no ``kind``/``checksum`` keys) unchanged, so readers
    can keep loading files written before the durability layer.
    """
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"malformed JSON document: {exc}") from None
    if not isinstance(document, dict):
        raise PersistenceError(
            f"expected a JSON object, got {type(document).__name__}"
        )
    if "checksum" not in document or "kind" not in document:
        if allow_legacy:
            return document
        raise PersistenceError(
            "document is not a checksummed envelope (missing kind/checksum)"
        )
    if document["kind"] != kind:
        raise PersistenceError(
            f"wrong document kind {document['kind']!r}, expected {kind!r}"
        )
    if document.get("format") not in versions:
        raise PersistenceError(
            f"unknown format version {document.get('format')!r} "
            f"for {kind!r} (supported: {sorted(versions)})"
        )
    if "payload" not in document:
        raise PersistenceError(f"envelope for {kind!r} is missing its payload")
    payload = document["payload"]
    if document["checksum"] != checksum(canonical_json(payload)):
        raise PersistenceError(
            f"checksum mismatch in {kind!r} envelope (corrupt payload)"
        )
    return payload


def read_checked_json(path: str, kind: str,
                      io: Optional[FileIO] = None,
                      versions: Tuple[int, ...] = (ENVELOPE_VERSION,),
                      allow_legacy: bool = False) -> Any:
    """Read and validate an envelope file; typed errors throughout."""
    io = io if io is not None else REAL_IO
    try:
        data = io.read_bytes(path)
    except OSError as exc:
        raise PersistenceError(f"cannot read {path!r}: {exc}") from None
    return decode_envelope(data, kind, versions=versions,
                           allow_legacy=allow_legacy)
