"""Constraint-relevance analysis: what does a constraint *read*?

The paper's consistency checker re-evaluates constraints when updates
arrive; the seed re-evaluated every constraint applicable to a touched
instance, whatever the update was.  This module statically extracts the
*footprint* of an assertion expression — the attribute labels it
traverses, the classes whose membership or extent it consults, and
whether it reads the specialization graph — and builds a
:class:`RelevanceIndex` the checker consults so that an attribute update
labelled ``owner`` never re-evaluates a constraint that only reads
``reviewer``.

Deduction rules can *derive* attribute links (``attr(?x, informed, ?y)
:- attr(?x, sender, ?y).``), so a footprint match must be closed under
derivation: :class:`LabelDependencies` computes, from the registered
rule set, which labels may change when a base label changes.  Rules with
variable labels or ``prop(...)`` bodies make the closure conservative
(every label affected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.assertions.ast import (
    AttributeAtom,
    BinaryOp,
    Comparison,
    Expression,
    InAtom,
    IsaAtom,
    KnownAtom,
    Not,
    PathTerm,
    Quantifier,
    SimpleTerm,
    Term,
)
from repro.deduction.terms import Constant, Literal, Rule


@dataclass(frozen=True)
class ConstraintFootprint:
    """The statically derivable read set of one constraint."""

    constraint: str
    attached_to: str
    labels: FrozenSet[str] = frozenset()
    classes: FrozenSet[str] = frozenset()
    reads_isa: bool = False
    opaque: bool = False  # un-analyzable: always considered relevant

    def touches_label(self, labels: Iterable[str]) -> bool:
        """Does any of ``labels`` intersect the footprint?"""
        return self.opaque or not self.labels.isdisjoint(labels)


def _walk_term(term: Term, labels: Set[str]) -> None:
    if isinstance(term, PathTerm):
        labels.add(term.label)
        _walk_term(term.base, labels)
    # SimpleTerm reads nothing by itself.


def footprint_of(
    constraint: str, attached_to: str, expression: Expression
) -> ConstraintFootprint:
    """Extract the footprint of an assertion expression.

    Unknown AST node types mark the footprint opaque (conservatively
    relevant to every update) instead of failing.
    """
    labels: Set[str] = set()
    classes: Set[str] = {attached_to}
    reads_isa = False
    opaque = False

    def walk(expr: Expression) -> None:
        nonlocal reads_isa, opaque
        if isinstance(expr, Quantifier):
            classes.update(cls for _var, cls in expr.bindings)
            walk(expr.body)
        elif isinstance(expr, BinaryOp):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, Not):
            walk(expr.operand)
        elif isinstance(expr, InAtom):
            classes.add(expr.class_name)
            _walk_term(expr.term, labels)
        elif isinstance(expr, IsaAtom):
            reads_isa = True
            _walk_term(expr.sub, labels)
            _walk_term(expr.sup, labels)
        elif isinstance(expr, AttributeAtom):
            labels.add(expr.label)
            _walk_term(expr.source, labels)
            _walk_term(expr.destination, labels)
        elif isinstance(expr, KnownAtom):
            _walk_term(expr.term, labels)
        elif isinstance(expr, Comparison):
            _walk_term(expr.left, labels)
            _walk_term(expr.right, labels)
        else:
            opaque = True

    walk(expression)
    return ConstraintFootprint(
        constraint,
        attached_to,
        labels=frozenset(labels),
        classes=frozenset(classes),
        reads_isa=reads_isa,
        opaque=opaque,
    )


# ---------------------------------------------------------------------------
# Label derivation closure
# ---------------------------------------------------------------------------

#: Start node matched by *any* attribute update: variable-label ``attr``
#: bodies and ``prop`` bodies react to every update.
_ANY = ("any", "")
_VAR_HEAD = ("var-head", "")

_Node = Tuple[str, str]

#: Rule-ish inputs: constructed rules or anything with head/body literals.
RuleLike = Union[Rule, object]


def _body_node(lit: Literal) -> Optional[_Node]:
    if lit.predicate == "attr" and len(lit.args) == 3:
        label = lit.args[1]
        if isinstance(label, Constant):
            return ("label", str(label.value))
        return _ANY
    if lit.predicate == "prop":
        return _ANY
    return ("pred", lit.predicate)


def _head_node(lit: Literal) -> _Node:
    if lit.predicate == "attr" and len(lit.args) == 3:
        label = lit.args[1]
        if isinstance(label, Constant):
            return ("label", str(label.value))
        return _VAR_HEAD
    return ("pred", lit.predicate)


class LabelDependencies:
    """Closure of attribute labels under rule derivation.

    ``affected_labels(l)`` answers: after an update to attribute links
    labelled ``l``, which labels may have changed values?  ``None``
    means *every* label (a variable-label conclusion is reachable).
    """

    def __init__(self, rules: Iterable[RuleLike] = ()) -> None:
        self._edges: Dict[_Node, Set[_Node]] = {}
        self._has_var_head = False
        for rule in rules:
            head = _head_node(rule.head)
            for lit in rule.body:
                src = _body_node(lit)
                if src is None:
                    continue
                self._edges.setdefault(src, set()).add(head)
        self._cache: Dict[str, Optional[FrozenSet[str]]] = {}

    def affected_labels(self, label: str) -> Optional[FrozenSet[str]]:
        """Labels whose values may change after an update to ``label``
        (always includes ``label``); ``None`` = all labels."""
        if label in self._cache:
            return self._cache[label]
        reached: Set[_Node] = set()
        frontier: List[_Node] = [("label", label), _ANY]
        result: Set[str] = {label}
        answer: Optional[FrozenSet[str]] = None
        while frontier:
            node = frontier.pop()
            if node in reached:
                continue
            reached.add(node)
            if node == _VAR_HEAD:
                answer = None
                break
            if node[0] == "label":
                result.add(node[1])
            frontier.extend(self._edges.get(node, ()))
        else:
            answer = frozenset(result)
        self._cache[label] = answer
        return answer


class RelevanceIndex:
    """Footprints of all attached constraints, queryable per update.

    The consistency checker consults :meth:`relevant` with the set of
    attribute labels a batch touched (plus a flag for structural
    updates) and skips constraints that cannot have changed.
    """

    def __init__(self, label_deps: Optional[LabelDependencies] = None) -> None:
        self._footprints: Dict[str, ConstraintFootprint] = {}
        self.label_deps = label_deps or LabelDependencies()

    def add(self, constraint: str, attached_to: str,
            expression: Expression) -> ConstraintFootprint:
        """Register one constraint's footprint; returns it."""
        fp = footprint_of(constraint, attached_to, expression)
        self._footprints[constraint] = fp
        return fp

    def remove(self, constraint: str) -> None:
        """Forget a constraint."""
        self._footprints.pop(constraint, None)

    def footprint(self, constraint: str) -> Optional[ConstraintFootprint]:
        """The registered footprint, if any."""
        return self._footprints.get(constraint)

    def footprints(self) -> Dict[str, ConstraintFootprint]:
        """All registered footprints by constraint name."""
        return dict(self._footprints)

    def closed_labels(self, labels: Iterable[str]) -> Optional[FrozenSet[str]]:
        """Touched labels closed under rule derivation; ``None`` = all."""
        closed: Set[str] = set()
        for label in labels:
            affected = self.label_deps.affected_labels(label)
            if affected is None:
                return None
            closed |= affected
        return frozenset(closed)

    def relevant(self, constraint: str, closed_labels: Optional[FrozenSet[str]],
                 structural: bool) -> bool:
        """Could the constraint's truth value have changed?

        ``closed_labels`` is the batch's touched-label closure (``None``
        = unknown, treat all as touched); ``structural`` says the batch
        contained non-attribute updates (individuals, instanceof, isa),
        which conservatively touch everything.
        """
        if structural or closed_labels is None:
            return True
        fp = self._footprints.get(constraint)
        if fp is None or fp.opaque:
            return True
        return not fp.labels.isdisjoint(closed_labels)
