"""Shared command-line behaviour for the analysis CLIs.

``python -m repro.analysis`` (the CML model lint) and
``python -m repro.analysis.concurrency`` (the concurrency lint) answer
with the same contract:

- ``--json`` emits one machine-readable report
  (:meth:`~repro.analysis.diagnostics.DiagnosticReport.to_json`), plain
  text otherwise;
- ``--strict`` *promotes* warnings to error severity before reporting,
  so the JSON a CI job archives shows exactly what failed it;
- the exit status is non-zero **only on error-severity findings**
  (after promotion) — info diagnostics never fail a run, and ``2`` is
  reserved for inputs that could not be loaded at all.

Both CLIs route their output through :mod:`repro.obs.logging` so that
importing the modules stays silent (library discipline) while running
them prints (a CLI's invited output).
"""

from __future__ import annotations

from repro.analysis.diagnostics import CODES, DiagnosticReport
from repro.obs.logging import log

#: Exit statuses shared by the analysis CLIs.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_UNLOADABLE = 2


def list_codes(prefix: str = "", logger: str = "repro.analysis") -> int:
    """Print the diagnostic catalogue (``--codes``); returns exit 0."""
    for code, (severity, description) in sorted(CODES.items()):
        if prefix and not code.startswith(prefix):
            continue
        log("info", f"{code}  {str(severity):7}  {description}",
            logger=logger)
    return EXIT_CLEAN


def emit_report(report: DiagnosticReport, *, as_json: bool = False,
                strict: bool = False,
                logger: str = "repro.analysis") -> int:
    """Render a report and return the unified exit status.

    Under ``strict`` warnings are promoted to errors first; the status
    is then :data:`EXIT_FINDINGS` iff error-severity diagnostics remain,
    :data:`EXIT_CLEAN` otherwise.
    """
    if strict:
        report = report.promote_warnings()
    log("info", report.to_json() if as_json else report.render_text(),
        logger=logger)
    return EXIT_FINDINGS if report.errors() else EXIT_CLEAN
