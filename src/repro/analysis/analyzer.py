"""The model analyzer: one object running every static check.

:class:`ModelAnalyzer` collects the pieces of a conceptual model — a
proposition base, deduction rules, constraints, frames not yet told,
temporal networks — and produces one
:class:`~repro.analysis.diagnostics.DiagnosticReport`.  The
``ConceptBase`` facade builds one from its live components
(``cb.analyze()``); the CLI builds one from model files.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import DeductionError
from repro.analysis.constraints import check_constraint
from repro.analysis.diagnostics import DiagnosticReport, SourceSpan, make
from repro.analysis.rules import (
    RuleGraph,
    RuleSpec,
    analyze_rules,
    spec_from_rule,
    spec_from_text,
)
from repro.analysis.schema import check_frames, check_processor
from repro.analysis.temporal import check_link_validity, check_network
from repro.assertions.ast import Expression
from repro.objects.frame import ObjectFrame
from repro.propositions.processor import PropositionProcessor
from repro.timecalc.allen import AllenNetwork


class ModelAnalyzer:
    """Accumulates model components, then analyzes them together."""

    def __init__(self, processor: Optional[PropositionProcessor] = None,
                 check_times: bool = False) -> None:
        self.processor = processor
        self.check_times = check_times
        self._specs: List[RuleSpec] = []
        self._constraints: List[Tuple[str, str, Expression, str]] = []
        self._frames: List[ObjectFrame] = []
        self._networks: List[AllenNetwork] = []
        self._pre_report = DiagnosticReport()  # syntax errors found on add
        self.graph: Optional[RuleGraph] = None

    # -- collection ------------------------------------------------------

    def add_rule_text(self, name: str, text: str) -> None:
        """Add rule source; syntax errors become CML008 diagnostics."""
        try:
            self._specs.append(spec_from_text(name, text))
        except DeductionError as exc:
            self._pre_report.add(
                make("CML008", str(exc), subject=name,
                     span=SourceSpan(text=text.strip()))
            )

    def add_rule(self, name: str, rule) -> None:
        """Add an already-parsed :class:`~repro.deduction.terms.Rule`."""
        self._specs.append(spec_from_rule(name, rule))

    def add_rules(self, rules: Iterable[Tuple[str, object]]) -> None:
        """Add several ``(name, Rule)`` pairs."""
        for name, rule in rules:
            self.add_rule(name, rule)

    def add_constraint(self, name: str, attached_to: str,
                       expression: Expression, source: str = "") -> None:
        """Add a parsed constraint expression."""
        self._constraints.append((name, attached_to, expression, source))

    def add_constraint_text(self, name: str, attached_to: str,
                            text: str) -> None:
        """Add constraint source; syntax errors become CML010."""
        from repro.errors import AssertionSyntaxError
        from repro.assertions.parser import parse_assertion

        try:
            self._constraints.append(
                (name, attached_to, parse_assertion(text), text)
            )
        except AssertionSyntaxError as exc:
            self._pre_report.add(
                make("CML010", str(exc), subject=name,
                     span=SourceSpan(text=text.strip()))
            )

    def add_constraint_defs(self, definitions: Iterable[object]) -> None:
        """Add constraint definitions (duck-typed
        :class:`~repro.consistency.checker.ConstraintDef`)."""
        for definition in definitions:
            self._constraints.append(
                (definition.name, definition.attached_to,
                 definition.expression, definition.source)
            )

    def add_frame(self, frame: ObjectFrame) -> None:
        """Add a frame to lint before it is told."""
        self._frames.append(frame)

    def add_network(self, network: AllenNetwork) -> None:
        """Add a temporal constraint network to precheck."""
        self._networks.append(network)

    # -- analysis --------------------------------------------------------

    def analyze(self) -> DiagnosticReport:
        """Run all checks; returns the combined report."""
        report = DiagnosticReport()
        report.merge(self._pre_report)

        report, self.graph = analyze_rules(self._specs, report)

        exists = self.processor.exists if self.processor is not None else None
        for name, attached_to, expression, source in self._constraints:
            report.extend(
                check_constraint(name, attached_to, expression,
                                 source=source, exists=exists)
            )

        if self.processor is not None:
            report.extend(check_processor(self.processor))
            if self.check_times:
                report.extend(check_link_validity(self.processor))
        if self._frames:
            report.extend(check_frames(self._frames, self.processor))
        for network in self._networks:
            report.extend(check_network(network))
        return report

    def strata(self) -> Optional[List[List[str]]]:
        """Predicate strata of the analyzed rule set, if stratifiable."""
        graph = self.graph if self.graph is not None else RuleGraph(self._specs)
        try:
            return graph.strata()
        except DeductionError:
            return None


def analyze_model(
    processor: Optional[PropositionProcessor] = None,
    rules: Iterable[Tuple[str, object]] = (),
    constraint_defs: Iterable[object] = (),
    frames: Sequence[ObjectFrame] = (),
    networks: Sequence[AllenNetwork] = (),
    check_times: bool = False,
) -> DiagnosticReport:
    """One-shot analysis over ready-made components."""
    analyzer = ModelAnalyzer(processor, check_times=check_times)
    analyzer.add_rules(rules)
    analyzer.add_constraint_defs(constraint_defs)
    for frame in frames:
        analyzer.add_frame(frame)
    for network in networks:
        analyzer.add_network(network)
    return analyzer.analyze()
