"""Schema and frame lint for the object transformer.

Checks the structural half of the model before (or after) it reaches
the proposition base: isa cycles in the specialization graph, frames
classifying into or specialising undefined classes, attribute categories
that resolve to no attribute class (the lookup
:meth:`~repro.objects.transformer.ObjectTransformer._find_attribute_class`
would reject at tell time), and dangling attribute targets.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.diagnostics import Diagnostic, SourceSpan, make
from repro.objects.frame import ObjectFrame
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import ISA, Pattern


def _isa_cycles(processor: PropositionProcessor) -> List[List[str]]:
    """Cycles in the stored specialization graph, each reported once."""
    edges: dict = {}
    for prop in processor.store.retrieve(Pattern(label=ISA)):
        if prop.is_link:
            edges.setdefault(prop.source, set()).add(prop.destination)
    cycles: List[List[str]] = []
    seen_cycles: Set[frozenset] = set()
    state: dict = {}  # 0 visiting, 1 done

    def visit(node: str, path: List[str]) -> None:
        state[node] = 0
        path.append(node)
        for succ in sorted(edges.get(node, ())):
            if succ not in state:
                visit(succ, path)
            elif state[succ] == 0:
                cycle = path[path.index(succ):]
                key = frozenset(cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(list(cycle))
        path.pop()
        state[node] = 1

    for node in sorted(edges):
        if node not in state:
            visit(node, [])
    return cycles


def check_processor(processor: PropositionProcessor) -> List[Diagnostic]:
    """Lint an already-populated proposition base."""
    out: List[Diagnostic] = []
    for cycle in _isa_cycles(processor):
        loop = " isa ".join(cycle + cycle[:1])
        out.append(
            make(
                "CML030",
                f"specialization cycle: {loop}",
                subject=cycle[0],
                hint="remove one isa link to restore a partial order",
            )
        )
    for prop in processor.store:
        if not prop.is_link:
            continue
        if prop.is_instanceof and not processor.exists(prop.destination):
            out.append(
                make(
                    "CML031",
                    f"{prop.source!r} is declared an instance of undefined "
                    f"class {prop.destination!r}",
                    subject=prop.source,
                )
            )
        elif prop.is_isa and not processor.exists(prop.destination):
            out.append(
                make(
                    "CML034",
                    f"{prop.source!r} specialises undefined class "
                    f"{prop.destination!r}",
                    subject=prop.source,
                )
            )
        elif (not prop.is_instanceof and not prop.is_isa
              and not prop.is_individual
              and not processor.exists(prop.destination)):
            out.append(
                make(
                    "CML033",
                    f"attribute {prop.label!r} of {prop.source!r} targets "
                    f"undefined {prop.destination!r}",
                    subject=prop.source,
                )
            )
    return out


def _category_resolvable(
    processor: PropositionProcessor, frame: ObjectFrame, category: str
) -> bool:
    """Would the object transformer find an attribute class for
    ``category`` on this frame's owner?  Mirrors
    ``ObjectTransformer._find_attribute_class`` without mutating."""
    if category.lower() == "attribute":
        return True
    classes: Set[str] = set(frame.in_classes)
    if processor.exists(frame.name):
        classes |= processor.classes_of(frame.name)
    for cls in sorted(classes):
        for prop in processor.attribute_classes(cls):
            if prop.label == category:
                return True
    return processor.exists(category)


def check_frame(
    frame: ObjectFrame, processor: PropositionProcessor
) -> List[Diagnostic]:
    """Pre-tell lint of one frame against the current base."""
    span = SourceSpan(text=frame.render())
    out: List[Diagnostic] = []
    for cls in frame.in_classes:
        if not processor.exists(cls):
            out.append(
                make(
                    "CML031",
                    f"frame classifies {frame.name!r} into undefined class "
                    f"{cls!r}",
                    subject=frame.name,
                    span=span,
                    hint="TELL the class first",
                )
            )
    for sup in frame.isa:
        if not processor.exists(sup):
            out.append(
                make(
                    "CML034",
                    f"frame specialises undefined class {sup!r}",
                    subject=frame.name,
                    span=span,
                    hint="TELL the generalization first",
                )
            )
    for decl in frame.attributes:
        if not _category_resolvable(processor, frame, decl.category):
            out.append(
                make(
                    "CML032",
                    f"attribute category {decl.category!r} (label "
                    f"{decl.label!r}) resolves to no attribute class on "
                    f"{frame.name!r}",
                    subject=frame.name,
                    span=span,
                    hint="declare the attribute class on one of the "
                         "object's classes, or use 'attribute'",
                )
            )
        if (not processor.exists(decl.target)
                and decl.target != frame.name
                and decl.target not in frame.in_classes):
            out.append(
                make(
                    "CML033",
                    f"attribute {decl.label!r} targets undefined "
                    f"{decl.target!r}",
                    subject=frame.name,
                    span=span,
                )
            )
    return out


def check_frames(
    frames: List[ObjectFrame], processor: Optional[PropositionProcessor] = None
) -> List[Diagnostic]:
    """Lint a frame script in order, simulating definition effects.

    Each frame sees the names introduced by earlier frames (so forward
    references inside one script are only flagged when never defined).
    """
    proc = processor if processor is not None else PropositionProcessor()
    defined: Set[str] = set()
    out: List[Diagnostic] = []

    def exists(name: str) -> bool:
        return name in defined or proc.exists(name)

    # Two passes: collect all names first so order inside a script does
    # not matter (the object processor tells scripts atomically).
    for frame in frames:
        defined.add(frame.name)
    for frame in frames:
        span = SourceSpan(text=frame.render())
        for cls in frame.in_classes:
            if not exists(cls):
                out.append(
                    make("CML031",
                         f"frame classifies {frame.name!r} into undefined "
                         f"class {cls!r}",
                         subject=frame.name, span=span,
                         hint="TELL the class first"))
        for sup in frame.isa:
            if not exists(sup):
                out.append(
                    make("CML034",
                         f"frame specialises undefined class {sup!r}",
                         subject=frame.name, span=span,
                         hint="TELL the generalization first"))
        for decl in frame.attributes:
            if decl.category.lower() != "attribute" and not exists(decl.category):
                resolvable = _category_resolvable(proc, frame, decl.category)
                if not resolvable:
                    out.append(
                        make("CML032",
                             f"attribute category {decl.category!r} (label "
                             f"{decl.label!r}) resolves to no attribute "
                             f"class on {frame.name!r}",
                             subject=frame.name, span=span))
            if not exists(decl.target):
                out.append(
                    make("CML033",
                         f"attribute {decl.label!r} targets undefined "
                         f"{decl.target!r}",
                         subject=frame.name, span=span))
    return out
