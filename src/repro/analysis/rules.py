"""Rule dependency graph, stratification check and safety lint.

The dynamic engines already refuse unsafe rules (at construction) and
unstratifiable programs (at materialisation) — but only one problem at a
time, and only once a query arrives.  This module analyses a whole rule
set *statically*: it builds the predicate dependency graph, finds every
strongly connected component that contains a negative edge (recursion
through negation, code ``CML004``), reports the stratum ordering, and
turns every range-restriction violation into a diagnostic rather than an
exception.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import DeductionError
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    SourceSpan,
    make,
)
from repro.deduction.parser import parse_rule_parts
from repro.deduction.terms import Literal, Rule, safety_issues

#: EDB predicates of the knowledge view whose derivations are *not*
#: materialised back into propositions (only ``attr`` conclusions are).
RESERVED_EDB = frozenset({"prop", "in", "isa", "isa_star", "attr_of"})

_SAFETY_CODES = {
    "unbound-head": "CML001",
    "unbound-negation": "CML002",
    "negated-head": "CML007",
}


@dataclass(frozen=True)
class RuleSpec:
    """A loosely parsed rule: name, literals and original source."""

    name: str
    head: Literal
    body: Tuple[Literal, ...]
    source: str = ""

    @property
    def predicate(self) -> str:
        """The head predicate."""
        return self.head.predicate


def spec_from_text(name: str, text: str) -> RuleSpec:
    """Parse rule source into a :class:`RuleSpec` (no safety checks).

    Raises :class:`~repro.errors.DeductionError` on syntax errors; the
    analyzer converts those into ``CML008`` diagnostics.
    """
    head, body = parse_rule_parts(text)
    return RuleSpec(name, head, body, source=text.strip())


def spec_from_rule(name: str, rule: Rule) -> RuleSpec:
    """Wrap an already-constructed (hence safe) rule."""
    return RuleSpec(name, rule.head, rule.body, source=repr(rule))


@dataclass(frozen=True)
class Dependency:
    """One edge of the dependency graph: head depends on body predicate."""

    head: str
    body: str
    negated: bool
    rule: str  # name of the rule contributing the edge


class RuleGraph:
    """Predicate dependency graph of a rule set."""

    def __init__(self, specs: Iterable[RuleSpec]) -> None:
        self.specs = list(specs)
        self.edges: List[Dependency] = []
        self.idb: Set[str] = {spec.predicate for spec in self.specs}
        for spec in self.specs:
            for lit in spec.body:
                self.edges.append(
                    Dependency(spec.predicate, lit.predicate, lit.negated,
                               spec.name)
                )

    # -- strongly connected components ---------------------------------

    def sccs(self) -> List[List[str]]:
        """Tarjan's SCCs over IDB predicates, in reverse topological
        order (dependencies before dependents)."""
        graph: Dict[str, List[str]] = defaultdict(list)
        for edge in self.edges:
            if edge.body in self.idb:
                graph[edge.head].append(edge.body)
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[List[str]] = []
        counter = [0]

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: (node, iterator position) frames.
            work = [(node, 0)]
            while work:
                current, pos = work.pop()
                if pos == 0:
                    index[current] = low[current] = counter[0]
                    counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                recurse = False
                successors = graph.get(current, [])
                for i in range(pos, len(successors)):
                    succ = successors[i]
                    if succ not in index:
                        work.append((current, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        low[current] = min(low[current], index[succ])
                if recurse:
                    continue
                if low[current] == index[current]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    result.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[current])

        for pred in sorted(self.idb):
            if pred not in index:
                strongconnect(pred)
        return result

    def negative_cycles(self) -> List[Tuple[List[str], List[Dependency]]]:
        """SCCs containing an internal negative edge, with those edges."""
        out: List[Tuple[List[str], List[Dependency]]] = []
        for component in self.sccs():
            members = set(component)
            if len(members) == 1:
                # A singleton is cyclic only if it depends on itself.
                pred = component[0]
                internal = [e for e in self.edges
                            if e.head == pred and e.body == pred]
            else:
                internal = [e for e in self.edges
                            if e.head in members and e.body in members]
            negative = [e for e in internal if e.negated]
            if negative:
                out.append((component, negative))
        return out

    def strata(self) -> List[List[str]]:
        """Predicates grouped by stratum, lowest first.

        Raises :class:`~repro.errors.DeductionError` when the program is
        not stratifiable; call :meth:`negative_cycles` first for a
        diagnostic-friendly answer.
        """
        if self.negative_cycles():
            raise DeductionError("program is not stratifiable (negative cycle)")
        stratum: Dict[str, int] = {pred: 0 for pred in self.idb}
        changed = True
        while changed:
            changed = False
            for edge in self.edges:
                if edge.body not in self.idb:
                    continue
                required = stratum[edge.body] + (1 if edge.negated else 0)
                if stratum[edge.head] < required:
                    stratum[edge.head] = required
                    changed = True
        layers: Dict[int, List[str]] = defaultdict(list)
        for pred, level in stratum.items():
            layers[level].append(pred)
        return [sorted(layers[level]) for level in sorted(layers)]

    def rule_strata(self) -> List[List[str]]:
        """Rule names grouped by the stratum of their head predicate."""
        by_pred = {pred: i for i, layer in enumerate(self.strata())
                   for pred in layer}
        layers: Dict[int, List[str]] = defaultdict(list)
        for spec in self.specs:
            layers[by_pred[spec.predicate]].append(spec.name)
        return [layers[level] for level in sorted(layers)]


def _singleton_variables(spec: RuleSpec) -> List[str]:
    counts: Counter = Counter()
    for lit in (spec.head, *spec.body):
        for var in lit.variables():
            counts[var.name] += 1
    return sorted(
        name for name, count in counts.items()
        if count == 1 and not name.startswith("_")
    )


def check_rule(spec: RuleSpec) -> List[Diagnostic]:
    """Per-rule lint: safety/range restriction plus style warnings."""
    span = SourceSpan(text=spec.source) if spec.source else None
    out: List[Diagnostic] = []
    for issue in safety_issues(spec.head, spec.body):
        out.append(
            make(
                _SAFETY_CODES[issue.kind],
                issue.message,
                subject=spec.name,
                span=span,
                hint="bind every head and negated variable in a positive "
                     "body literal",
            )
        )
    singletons = _singleton_variables(spec)
    if spec.body and singletons:
        out.append(
            make(
                "CML003",
                f"variables {singletons} occur exactly once",
                subject=spec.name,
                span=span,
                hint="prefix intentional don't-care variables with '_'",
            )
        )
    if spec.predicate in RESERVED_EDB:
        out.append(
            make(
                "CML006",
                f"rule derives reserved predicate {spec.predicate!r}; only "
                "'attr' conclusions are materialised as propositions",
                subject=spec.name,
                span=span,
                hint="derive 'attr(...)' or a fresh IDB predicate instead",
            )
        )
    return out


def analyze_rules(
    specs: Sequence[RuleSpec],
    report: Optional[DiagnosticReport] = None,
) -> Tuple[DiagnosticReport, RuleGraph]:
    """Full rule-set analysis: per-rule lint + stratification.

    Returns the report and the dependency graph (for callers that want
    the strata programmatically).
    """
    report = report if report is not None else DiagnosticReport()
    for spec in specs:
        report.extend(check_rule(spec))
    graph = RuleGraph(specs)
    cycles = graph.negative_cycles()
    for component, negative in cycles:
        rules = sorted({e.rule for e in negative})
        edges = ", ".join(f"{e.head} -> not {e.body}" for e in negative)
        report.add(
            make(
                "CML004",
                f"recursion through negation among predicates {component} "
                f"(negative edges: {edges}; rules: {rules})",
                subject=rules[0] if rules else "",
                hint="break the cycle or move the negated predicate to a "
                     "lower stratum",
            )
        )
    if not cycles and graph.specs:
        ordering = " | ".join(
            ", ".join(layer) for layer in graph.strata() if layer
        )
        report.add(
            make(
                "CML005",
                f"stratified evaluation order: {ordering}",
                hint="",
            )
        )
    return report, graph
