"""Diagnostic objects for the static model analyzer ("CML lint").

Every finding of the analyzer is a frozen :class:`Diagnostic` carrying a
stable code (``CML001``...), a severity, the subject it is about (a rule
name, constraint name or object name), an optional source span and a fix
hint.  Codes are registered in :data:`CODES` so the CLI can print a
one-line description per code and tests can assert stability.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering supports ``max()`` over a report."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


#: code -> (default severity, one-line description)
CODES: Dict[str, Tuple[Severity, str]] = {
    # -- rule safety and stratification (CML00x) ------------------------
    "CML001": (Severity.ERROR,
               "unsafe rule: head variable not bound in a positive body literal"),
    "CML002": (Severity.ERROR,
               "unsafe negation: negated literal uses an unbound variable"),
    "CML003": (Severity.WARNING,
               "singleton variable: body variable used exactly once"),
    "CML004": (Severity.ERROR,
               "recursion through negation: rule set is not stratifiable"),
    "CML005": (Severity.INFO,
               "stratification: evaluation order of rule strata"),
    "CML006": (Severity.WARNING,
               "rule derives a reserved EDB predicate that is never "
               "materialised as propositions"),
    "CML007": (Severity.ERROR,
               "rule head may not be negated"),
    "CML008": (Severity.ERROR,
               "rule syntax error"),
    # -- constraint safety (CML01x) -------------------------------------
    "CML010": (Severity.ERROR,
               "constraint syntax error"),
    "CML011": (Severity.ERROR,
               "unbound variable: constraint uses a free variable that is "
               "neither 'self' nor quantifier-bound"),
    "CML012": (Severity.ERROR,
               "constraint quantifies over or tests membership in an "
               "undefined class"),
    "CML013": (Severity.WARNING,
               "quantifier variable never used in the body"),
    "CML014": (Severity.ERROR,
               "constraint attached to an undefined class"),
    # -- schema / frame lint (CML03x) -----------------------------------
    "CML030": (Severity.ERROR, "isa cycle in the specialization graph"),
    "CML031": (Severity.ERROR, "instanceof of an undefined class"),
    "CML032": (Severity.ERROR, "undefined attribute category"),
    "CML033": (Severity.WARNING, "attribute target is undefined"),
    "CML034": (Severity.ERROR, "isa of an undefined class"),
    "CML035": (Severity.ERROR, "frame syntax error"),
    # -- temporal prechecks (CML04x) ------------------------------------
    "CML040": (Severity.ERROR,
               "temporal constraint network is path-inconsistent"),
    "CML041": (Severity.WARNING,
               "link validity extends outside its endpoints' validity"),
    # -- concurrency lint (CCY0xx) --------------------------------------
    "CCY001": (Severity.ERROR,
               "guarded field accessed without holding its declared lock"),
    "CCY002": (Severity.ERROR,
               "guarded field written under a read-side (shared) hold"),
    "CCY003": (Severity.WARNING,
               "guarded-by names a lock attribute the class never defines"),
    "CCY004": (Severity.WARNING,
               "malformed concurrency annotation comment"),
    "CCY010": (Severity.ERROR,
               "blocking call while holding a critical (no-blocking) lock"),
    "CCY020": (Severity.ERROR,
               "inconsistent lock acquisition order (potential deadlock "
               "cycle)"),
    "CCY021": (Severity.INFO,
               "lock-order summary: acquisition graph statistics"),
}


@dataclass(frozen=True)
class SourceSpan:
    """Where a diagnostic points in model source text."""

    line: int = 0
    column: int = 0
    text: str = ""

    def __repr__(self) -> str:
        where = f"{self.line}:{self.column}" if self.line else "-"
        return f"<{where} {self.text!r}>" if self.text else f"<{where}>"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    subject: str = ""
    span: Optional[SourceSpan] = None
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    @property
    def is_error(self) -> bool:
        """Error severity?"""
        return self.severity is Severity.ERROR

    def render(self) -> str:
        """One human-readable line."""
        subject = f" [{self.subject}]" if self.subject else ""
        hint = f"  (hint: {self.hint})" if self.hint else ""
        span = ""
        if self.span is not None and self.span.text:
            span = f"\n    at: {self.span.text}"
        return f"{self.code} {self.severity}{subject}: {self.message}{hint}{span}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form."""
        out: Dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
            "hint": self.hint,
        }
        if self.span is not None:
            out["span"] = {
                "line": self.span.line,
                "column": self.span.column,
                "text": self.span.text,
            }
        return out


def make(code: str, message: str, subject: str = "",
         span: Optional[SourceSpan] = None, hint: str = "") -> Diagnostic:
    """A diagnostic with the code's registered default severity."""
    severity, _ = CODES[code]
    return Diagnostic(code, severity, message, subject=subject,
                      span=span, hint=hint)


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with rendering helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        """Append one diagnostic; returns it."""
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append several diagnostics."""
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "DiagnosticReport") -> "DiagnosticReport":
        """Append another report's diagnostics; returns self."""
        self.diagnostics.extend(other.diagnostics)
        return self

    def promote_warnings(self) -> "DiagnosticReport":
        """A copy with every warning promoted to error severity.

        This is what ``--strict`` means for the analysis CLIs: the exit
        status still reflects *error-severity findings only*, but under
        strict a warning *is* one.
        """
        promoted = DiagnosticReport()
        for diagnostic in self.diagnostics:
            if diagnostic.severity is Severity.WARNING:
                diagnostic = replace(diagnostic, severity=Severity.ERROR)
            promoted.add(diagnostic)
        return promoted

    def errors(self) -> List[Diagnostic]:
        """Error-level diagnostics only."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        """Warning-level diagnostics only."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_code(self, code: str) -> List[Diagnostic]:
        """Diagnostics carrying one code."""
        return [d for d in self.diagnostics if d.code == code]

    @property
    def ok(self) -> bool:
        """No error-level diagnostics?"""
        return not self.errors()

    def raise_if_errors(self) -> None:
        """Raise :class:`~repro.errors.AnalysisError` on errors."""
        from repro.errors import AnalysisError

        errors = self.errors()
        if errors:
            raise AnalysisError(errors)

    def render_text(self) -> str:
        """A human-readable multi-line report."""
        if not self.diagnostics:
            return "analysis: clean (no diagnostics)"
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"analysis: {len(self.errors())} error(s), "
            f"{len(self.warnings())} warning(s), "
            f"{len(self.diagnostics)} total"
        )
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """A machine-readable JSON report."""
        return json.dumps(
            {
                "ok": self.ok,
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=indent,
        )

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return (f"DiagnosticReport(errors={len(self.errors())}, "
                f"warnings={len(self.warnings())}, total={len(self)})")
