"""Static model analysis ("CML lint") for the ConceptBase kernel.

Runs at definition/commit time, before anything touches the knowledge
base: rule stratification and safety, constraint safety and relevance
footprints, schema/frame lint, and temporal prechecks.  See
``python -m repro.analysis --codes`` for the diagnostic catalogue.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    Severity,
    SourceSpan,
)
from repro.analysis.relevance import (
    ConstraintFootprint,
    LabelDependencies,
    RelevanceIndex,
    footprint_of,
)
from repro.analysis.rules import (
    RuleGraph,
    RuleSpec,
    analyze_rules,
    check_rule,
    spec_from_rule,
    spec_from_text,
)
from repro.analysis.constraints import check_constraint
from repro.analysis.schema import check_frame, check_frames, check_processor
from repro.analysis.temporal import check_link_validity, check_network
from repro.analysis.analyzer import ModelAnalyzer, analyze_model

__all__ = [
    "CODES",
    "ConstraintFootprint",
    "Diagnostic",
    "DiagnosticReport",
    "LabelDependencies",
    "ModelAnalyzer",
    "RelevanceIndex",
    "RuleGraph",
    "RuleSpec",
    "Severity",
    "SourceSpan",
    "analyze_model",
    "analyze_rules",
    "check_constraint",
    "check_frame",
    "check_frames",
    "check_link_validity",
    "check_network",
    "check_processor",
    "check_rule",
    "footprint_of",
    "spec_from_rule",
    "spec_from_text",
]
