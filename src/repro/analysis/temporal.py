"""Temporal prechecks: Allen path consistency and validity containment.

Two static checks over the time dimension:

- :func:`check_network` runs Allen's path-consistency algorithm on a
  *copy* of a qualitative constraint network and reports inconsistency
  as a diagnostic instead of a :class:`~repro.errors.TimeError` — the
  commit-time precheck for symbolic temporal models;
- :func:`check_link_validity` scans a proposition base for links whose
  validity interval sticks out of their endpoints' validity (legal, but
  almost always an authoring mistake when versioning models).
"""

from __future__ import annotations

from typing import List

from repro.errors import TimeError
from repro.analysis.diagnostics import Diagnostic, make
from repro.propositions.processor import PropositionProcessor
from repro.timecalc.allen import AllenNetwork


def check_network(network: AllenNetwork) -> List[Diagnostic]:
    """Path-consistency precheck; the input network is left untouched."""
    scratch = AllenNetwork()
    for node in network.nodes:
        scratch.add_interval(node)
    try:
        for (a, b), relations in network._edges.items():
            scratch.constrain(a, b, relations)
        scratch.propagate()
    except TimeError as exc:
        return [
            make(
                "CML040",
                f"temporal network inconsistent: {exc}",
                subject=",".join(network.nodes),
                hint="relax one of the interval constraints",
            )
        ]
    return []


def check_link_validity(processor: PropositionProcessor) -> List[Diagnostic]:
    """Links whose validity exceeds their endpoints' validity."""
    out: List[Diagnostic] = []
    for prop in processor.store:
        if not prop.is_link or prop.is_individual:
            continue
        for role in ("source", "destination"):
            other = getattr(prop, role)
            if not processor.exists(other):
                continue
            endpoint = processor.get(other)
            if not endpoint.time.contains(prop.time):
                out.append(
                    make(
                        "CML041",
                        f"link {prop.pid!r} ({prop.source} --{prop.label}--> "
                        f"{prop.destination}) is valid on {prop.time!r} but "
                        f"its {role} only on {endpoint.time!r}",
                        subject=prop.pid,
                        hint="clip the link's validity to the endpoint's",
                    )
                )
    return out
