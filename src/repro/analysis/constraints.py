"""Safety / range-restriction lint for assertion-language constraints.

A constraint may use the distinguished free variable ``self`` (bound to
each checked instance) and quantifier-bound variables; every *other*
free identifier must name an object that exists in the knowledge base,
otherwise the evaluator would silently treat it as an opaque constant
and the constraint can never mean what its author intended.  These
checks run at attach time (strict mode) and from :mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic, SourceSpan, make
from repro.assertions.ast import (
    BinaryOp,
    Expression,
    InAtom,
    Not,
    Quantifier,
)
from repro.consistency.checker import SELF

#: Predicate answering "does this name exist in the model?".
ExistsOracle = Callable[[str], bool]


def _collect(expr: Expression, quantified: List[Quantifier],
             in_classes: Set[str]) -> None:
    if isinstance(expr, Quantifier):
        quantified.append(expr)
        _collect(expr.body, quantified, in_classes)
    elif isinstance(expr, BinaryOp):
        _collect(expr.left, quantified, in_classes)
        _collect(expr.right, quantified, in_classes)
    elif isinstance(expr, Not):
        _collect(expr.operand, quantified, in_classes)
    elif isinstance(expr, InAtom):
        in_classes.add(expr.class_name)


def check_constraint(
    name: str,
    attached_to: str,
    expression: Expression,
    source: str = "",
    exists: Optional[ExistsOracle] = None,
) -> List[Diagnostic]:
    """Lint one constraint definition.

    ``exists`` is an oracle over the knowledge base (e.g.
    ``processor.exists``); without it, every non-``self`` free variable
    is flagged since nothing can vouch for it.
    """
    span = SourceSpan(text=source) if source else None
    out: List[Diagnostic] = []

    free = set(expression.free_variables()) - {SELF}
    unbound = sorted(
        var for var in free
        if not isinstance(var, str) or exists is None or not exists(var)
    )
    if unbound:
        out.append(
            make(
                "CML011",
                f"free variables {unbound} are neither 'self', "
                "quantifier-bound, nor names of existing objects",
                subject=name,
                span=span,
                hint="bind them with forall/exists var/Class or define "
                     "the objects first",
            )
        )

    quantified: List[Quantifier] = []
    referenced_classes: Set[str] = set()
    _collect(expression, quantified, referenced_classes)
    for quant in quantified:
        body_free = quant.body.free_variables()
        for var, cls in quant.bindings:
            referenced_classes.add(cls)
            if var not in body_free:
                out.append(
                    make(
                        "CML013",
                        f"quantifier variable {var!r} (over {cls}) is never "
                        "used in the body",
                        subject=name,
                        span=span,
                        hint="drop the binding or use the variable",
                    )
                )

    if exists is not None:
        for cls in sorted(referenced_classes):
            if not exists(cls):
                out.append(
                    make(
                        "CML012",
                        f"references undefined class {cls!r}",
                        subject=name,
                        span=span,
                        hint="define the class before attaching the constraint",
                    )
                )
        if not exists(attached_to):
            out.append(
                make(
                    "CML014",
                    f"attached to undefined class {attached_to!r}",
                    subject=name,
                    span=span,
                    hint="define the class before attaching the constraint",
                )
            )
    return out
