"""``python -m repro.analysis`` — the CML lint command line.

Accepts model files in two forms:

- **model scripts** (any non-``.py`` file): ``TELL ... END`` frames
  interleaved with ``RULE [name:] head :- body.`` and
  ``CONSTRAINT Class Name: assertion`` directives (``%`` comments);
- **python modules** (``.py``): the file is executed (with
  ``__name__`` set to ``__repro_analysis__`` so ``main()`` guards do
  not fire) and the resulting namespace is scanned for ``ConceptBase``
  / ``GKBMS`` instances, TELL scripts and TaxisDL designs.

Exit status: 0 clean, 1 error diagnostics (with ``--strict``: also on
warnings), 2 when an input could not be loaded.
"""

from __future__ import annotations

import argparse
import runpy
import sys
from typing import List, Tuple

from repro.errors import ReproError
from repro.analysis.analyzer import ModelAnalyzer
from repro.analysis.cli import EXIT_UNLOADABLE, emit_report, list_codes
from repro.analysis.diagnostics import DiagnosticReport, make
from repro.obs.logging import StreamSink, log, set_sink
from repro.objects.frame import parse_frames


def _split_directives(text: str) -> Tuple[str, List[Tuple[str, str]],
                                          List[Tuple[str, str, str]]]:
    """Split a model script into (frame text, rules, constraints)."""
    frame_lines: List[str] = []
    rules: List[Tuple[str, str]] = []
    constraints: List[Tuple[str, str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if line.startswith("%"):
            continue
        if line.upper().startswith("RULE "):
            body = line[5:].strip()
            name = f"rule@{lineno}"
            if ":" in body and ":-" not in body.split(":", 1)[0]:
                maybe_name, rest = body.split(":", 1)
                if maybe_name.strip().isidentifier():
                    name, body = maybe_name.strip(), rest.strip()
            rules.append((name, body))
        elif line.upper().startswith("CONSTRAINT "):
            body = line[11:].strip()
            header, _, assertion = body.partition(":")
            parts = header.split()
            if len(parts) != 2 or not assertion.strip():
                raise ReproError(
                    f"line {lineno}: expected "
                    f"'CONSTRAINT Class Name: assertion', got {line!r}"
                )
            constraints.append((parts[0], parts[1], assertion.strip()))
        else:
            frame_lines.append(raw)
    return "\n".join(frame_lines), rules, constraints


def _analyze_script(text: str) -> DiagnosticReport:
    """Analyze one model script: tell frames, then lint everything."""
    from repro.conceptbase import ConceptBase

    frame_text, rules, constraints = _split_directives(text)
    cb = ConceptBase()
    report = DiagnosticReport()
    frames = parse_frames(frame_text) if frame_text.strip() else []
    analyzer = ModelAnalyzer(cb.propositions)
    for frame in frames:
        analyzer.add_frame(frame)
    # Pre-lint the frames, then tell the clean ones so constraints and
    # rules see the declared classes.
    pre = analyzer.analyze()
    report.merge(pre)
    flagged = {d.subject for d in pre.errors()}
    for frame in frames:
        if frame.name in flagged:
            continue
        try:
            cb.objects.tell(frame)
        except ReproError as exc:
            report.add(make("CML035", f"telling {frame.name!r} failed: {exc}",
                            subject=frame.name))
    final = ModelAnalyzer(cb.propositions)
    for name, rule_text in rules:
        final.add_rule_text(name, rule_text)
    for cls, name, assertion in constraints:
        final.add_constraint_text(name, cls, assertion)
    report.merge(final.analyze())
    return report


def _analyze_python(path: str) -> DiagnosticReport:
    """Execute a python model module and analyze what it defines."""
    from repro.conceptbase import ConceptBase
    from repro.core.gkbms import GKBMS
    from repro.languages.taxisdl.ast import TDLModel
    from repro.languages.taxisdl.parser import parse_taxisdl

    namespace = runpy.run_path(path, run_name="__repro_analysis__")
    report = DiagnosticReport()
    analyzed = 0
    for name, value in sorted(namespace.items()):
        if isinstance(value, ConceptBase):
            analyzed += 1
            report.merge(_analyze_conceptbase(value))
        elif isinstance(value, GKBMS):
            analyzed += 1
            analyzer = ModelAnalyzer(value.processor)
            analyzer.add_rules(value.rules.rules().items())
            analyzer.add_constraint_defs(value.consistency.constraints().values())
            report.merge(analyzer.analyze())
        elif isinstance(value, TDLModel):
            analyzed += 1
            report.extend(_lint_design(value))
        elif isinstance(value, str) and "TELL" in value and "END" in value:
            analyzed += 1
            report.merge(_analyze_script(value))
        elif isinstance(value, str) and "entity class" in value:
            analyzed += 1
            try:
                report.extend(_lint_design(parse_taxisdl(value, model_name=name)))
            except ReproError as exc:
                report.add(make("CML035",
                                f"TaxisDL source {name!r} failed to parse: {exc}",
                                subject=name))
    if not analyzed:
        log("warning", f"{path}: no model objects found to analyze",
            logger="repro.analysis")
    return report


def _lint_design(model) -> List:
    """TaxisDL design lint: attribute targets must be entity classes."""
    known = set(model.classes)
    out = []
    for cls_name in sorted(model.classes):
        for attr in model.classes[cls_name].attributes:
            if attr.target not in known:
                out.append(
                    make("CML033",
                         f"design attribute {cls_name}.{attr.name} targets "
                         f"undefined entity class {attr.target!r}",
                         subject=cls_name)
                )
    return out


def _analyze_conceptbase(cb) -> DiagnosticReport:
    analyzer = ModelAnalyzer(cb.propositions)
    analyzer.add_rules(cb.rules.rules().items())
    analyzer.add_constraint_defs(cb.consistency.constraints().values())
    return analyzer.analyze()


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis (CML lint) for conceptual models.",
    )
    parser.add_argument("paths", nargs="*", help="model scripts or .py modules")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as fatal")
    parser.add_argument("--codes", action="store_true",
                        help="list all diagnostic codes and exit")
    args = parser.parse_args(argv)
    # a CLI is an application: its output is invited, via a stream sink
    # for the duration of the run (libraries importing this module stay
    # silent — NullSink default — and in-process callers get it back)
    previous = set_sink(StreamSink())
    try:
        return _run(parser, args)
    finally:
        set_sink(previous)


def _run(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.codes:
        return list_codes(logger="repro.analysis")
    if not args.paths:
        parser.print_usage(sys.stderr)
        return EXIT_UNLOADABLE

    report = DiagnosticReport()
    for path in args.paths:
        try:
            if path.endswith(".py"):
                report.merge(_analyze_python(path))
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                report.merge(_analyze_script(text))
        except (OSError, ReproError) as exc:
            log("error", f"{path}: {exc}", logger="repro.analysis")
            return EXIT_UNLOADABLE

    return emit_report(report, as_json=args.json, strict=args.strict,
                       logger="repro.analysis")


if __name__ == "__main__":
    sys.exit(main())
