"""``python -m repro.analysis.concurrency`` — the concurrency lint CLI.

Lints python files (or directories, recursively) for guarded-by
violations, blocking calls under critical locks and inconsistent lock
acquisition order.  With no paths it lints the installed ``repro``
package itself — the form the ``concurrency-lint`` CI job runs:

    python -m repro.analysis.concurrency --strict

Exit status (shared with ``python -m repro.analysis``): 0 clean, 1
error-severity findings (``--strict`` promotes warnings first), 2 when
an input path could not be read.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

import repro
from repro.analysis.cli import EXIT_UNLOADABLE, emit_report, list_codes
from repro.analysis.concurrency.lint import lint_paths
from repro.obs.logging import StreamSink, log, set_sink

_LOGGER = "repro.analysis.concurrency"


def _default_paths() -> List[str]:
    """The installed repro package tree (src/repro when run in-tree)."""
    return [os.path.dirname(os.path.abspath(repro.__file__))]


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.concurrency",
        description="Static concurrency lint (guarded-by, blocking "
                    "calls, lock order) for python sources.",
    )
    parser.add_argument("paths", nargs="*",
                        help="python files or directories "
                             "(default: the repro package)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as fatal")
    parser.add_argument("--codes", action="store_true",
                        help="list the CCY diagnostic codes and exit")
    args = parser.parse_args(argv)
    previous = set_sink(StreamSink())
    try:
        return _run(args)
    finally:
        set_sink(previous)


def _run(args: argparse.Namespace) -> int:
    if args.codes:
        return list_codes(prefix="CCY", logger=_LOGGER)
    paths = args.paths or _default_paths()
    for path in paths:
        if not os.path.exists(path):
            log("error", f"{path}: no such file or directory",
                logger=_LOGGER)
            return EXIT_UNLOADABLE
    try:
        report = lint_paths(paths)
    except OSError as exc:
        log("error", str(exc), logger=_LOGGER)
        return EXIT_UNLOADABLE
    return emit_report(report, as_json=args.json, strict=args.strict,
                       logger=_LOGGER)


if __name__ == "__main__":
    sys.exit(main())
