"""Runtime lockdep: acquisition-order tracking for the service tier.

The Linux kernel's lockdep observation: a deadlock needs an
*inconsistent acquisition order* (thread 1 takes A then B, thread 2
takes B then A), and the inconsistency is visible on runs that happen
not to interleave badly.  So instead of waiting for the hang, record
every ``outer held → inner acquired`` pair into a directed graph and
report any cycle as a *potential* deadlock the moment its last edge
appears — even if every individual run completed fine.

:class:`LockDep` is the graph; :class:`TrackedLock` /
:class:`TrackedRLock` / :class:`TrackedCondition` /
:class:`TrackedReadWriteLock` are drop-in wrappers that feed it.  The
``make_*`` factories hand out tracked wrappers when the sanitizer is
armed (``REPRO_LOCKDEP=1`` in the environment, or :func:`install` from
a test fixture) and *bare* :mod:`threading` primitives otherwise — the
disabled path adds zero indirection to lock operations.

Edges are keyed by lock **name** (the class, in lockdep terms), not
instance: every ``Session.lock`` shares the node
``server.session.lock``, so an order inversion between two different
sessions' locks is still a reported cycle.  A reentrant re-acquisition
of the *same instance* on the same side is skipped (RLock semantics);
a read→write upgrade attempt on one :class:`ReadWriteLock` instance is
reported immediately — the writer side waits for readers to drain, so
upgrading self-deadlocks by construction.

Exported through the PR 4 metrics registry (when one is bound):
``sanitizer.order_edges`` (gauge), ``sanitizer.lock_cycles`` (counter)
and per-class held-time histograms ``sanitizer.held_ms.<class>``.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.diagnostics import DiagnosticReport, make

# NOTE: repro.server.locks is imported lazily inside the rwlock wrapper
# and factory: importing it initialises the whole repro.server package,
# whose modules import *this* module for their lock factories.

__all__ = [
    "LockDep", "TrackedLock", "TrackedRLock", "TrackedCondition",
    "TrackedReadWriteLock", "enabled", "install", "manager",
    "make_lock", "make_rlock", "make_condition", "make_rwlock",
]

#: Environment switch: any value except ""/"0" arms the sanitizer.
ENV_FLAG = "REPRO_LOCKDEP"


@dataclass(frozen=True)
class CycleReport:
    """One detected potential deadlock."""

    nodes: Tuple[str, ...]          # cycle path, first node repeated last
    witness: str                    # which thread closed it, via what


class _Held:
    """One entry of a thread's hold stack."""

    __slots__ = ("node", "instance", "since")

    def __init__(self, node: str, instance: object, since: float) -> None:
        self.node = node
        self.instance = instance
        self.since = since


class LockDep:
    """The acquisition-order graph and its per-thread hold stacks.

    The manager's own mutex is a *bare* :class:`threading.Lock` and its
    metric objects use bare locks too — the sanitizer must never trip
    over itself recording itself.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._tls = threading.local()
        # node -> set of nodes acquired while node was held
        self._edges: Dict[str, Set[str]] = {}
        # (outer, inner) -> "thread-name" witness string
        self._witness: Dict[Tuple[str, str], str] = {}
        self._cycle_keys: Set[frozenset] = set()
        self._cycles: List[CycleReport] = []
        self._g_edges = None
        self._c_cycles = None
        self._registry = None

    # -- metrics -----------------------------------------------------------

    def bind_registry(self, registry) -> "LockDep":
        """Export counts through a :class:`MetricsRegistry`."""
        with self._mutex:
            self._registry = registry
            self._g_edges = registry.gauge("sanitizer.order_edges")
            self._c_cycles = registry.counter("sanitizer.lock_cycles")
            self._g_edges.set(len(self._witness))
            self._c_cycles.set(len(self._cycles))
        return self

    def _held_histogram(self, node: str):
        registry = self._registry
        if registry is None:
            return None
        return registry.histogram(
            "sanitizer.held_ms." + node.replace(":", ".")
        )

    # -- per-thread hold stack ---------------------------------------------

    def _stack(self) -> List[_Held]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def held_nodes(self) -> List[str]:
        """The current thread's held lock classes, outermost first."""
        return [held.node for held in self._stack()]

    # -- acquisition hooks -------------------------------------------------

    def note_acquired(self, name: str, instance: object,
                      side: str = "") -> None:
        """Record one successful acquisition by the current thread."""
        node = f"{name}:{side}" if side else name
        stack = self._stack()
        new_edges: List[Tuple[str, str, bool]] = []
        for held in stack:
            if held.node == node:
                # Reentrant re-acquisition (RLock) — never an edge.
                continue
            same_instance = held.instance is instance
            new_edges.append((held.node, node, same_instance))
        stack.append(_Held(node, instance, time.perf_counter()))
        if not new_edges:
            return
        thread = threading.current_thread().name
        with self._mutex:
            for outer, inner, same_instance in new_edges:
                if (outer, inner) not in self._witness:
                    self._witness[(outer, inner)] = thread
                    self._edges.setdefault(outer, set()).add(inner)
                    if self._g_edges is not None:
                        self._g_edges.set(len(self._witness))
                    if same_instance:
                        # read → write upgrade of one rwlock instance:
                        # an immediate self-deadlock, not just an edge.
                        self._record_cycle((outer, inner, outer), thread)
                    else:
                        self._close_cycle(outer, inner, thread)

    def note_released(self, name: str, instance: object,
                      side: str = "") -> None:
        """Record one release; observes the held-time histogram."""
        node = f"{name}:{side}" if side else name
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            held = stack[index]
            if held.instance is instance and held.node == node:
                del stack[index]
                histogram = self._held_histogram(node)
                if histogram is not None:
                    histogram.observe(
                        (time.perf_counter() - held.since) * 1000.0
                    )
                return
        # Unmatched release (lock handed between threads): not an order
        # fact, so not an error — just nothing to pop.

    # -- cycle detection ---------------------------------------------------

    def _close_cycle(self, outer: str, inner: str, thread: str) -> None:
        """The new edge outer→inner closes a cycle iff inner already
        reaches outer; called with the mutex held."""
        path = self._find_path(inner, outer)
        if path is None:
            return
        # path is [inner, ..., outer]; prepending outer closes the ring.
        self._record_cycle(tuple([outer] + path), thread)

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """A node path start..goal through the edge graph, or None."""
        seen = {start}
        frontier = [[start]]
        while frontier:
            path = frontier.pop()
            node = path[-1]
            if node == goal:
                return path
            for nxt in sorted(self._edges.get(node, ())):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(path + [nxt])
        return None

    def _record_cycle(self, nodes: Tuple[str, ...], thread: str) -> None:
        key = frozenset(nodes)
        if key in self._cycle_keys:
            return
        self._cycle_keys.add(key)
        witness = (f"edge {nodes[0]}→{nodes[1]} closed by thread "
                   f"{thread!r}")
        self._cycles.append(CycleReport(nodes=nodes, witness=witness))
        if self._c_cycles is not None:
            self._c_cycles.inc()

    # -- inspection --------------------------------------------------------

    def edges(self) -> List[Tuple[str, str]]:
        """All observed (outer, inner) acquisition pairs, sorted."""
        with self._mutex:
            return sorted(self._witness)

    def cycles(self) -> List[CycleReport]:
        """Every potential deadlock observed so far."""
        with self._mutex:
            return list(self._cycles)

    def report(self) -> DiagnosticReport:
        """The findings as PR 1 diagnostics (CCY020 per cycle + a
        CCY021 summary line)."""
        with self._mutex:
            cycles = list(self._cycles)
            edge_count = len(self._witness)
        out = DiagnosticReport()
        for cycle in cycles:
            out.add(make(
                "CCY020",
                "runtime lock-order cycle: " + " → ".join(cycle.nodes),
                subject=cycle.nodes[0],
                hint=cycle.witness,
            ))
        out.add(make(
            "CCY021",
            f"runtime acquisition graph: {edge_count} edge(s), "
            f"{len(cycles)} cycle(s)",
            subject="lockdep",
        ))
        return out


# ---------------------------------------------------------------------------
# Tracked primitives
# ---------------------------------------------------------------------------


class TrackedLock:
    """A :class:`threading.Lock` that reports to a :class:`LockDep`."""

    _factory: Callable[[], object] = staticmethod(threading.Lock)

    def __init__(self, manager: LockDep, name: str) -> None:
        self._manager = manager
        self.name = name
        self._lock = self._factory()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._manager.note_acquired(self.name, self)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._manager.note_released(self.name, self)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class TrackedRLock(TrackedLock):
    """Reentrant variant; re-acquisitions never become order edges."""

    _factory = staticmethod(threading.RLock)

    def locked(self) -> bool:  # RLock has no locked() before 3.12
        if self._lock.acquire(blocking=False):
            self._lock.release()
            return False
        return True


class TrackedCondition:
    """A :class:`threading.Condition` (own RLock) that reports holds —
    including the implicit release/re-acquire around :meth:`wait`."""

    def __init__(self, manager: LockDep, name: str) -> None:
        self._manager = manager
        self.name = name
        self._cond = threading.Condition()

    def acquire(self, *args) -> bool:
        acquired = self._cond.acquire(*args)
        if acquired:
            self._manager.note_acquired(self.name, self)
        return acquired

    def release(self) -> None:
        self._cond.release()
        self._manager.note_released(self.name, self)

    def __enter__(self) -> "TrackedCondition":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def wait(self, timeout: Optional[float] = None) -> bool:
        # wait drops the lock while sleeping: mirror that in the hold
        # stack, or every wake would look like a fresh nested acquire.
        self._manager.note_released(self.name, self)
        try:
            return self._cond.wait(timeout)
        finally:
            self._manager.note_acquired(self.name, self)

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: Optional[float] = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        result = predicate()
        while not result:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self.wait(remaining)
            else:
                self.wait()
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:
        return f"<TrackedCondition {self.name}>"


class TrackedReadWriteLock:
    """A :class:`~repro.server.locks.ReadWriteLock` (by delegation)
    whose read and write sides are distinct lockdep nodes
    (``name:read`` / ``name:write``) — so a read→write upgrade attempt
    is itself a visible order fact."""

    def __init__(self, manager: LockDep, name: str) -> None:
        from repro.server.locks import ReadWriteLock

        self._manager = manager
        self.name = name
        self._lock = ReadWriteLock()

    def acquire_read(self, timeout: Optional[float] = None) -> None:
        self._lock.acquire_read(timeout)
        self._manager.note_acquired(self.name, self, side="read")

    def release_read(self) -> None:
        self._manager.note_released(self.name, self, side="read")
        self._lock.release_read()

    @contextmanager
    def read_locked(self,
                    timeout: Optional[float] = None) -> Iterator[None]:
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    def acquire_write(self, timeout: Optional[float] = None) -> None:
        self._lock.acquire_write(timeout)
        self._manager.note_acquired(self.name, self, side="write")

    def release_write(self) -> None:
        self._manager.note_released(self.name, self, side="write")
        self._lock.release_write()

    @contextmanager
    def write_locked(self,
                     timeout: Optional[float] = None) -> Iterator[None]:
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return f"<TrackedReadWriteLock {self.name}>"


# ---------------------------------------------------------------------------
# Arming and factories
# ---------------------------------------------------------------------------

_manager: Optional[LockDep] = None
_install_mutex = threading.Lock()


def _env_armed() -> bool:
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def install(new_manager: Optional[LockDep]) -> Callable[[], None]:
    """Install a manager process-wide (``None`` disarms); returns a
    zero-argument restore callable — the conftest fixture's teardown."""
    global _manager
    with _install_mutex:
        previous = _manager
        _manager = new_manager

    def restore() -> None:
        global _manager
        with _install_mutex:
            _manager = previous

    return restore


def manager() -> Optional[LockDep]:
    """The active manager: an installed one, else one auto-created on
    first use when ``REPRO_LOCKDEP`` is set, else ``None``."""
    global _manager
    if _manager is not None:
        return _manager
    if not _env_armed():
        return None
    with _install_mutex:
        if _manager is None:
            _manager = LockDep()
        return _manager


def enabled() -> bool:
    """Is the sanitizer armed right now?"""
    return manager() is not None


def make_lock(name: str):
    """A mutex: tracked when armed, bare :class:`threading.Lock` not."""
    active = manager()
    if active is None:
        return threading.Lock()
    return TrackedLock(active, name)


def make_rlock(name: str):
    """A reentrant mutex, tracked when armed."""
    active = manager()
    if active is None:
        return threading.RLock()
    return TrackedRLock(active, name)


def make_condition(name: str):
    """A condition variable (own RLock), tracked when armed."""
    active = manager()
    if active is None:
        return threading.Condition()
    return TrackedCondition(active, name)


def make_rwlock(name: str):
    """A reader/writer lock, tracked when armed."""
    active = manager()
    if active is None:
        from repro.server.locks import ReadWriteLock

        return ReadWriteLock()
    return TrackedReadWriteLock(active, name)
