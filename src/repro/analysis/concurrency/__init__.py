"""Concurrency sanitizer: static guarded-by lint + runtime lockdep.

Two cooperating passes over the service tier's locking discipline,
both reporting through the PR 1 diagnostics framework (``CCY0xx``
codes):

- :mod:`repro.analysis.concurrency.lint` — an AST pass enforcing
  ``# guarded-by:`` declarations, forbidding blocking calls under
  critical locks, and checking static lock-acquisition order;
- :mod:`repro.analysis.concurrency.lockdep` — instrumented lock
  wrappers recording the runtime acquisition-order graph and reporting
  cycles as potential deadlocks.

Run the static pass with ``python -m repro.analysis.concurrency``; arm
the runtime pass with ``REPRO_LOCKDEP=1``.
"""

from repro.analysis.concurrency.lint import (
    ConcurrencyLinter,
    lint_paths,
    lint_source,
)
from repro.analysis.concurrency.lockdep import (
    LockDep,
    enabled,
    install,
    make_condition,
    make_lock,
    make_rlock,
    make_rwlock,
    manager,
)

__all__ = [
    "ConcurrencyLinter", "lint_paths", "lint_source",
    "LockDep", "enabled", "install", "manager",
    "make_lock", "make_rlock", "make_condition", "make_rwlock",
]
