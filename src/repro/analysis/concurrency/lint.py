"""Static guarded-by / lock-order lint for the service tier.

The PR 1 analyzer makes *model* constraints explicit and checkable;
this pass applies the same move to the code's own concurrency
discipline.  Shared mutable attributes declare their synchronization in
a structured comment, and the lint walks the AST proving every access
honours the declaration — the python equivalent of Clang's
``GUARDED_BY`` thread-safety annotations.

**Annotation grammar** (all are ordinary ``#`` line comments)::

    self._readers = 0           # guarded-by: _cond
    self._seq = 0               # guarded-by: <atomic>
    self._state = MemoryStore() # guarded-by: external: Service._rwlock
    self._cache = {}            # guarded-by: <writer>

    def _admissible(self):      # holds: _cond
    def _process(self):         # runs-on: writer

    self._rwlock = make_rwlock("x")  # lock: critical

    return self._value          # unguarded: benign racy int read

- ``guarded-by: <attr>`` — enforced: every access must sit inside
  ``with self.<attr>`` (or ``.read_locked()`` / ``.write_locked()``),
  or in a method declaring ``# holds: <attr>``; writes under a
  read-side hold are their own violation (CCY002).
- ``guarded-by: <writer>`` — thread confinement: accesses are legal
  only in methods marked ``# runs-on: writer`` (and ``__init__``).
- ``guarded-by: <atomic>`` — a deliberately unsynchronized flag or
  monotone word; documented, never enforced.
- ``guarded-by: external: ...`` — synchronized by another object's
  lock; documented, never enforced (the lint is per-class).
- ``# lock: critical`` on a lock declaration forbids *blocking calls*
  (``fsync``, ``queue.put``, socket ``send``/``recv``,
  ``Condition.wait``, ``sleep``...) anywhere that lock is held
  (CCY010) — the GKBMS serving lock must never be held across I/O.
- ``# unguarded: <reason>`` on an access line suppresses enforcement
  for that line (use sparingly; the reason is the point).

The pass also records every *nested* lock acquisition as a directed
edge (outer → inner) into a cross-file graph and reports any cycle as
a statically inconsistent acquisition order (CCY020) — the compile-time
half of the runtime lockdep sanitizer in
:mod:`repro.analysis.concurrency.lockdep`.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import DiagnosticReport, SourceSpan, make

#: Callables whose result is a lock-like object when assigned to an
#: attribute; the mapped kind drives read/write-side and reentrancy
#: semantics.
LOCK_FACTORIES = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "cond",
    "ReadWriteLock": "rwlock",
    "TrackedLock": "lock",
    "TrackedRLock": "rlock",
    "TrackedCondition": "cond",
    "TrackedReadWriteLock": "rwlock",
    "make_lock": "lock",
    "make_rlock": "rlock",
    "make_condition": "cond",
    "make_rwlock": "rwlock",
}

#: Method names whose *call* blocks the calling thread.  Deliberately
#: conservative — dict/str methods sharing these names would drown the
#: signal (``join`` is omitted for exactly that reason).
BLOCKING_CALLS = frozenset({
    "fsync", "sleep", "sendall", "recv", "accept", "connect", "put",
    "wait", "wait_for", "select",
})

#: guard spec sentinels
_WRITER_SPECS = frozenset({"<writer>", "<writer-thread>"})
_ATOMIC_SPECS = frozenset({"<atomic>", "<unsynchronized>"})

_MARKER = re.compile(
    r"#\s*(guarded-by|holds|runs-on|lock|unguarded)\s*:\s*(.*?)\s*$"
)

_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass(frozen=True)
class GuardSpec:
    """One field's declared synchronization."""

    kind: str          # "lock" | "writer" | "atomic" | "external"
    lock: str = ""     # lock attribute name when kind == "lock"
    raw: str = ""      # the spec text as written


@dataclass
class ClassInfo:
    """Everything the lint learned about one class."""

    name: str
    path: str
    locks: Dict[str, str] = field(default_factory=dict)   # attr -> kind
    critical: Set[str] = field(default_factory=set)
    guards: Dict[str, GuardSpec] = field(default_factory=dict)
    guard_lines: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class OrderEdge:
    """One statically observed outer → inner acquisition."""

    outer: str
    inner: str
    path: str
    line: int
    method: str


class _Markers:
    """Per-line structured comments of one source file."""

    def __init__(self, source: str) -> None:
        self.by_line: Dict[int, List[Tuple[str, str]]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _MARKER.search(line)
            if match:
                self.by_line.setdefault(lineno, []).append(
                    (match.group(1), match.group(2))
                )

    def get(self, lineno: int, key: str) -> Optional[str]:
        for marker, value in self.by_line.get(lineno, ()):
            if marker == key:
                return value
        return None

    def suppressed(self, lineno: int) -> bool:
        return self.get(lineno, "unguarded") is not None


def _parse_guard(text: str) -> Optional[GuardSpec]:
    text = text.strip()
    if not text:
        return None
    if text.startswith("external:"):
        return GuardSpec("external", raw=text)
    if text in _WRITER_SPECS:
        return GuardSpec("writer", raw=text)
    if text in _ATOMIC_SPECS:
        return GuardSpec("atomic", raw=text)
    name = text[5:] if text.startswith("self.") else text
    if name.isidentifier():
        return GuardSpec("lock", lock=name, raw=text)
    return None


def _callee_name(call: ast.AST) -> Optional[str]:
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _self_attr_targets(node: ast.stmt) -> List[Tuple[str, int]]:
    """``self.X`` assignment targets of one statement, with lines."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    out = []
    for target in targets:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            out.append((target.attr, target.lineno))
    return out


def _lockish_name(attr: str) -> bool:
    lowered = attr.lower()
    return ("lock" in lowered or "cond" in lowered or "mutex" in lowered
            or "rwlock" in lowered)


def _with_lock(expr: ast.expr,
               locks: Dict[str, str]) -> Optional[Tuple[str, str, bool]]:
    """Decode a with-item into ``(lock_name, mode, is_self)``.

    ``mode`` is ``exclusive`` for plain locks/conditions, ``read`` /
    ``write`` for the ReadWriteLock context helpers.  Non-``self``
    attributes count only when they *look* like locks (order edges,
    never guard enforcement).
    """
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        base, attr = expr.value.id, expr.attr
        if base == "self":
            if attr in locks:
                return attr, "exclusive", True
            return None
        if _lockish_name(attr):
            return f"{base}.{attr}", "exclusive", False
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        method = expr.func.attr
        if method in ("read_locked", "write_locked"):
            mode = "read" if method == "read_locked" else "write"
            owner = expr.func.value
            if (isinstance(owner, ast.Attribute)
                    and isinstance(owner.value, ast.Name)):
                if owner.value.id == "self":
                    return owner.attr, mode, True
                return f"{owner.value.id}.{owner.attr}", mode, False
    return None


class _ClassCollector:
    """First pass over a ClassDef: locks, criticals, guarded fields."""

    def __init__(self, node: ast.ClassDef, path: str,
                 markers: _Markers) -> None:
        self.info = ClassInfo(name=node.name, path=path)
        self.bad_specs: List[Tuple[int, str]] = []
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            value = getattr(stmt, "value", None)
            kind = LOCK_FACTORIES.get(_callee_name(value) or "")
            for attr, lineno in _self_attr_targets(stmt):
                if kind is not None:
                    self.info.locks[attr] = kind
                    if markers.get(lineno, "lock") == "critical":
                        self.info.critical.add(attr)
                guard_text = markers.get(lineno, "guarded-by")
                if guard_text is None:
                    continue
                spec = _parse_guard(guard_text)
                if spec is None:
                    self.bad_specs.append((lineno, guard_text))
                elif attr not in self.info.guards:
                    self.info.guards[attr] = spec
                    self.info.guard_lines[attr] = lineno


class _MethodChecker(ast.NodeVisitor):
    """Second pass: walk one method enforcing guards and collecting
    lock-order edges.  The hold stack is *lexical*: nested function
    bodies inherit the holds that surround their definition."""

    def __init__(self, linter: "ConcurrencyLinter", info: ClassInfo,
                 method: ast.FunctionDef, markers: _Markers) -> None:
        self.linter = linter
        self.info = info
        self.markers = markers
        self.method = method.name
        self.exempt = method.name in _EXEMPT_METHODS
        self.writer_ctx = markers.get(method.lineno, "runs-on") == "writer"
        self.holds: List[Tuple[str, str]] = []     # (lock name, mode)
        declared = markers.get(method.lineno, "holds") or ""
        for token in declared.split(","):
            token = token.strip()
            if not token:
                continue
            name = token[5:] if token.startswith("self.") else token
            if name.isidentifier():
                self.holds.append((name, "exclusive"))
            else:
                self.linter.report.add(make(
                    "CCY004",
                    f"unparsable holds token {token!r}",
                    subject=f"{info.name}.{method.name}",
                    span=SourceSpan(line=method.lineno, text=declared),
                ))

    # -- hold-stack helpers ------------------------------------------------

    def _held_mode(self, lock: str) -> Optional[str]:
        best: Optional[str] = None
        for name, mode in self.holds:
            if name == lock:
                # the strongest concurrent hold wins
                if mode in ("exclusive", "write"):
                    return mode
                best = mode
        return best

    def _critical_held(self) -> Optional[str]:
        for name, _mode in self.holds:
            if name in self.info.critical:
                return name
        return None

    def _qualify(self, lock: str, is_self: bool) -> str:
        return f"{self.info.name}.{lock}" if is_self else lock

    # -- visitors ----------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._enter_with(node.items, node.body, node.lineno)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._enter_with(node.items, node.body, node.lineno)

    def _enter_with(self, items: List[ast.withitem],
                    body: List[ast.stmt], lineno: int) -> None:
        pushed = 0
        for item in items:
            self.generic_visit(item.context_expr)
            decoded = _with_lock(item.context_expr, self.info.locks)
            if decoded is None:
                continue
            lock, mode, is_self = decoded
            inner = self._qualify(lock, is_self)
            kind = self.info.locks.get(lock, "") if is_self else ""
            for outer_name, _m in self.holds:
                outer_q = self._qualify(
                    outer_name, outer_name in self.info.locks
                )
                self.linter.note_edge(OrderEdge(
                    outer=outer_q, inner=inner, path=self.info.path,
                    line=lineno, method=f"{self.info.name}.{self.method}",
                ), reentrant_ok=(outer_q == inner and kind == "rlock"))
            self.holds.append((lock, mode))
            pushed += 1
        for stmt in body:
            self.visit(stmt)
        for _ in range(pushed):
            self.holds.pop()

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        spec = self.info.guards.get(node.attr)
        if spec is None or self.exempt:
            return
        if spec.kind in ("atomic", "external"):
            return
        if self.markers.suppressed(node.lineno):
            return
        is_write = isinstance(node.ctx, (ast.Store, ast.Del))
        subject = f"{self.info.name}.{node.attr}"
        where = f"{self.info.name}.{self.method}"
        if spec.kind == "writer":
            if not self.writer_ctx:
                self.linter.report.add(make(
                    "CCY001",
                    f"writer-confined field {subject} accessed in {where}, "
                    f"which is not marked '# runs-on: writer'",
                    subject=subject,
                    span=SourceSpan(line=node.lineno, text=self.info.path),
                    hint="mark the method '# runs-on: writer' or guard the "
                         "field with a lock",
                ))
            return
        mode = self._held_mode(spec.lock)
        if mode is None:
            self.linter.report.add(make(
                "CCY001",
                f"{subject} is guarded by {spec.lock!r} but {where} "
                f"accesses it without holding the lock",
                subject=subject,
                span=SourceSpan(line=node.lineno, text=self.info.path),
                hint=f"wrap the access in 'with self.{spec.lock}:' or "
                     f"declare '# holds: {spec.lock}' on the method",
            ))
        elif is_write and mode == "read":
            self.linter.report.add(make(
                "CCY002",
                f"{subject} is written in {where} under only the read side "
                f"of {spec.lock!r}",
                subject=subject,
                span=SourceSpan(line=node.lineno, text=self.info.path),
                hint="writes need write_locked() (or the exclusive lock)",
            ))

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in BLOCKING_CALLS:
            return
        critical = self._critical_held()
        if critical is None or self.markers.suppressed(node.lineno):
            return
        self.linter.report.add(make(
            "CCY010",
            f"{self.info.name}.{self.method} calls blocking "
            f"{node.func.attr}() while holding critical lock "
            f"{critical!r}",
            subject=f"{self.info.name}.{critical}",
            span=SourceSpan(line=node.lineno, text=self.info.path),
            hint="move the blocking call outside the lock scope",
        ))

    # Nested defs/lambdas inherit the lexical hold stack; visiting them
    # is the default generic_visit behaviour, which is what we want.


class ConcurrencyLinter:
    """Cross-file driver: collects classes, checks methods, then closes
    the lock-order graph and reports cycles."""

    def __init__(self) -> None:
        self.report = DiagnosticReport()
        self._edges: Dict[str, Set[str]] = {}
        self._edge_witness: Dict[Tuple[str, str], OrderEdge] = {}
        self._classes = 0
        self._guarded_fields = 0

    # -- lock-order graph --------------------------------------------------

    def note_edge(self, edge: OrderEdge, reentrant_ok: bool = False) -> None:
        if edge.outer == edge.inner:
            if reentrant_ok:
                return
            key = (edge.outer, edge.inner)
            if key not in self._edge_witness:
                self._edge_witness[key] = edge
                self._edges.setdefault(edge.outer, set()).add(edge.inner)
            return
        key = (edge.outer, edge.inner)
        if key not in self._edge_witness:
            self._edge_witness[key] = edge
            self._edges.setdefault(edge.outer, set()).add(edge.inner)

    def edges(self) -> List[Tuple[str, str]]:
        return sorted(self._edge_witness)

    def _cycles(self) -> List[List[str]]:
        """Elementary cycles of the acquisition graph (DFS, deduped by
        node set — one report per deadlock shape, not per rotation)."""
        cycles: List[List[str]] = []
        seen: Set[frozenset] = set()

        def walk(start: str, node: str, path: List[str],
                 on_path: Set[str]) -> None:
            for nxt in sorted(self._edges.get(node, ())):
                if nxt == start:
                    key = frozenset(path)
                    if key not in seen:
                        seen.add(key)
                        cycles.append(path + [start])
                elif nxt not in on_path and nxt > start:
                    walk(start, nxt, path + [nxt], on_path | {nxt})

        for start in sorted(self._edges):
            if start in self._edges.get(start, ()):
                key = frozenset((start,))
                if key not in seen:
                    seen.add(key)
                    cycles.append([start, start])
                continue
            walk(start, start, [start], {start})
        return cycles

    # -- entry points ------------------------------------------------------

    def lint_source(self, source: str, path: str = "<string>") -> None:
        """Lint one python source text."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.report.add(make(
                "CCY004", f"{path}: not parseable python: {exc}",
                subject=path,
            ))
            return
        markers = _Markers(source)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            collector = _ClassCollector(node, path, markers)
            info = collector.info
            self._classes += 1
            self._guarded_fields += len(info.guards)
            for lineno, text in collector.bad_specs:
                self.report.add(make(
                    "CCY004",
                    f"unparsable guarded-by spec {text!r}",
                    subject=info.name,
                    span=SourceSpan(line=lineno, text=path),
                ))
            for fname, spec in sorted(info.guards.items()):
                if spec.kind == "lock" and spec.lock not in info.locks:
                    self.report.add(make(
                        "CCY003",
                        f"{info.name}.{fname} is guarded by {spec.lock!r} "
                        f"but the class defines no such lock attribute",
                        subject=f"{info.name}.{fname}",
                        span=SourceSpan(line=info.guard_lines[fname],
                                        text=path),
                    ))
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    checker = _MethodChecker(self, info, stmt, markers)
                    for inner in stmt.body:
                        checker.visit(inner)

    def lint_file(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            self.lint_source(handle.read(), path)

    def finish(self) -> DiagnosticReport:
        """Close the order graph: report cycles, then the summary."""
        for cycle in self._cycles():
            witnesses = []
            for a, b in zip(cycle, cycle[1:]):
                edge = self._edge_witness.get((a, b))
                if edge is not None:
                    witnesses.append(
                        f"{a}→{b} at {edge.path}:{edge.line} "
                        f"({edge.method})"
                    )
            self.report.add(make(
                "CCY020",
                "inconsistent lock order: " + " → ".join(cycle),
                subject=cycle[0],
                hint="; ".join(witnesses),
            ))
        self.report.add(make(
            "CCY021",
            f"lock-order graph: {self._classes} classes, "
            f"{self._guarded_fields} guarded fields, "
            f"{len(self._edge_witness)} acquisition edges",
            subject="summary",
        ))
        return self.report


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` paths."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(path)
    return sorted(out)


def lint_paths(paths: Iterable[str]) -> DiagnosticReport:
    """Lint files and directories; returns the finished report."""
    linter = ConcurrencyLinter()
    for path in iter_python_files(paths):
        linter.lint_file(path)
    return linter.finish()


def lint_source(source: str, path: str = "<string>") -> DiagnosticReport:
    """Lint one source text (the unit-test entry point)."""
    linter = ConcurrencyLinter()
    linter.lint_source(source, path)
    return linter.finish()
