"""The proposition processor (S2).

Section 3.1: "The Proposition Processor enables the manipulation of
propositions according to the axioms of CML.  [Its interface] mainly
consists of the two operations retrieve_proposition(p) and
create_proposition(p) [...]  the proposition processor as a whole [...]
deals with stored, inherited and deduced propositions."

The processor wraps a pluggable :class:`~repro.propositions.store.
PropositionStore`, validates every create against the
:class:`~repro.propositions.axioms.AxiomBase`, computes class membership
and specialization closures (inherited propositions), and consults
registered deduction engines for deduced propositions.  Every mutation
bumps an *epoch* counter, the invalidation signal for lemma caches and
derived views further up the stack.

The closure queries (``generalizations``, ``classes_of``, ``is_class``,
...) are memoised in epoch-validated caches.  Invalidation is
fine-grained: three sub-epochs track isa links, instanceof links and
plain attribute links separately, so an attribute-heavy telling keeps
the specialization closures warm while a taxonomy change drops exactly
the caches that could have changed.  ``optimise=False`` bypasses the
caches entirely (the ablation path measured by benchmark Perf-6);
``stats`` counts hits, misses, invalidations and raw isa-BFS expansions
so speedups can be asserted structurally, like the prover's lemma
statistics.
"""

from __future__ import annotations

import heapq
import itertools
from typing import (
    Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Set,
    Tuple,
)

from repro.errors import PropositionError, UnknownPropositionError
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.obs.tracing import Tracer, get_tracer
from repro.propositions.axioms import AxiomBase, BOOTSTRAP, KERNEL_CLASSES, KERNEL_PIDS
from repro.propositions.proposition import (
    INSTANCEOF,
    ISA,
    Pattern,
    Proposition,
    individual,
    link,
)
from repro.propositions.store import MemoryStore, PropositionStore
from repro.timecalc.interval import ALWAYS, Interval

#: A deduction hook receives (processor, pattern) and yields propositions.
DeductionHook = Callable[["PropositionProcessor", Pattern], Iterable[Proposition]]


class Telling:
    """A batched update (the unit the consistency checker optimises over).

    Collects every mutation — creates, deletes (retractions) and
    validity clips — performed inside a ``with`` block; on error they
    are undone again in reverse order.  Tellings nest: an inner telling
    is a **savepoint** whose rollback undoes only its own mutations
    while the enclosing telling keeps going, and whose commit merges
    its batch into the parent.  Registered commit listeners (e.g. the
    consistency checker) fire once, at the outermost commit, seeing the
    whole batch at once — the paper's "set-oriented optimization of the
    consistency check".  Durable stores receive matching transaction
    markers (``begin``/``commit``/``abort`` at the outermost level,
    ``save``/``release``/``rollback`` for savepoints) so crash recovery
    can discard exactly the uncommitted suffix.
    """

    def __init__(self, processor: "PropositionProcessor",
                 rollback_on_listener_error: bool = False) -> None:
        self._processor = processor
        self.created: List[Proposition] = []
        #: Every mutation in order: ("create", prop) | ("delete", prop)
        #: | ("clip", old, new).
        self.ops: List[Tuple] = []
        self._active = False
        self._parent: Optional["Telling"] = None
        self._depth = 0
        self._epochs: Optional[Tuple[int, int, int]] = None
        self._rollback_on_listener_error = rollback_on_listener_error

    @property
    def depth(self) -> int:
        """Nesting depth while active (1 = outermost telling)."""
        return self._depth

    def __repr__(self) -> str:
        state = "active" if self._active else "closed"
        return (f"<Telling depth={self._depth} created={len(self.created)} "
                f"ops={len(self.ops)} {state}>")

    def __enter__(self) -> "Telling":
        self._processor._begin(self)
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._active = False
        if exc_type is None:
            self._processor._commit(self)
            return False
        self._processor._rollback(self)
        return False

    def record(self, prop: Proposition) -> None:
        """Track a proposition created inside this telling."""
        if self._active:
            self.created.append(prop)
            self.ops.append(("create", prop))

    def record_delete(self, prop: Proposition) -> None:
        """Track a deletion, so rollback can restore the proposition."""
        if self._active:
            self.ops.append(("delete", prop))

    def record_clip(self, old: Proposition, new: Proposition) -> None:
        """Track a validity clip, so rollback can restore the interval."""
        if self._active:
            self.ops.append(("clip", old, new))

    def _merge_into(self, parent: "Telling") -> None:
        parent.created.extend(self.created)
        parent.ops.extend(self.ops)


class _ClosureCache:
    """One memo table validated against a stamp of epoch counters."""

    __slots__ = ("stamp", "table")

    def __init__(self) -> None:
        self.stamp: Optional[Tuple[int, ...]] = None
        self.table: Dict[Any, Any] = {}


class PinnedRead:
    """An epoch-pinned read: the snapshot-consistency witness.

    Entering records the processor's mutation epoch and the store's
    visibility epoch; exiting records whether both survived unchanged.
    A read whose :attr:`consistent` flag is ``False`` overlapped a
    mutation — a *torn read*.  The service layer runs every read under
    its reader/writer lock and asserts the flag, which is how the
    stress tests prove "every ask sees a consistent epoch" structurally
    instead of by hoping.
    """

    __slots__ = ("_processor", "epoch", "visibility", "consistent")

    def __init__(self, processor: "PropositionProcessor") -> None:
        self._processor = processor
        self.epoch: Optional[int] = None
        self.visibility: Optional[int] = None
        self.consistent: Optional[bool] = None

    def __enter__(self) -> "PinnedRead":
        self.epoch = self._processor._epoch
        self.visibility = self._processor.store.visibility_epoch
        self.consistent = None
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.consistent = (
            self._processor._epoch == self.epoch
            and self._processor.store.visibility_epoch == self.visibility
        )
        return False


class PropositionProcessor:
    """Create/retrieve propositions subject to the CML axiom base."""

    def __init__(
        self,
        store: Optional[PropositionStore] = None,
        axiom_base: Optional[AxiomBase] = None,
        bootstrap: bool = True,
        optimise: bool = True,
        incremental: bool = True,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self.store = store if store is not None else MemoryStore(registry=registry)
        self.axioms = axiom_base if axiom_base is not None else AxiomBase()
        self._ids = itertools.count(1)
        self._epoch = 0
        # Fine-grained invalidation signals: which *kind* of link changed.
        self._isa_epoch = 0
        self._instanceof_epoch = 0
        self._attribute_epoch = 0
        self._optimise = optimise
        # Delta-maintain closure caches on tell/retract instead of
        # letting the moved sub-epoch invalidate them wholesale.
        self._incremental = incremental
        self._in_undo = False
        # Structural performance counters live in this instance's own
        # registry namespace — never a dict shared with (or adopted
        # from) the store, so two processors on one store count
        # independently.  The store's durability counters stay visible
        # through ``stats``, read-only.
        self.registry = registry
        self._metrics = self.registry.namespace("proposition")
        self._tracer = tracer
        counter = self._metrics.counter
        self._c_closure_hits = counter("closure_hits")
        self._c_closure_misses = counter("closure_misses")
        self._c_closure_invalidations = counter("closure_invalidations")
        self._c_closure_delta_applied = counter("closure_delta_applied")
        self._c_closure_delta_evictions = counter("closure_delta_evictions")
        self._c_isa_expansions = counter("isa_expansions")
        self._c_tells = counter("tells")
        self._c_retracts = counter("retracts")
        self._c_clips = counter("clips")
        self._c_commits = counter("tellings_committed")
        self._c_rollbacks = counter("tellings_rolled_back")
        store_stats = getattr(self.store, "stats", None)
        readonly = (store_stats,) if isinstance(store_stats, Mapping) else ()
        #: Dict-compatible view: this processor's counters (writable)
        #: merged with the store's durability counters (read-only).
        self.stats: StatsView = StatsView(self._metrics, readonly=readonly)
        self._caches: Dict[str, _ClosureCache] = {
            family: _ClosureCache()
            for family in (
                "generalizations", "specializations", "classes_of",
                "instances_of", "is_class", "attribute_classes",
            )
        }
        self._tellings: List[Telling] = []
        self._commit_listeners: List[Callable[[List[Proposition]], None]] = []
        self._commit_validators: List[Callable[[List[Proposition]], None]] = []
        self._deduction_hooks: List[DeductionHook] = []
        if bootstrap:
            for prop in BOOTSTRAP:
                if prop.pid not in self.store:
                    self.store.create(prop)
            for prop in self.axioms.axiom_propositions():
                if prop.pid not in self.store:
                    self.store.create(prop)

    # ------------------------------------------------------------------
    # Epochs and transactions
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotone counter bumped on every mutation (cache invalidation)."""
        return self._epoch

    @property
    def tracer(self) -> Tracer:
        """This processor's tracer (the process default unless one was
        injected at construction or via :meth:`set_tracer`)."""
        return self._tracer if self._tracer is not None else get_tracer()

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Install (or with ``None`` clear) an instance-level tracer."""
        self._tracer = tracer

    def reset_stats(self) -> None:
        """Zero this processor's own counters.  The read-only durability
        counters surfaced from the store are untouched — reset those on
        the store itself."""
        self.stats.reset()

    def _bump(self) -> None:
        self._epoch += 1

    def _note_change(self, prop: Proposition, op: str = "create") -> None:
        """Record which invalidation class a created/deleted/clipped
        proposition falls into.  Individuals never affect closures (the
        only membership they change, ``x in store``, is always checked
        live), so only links bump the fine-grained sub-epochs.  The one
        exception: an individual *named* ``isa``/``instanceof`` matches
        the reserved-label retrieval patterns, so it is classified by
        its label like a link would be.

        On the optimised incremental path the bumped sub-epoch no longer
        dooms the dependent closure caches: every cache that was valid
        immediately before the change has its stamp advanced *first*
        (so nested closure queries during maintenance stay hot) and its
        table then delta-updated in place from the single changed link —
        a BFS from the new edge on tell, a targeted eviction / DRed-style
        shrink on retract.  Only caches that were already stale, and the
        genuinely non-incremental mutations (reserved-name individuals,
        savepoint rollback — see :meth:`_restore_epochs`), fall back to
        the epoch-invalidation machinery."""
        if prop.is_individual:
            if prop.label == ISA:
                self._isa_epoch += 1
            elif prop.label == INSTANCEOF:
                self._instanceof_epoch += 1
            return
        if prop.is_isa:
            kind = "isa"
        elif prop.is_instanceof:
            kind = "instanceof"
        else:
            kind = "attribute"
        incremental = (
            self._optimise and self._incremental and not self._in_undo
        )
        pre: Optional[Dict[str, Tuple[int, ...]]] = None
        if incremental:
            pre = {family: self._stamp(family) for family in self._caches}
        if kind == "isa":
            self._isa_epoch += 1
        elif kind == "instanceof":
            self._instanceof_epoch += 1
        else:
            self._attribute_epoch += 1
        if not incremental:
            return
        assert pre is not None
        fresh: Set[str] = set()
        for family, cache in self._caches.items():
            post = self._stamp(family)
            if post == pre[family]:
                continue  # family independent of this link kind
            if cache.stamp == pre[family]:
                # Valid before the change: advance the stamp before any
                # table surgery, so closure queries issued *during*
                # maintenance revalidate instead of clearing the table
                # we are updating.
                cache.stamp = post
                fresh.add(family)
        if fresh:
            self._apply_closure_delta(kind, op, prop, fresh)

    # ------------------------------------------------------------------
    # Closure-cache delta maintenance
    # ------------------------------------------------------------------

    def _apply_closure_delta(self, kind: str, op: str,
                             prop: Proposition, fresh: Set[str]) -> None:
        """Fold one changed link into every still-valid closure cache.

        ``fresh`` names the families whose stamps were just advanced;
        only their tables are touched.  Set-valued families are extended
        in place on tell and shrunk/evicted on retract; the
        order-sensitive ``attribute_classes`` family is always evicted
        per affected key (an in-place append could diverge from the
        iteration order a fresh compute would produce).  Clips keep
        every name-set cache (validity intervals are invisible to them)
        and only evict attribute tuples, which embed the clipped
        proposition object."""
        applied = 0
        evicted = 0
        source, label, destination = prop.source, prop.label, prop.destination
        caches = self._caches
        if kind == "attribute":
            # Only attribute_classes depends on the attribute sub-epoch,
            # and create/delete/clip all invalidate the same keys.
            if "attribute_classes" in fresh:
                evicted += self._evict_attribute_keys(source, label)
        elif kind == "isa" and op == "create":
            if "generalizations" in fresh and caches["generalizations"].table:
                table = caches["generalizations"].table
                gain = {destination} | set(
                    self._isa_closure(destination, down=False)
                )
                for key, value in list(table.items()):
                    if key == source or source in value:
                        table[key] = frozenset((value | gain) - {key})
                        applied += 1
            if "specializations" in fresh and caches["specializations"].table:
                table = caches["specializations"].table
                gain = {source} | set(self._isa_closure(source, down=True))
                for key, value in list(table.items()):
                    if key == destination or destination in value:
                        table[key] = frozenset((value | gain) - {key})
                        applied += 1
            if "classes_of" in fresh and caches["classes_of"].table:
                table = caches["classes_of"].table
                if source == "Proposition":
                    # Every cached set contains the universal class, so
                    # membership no longer witnesses reachability.
                    evicted += len(table)
                    table.clear()
                else:
                    gain = {destination} | set(
                        self._isa_closure(destination, down=False)
                    )
                    for key, value in list(table.items()):
                        if source in value:
                            table[key] = frozenset(value | gain)
                            applied += 1
            if "instances_of" in fresh and caches["instances_of"].table:
                table = caches["instances_of"].table
                gain = self.instances_of(source)
                for key, value in list(table.items()):
                    cls, direct = key
                    if direct:
                        continue  # direct extensions ignore isa edges
                    if destination == cls or destination in self.specializations(cls):
                        table[key] = frozenset(value | gain)
                        applied += 1
            if "is_class" in fresh:
                evicted += self._drop_false_classhood()
            if "attribute_classes" in fresh:
                # Classes reaching the new edge's source now inherit the
                # target's attributes, whatever their labels.
                evicted += self._evict_attribute_keys(source, None,
                                                      any_label=True)
        elif kind == "isa" and op == "delete":
            if "generalizations" in fresh and caches["generalizations"].table:
                table = caches["generalizations"].table
                for key, value in list(table.items()):
                    if (key == source or source in value) and destination in value:
                        del table[key]
                        evicted += 1
            if "specializations" in fresh and caches["specializations"].table:
                table = caches["specializations"].table
                for key, value in list(table.items()):
                    if (key == destination or destination in value) and source in value:
                        del table[key]
                        evicted += 1
            if "classes_of" in fresh and caches["classes_of"].table:
                table = caches["classes_of"].table
                for key, value in list(table.items()):
                    if source in value and destination in value:
                        del table[key]
                        evicted += 1
            if "instances_of" in fresh and caches["instances_of"].table:
                table = caches["instances_of"].table
                for key, value in list(table.items()):
                    cls, direct = key
                    if direct:
                        continue
                    if destination == cls or destination in self.specializations(cls):
                        del table[key]
                        evicted += 1
            if "is_class" in fresh and caches["is_class"].table:
                # Classhood can only flip off when the lost reachability
                # (the edge target and its ancestors) included one of the
                # class-defining kernel classes.
                lost = {destination} | self.generalizations(destination)
                if lost & {"Class", "Attribute", "MetaClass", "MetametaClass"}:
                    table = caches["is_class"].table
                    evicted += len(table)
                    table.clear()
            if "attribute_classes" in fresh:
                evicted += self._evict_attribute_keys(source, None,
                                                      any_label=True)
        elif kind == "instanceof" and op == "create":
            if "classes_of" in fresh and caches["classes_of"].table:
                table = caches["classes_of"].table
                value = table.get(source)
                if value is not None:
                    gain = {destination} | set(
                        self._isa_closure(destination, down=False)
                    )
                    table[source] = frozenset(value | gain)
                    applied += 1
            if "instances_of" in fresh and caches["instances_of"].table:
                table = caches["instances_of"].table
                for key, value in list(table.items()):
                    cls, direct = key
                    if direct:
                        if cls == destination:
                            table[key] = frozenset(value | {source})
                            applied += 1
                    elif destination == cls or destination in self.specializations(cls):
                        table[key] = frozenset(value | {source})
                        applied += 1
            if "is_class" in fresh:
                evicted += self._drop_false_classhood()
        elif kind == "instanceof" and op == "delete":
            if "classes_of" in fresh and caches["classes_of"].table:
                if caches["classes_of"].table.pop(source, None) is not None:
                    evicted += 1
            if "instances_of" in fresh and caches["instances_of"].table:
                table = caches["instances_of"].table
                remaining = {
                    p.destination
                    for p in self.store.retrieve(
                        Pattern(source=source, label=INSTANCEOF)
                    )
                }
                for key, value in list(table.items()):
                    cls, direct = key
                    if source not in value:
                        continue
                    if direct:
                        if cls == destination and destination not in remaining:
                            table[key] = frozenset(value - {source})
                            applied += 1
                    elif destination == cls or destination in self.specializations(cls):
                        if not (remaining & self.specializations(cls)):
                            table[key] = frozenset(value - {source})
                            applied += 1
            if "is_class" in fresh and caches["is_class"].table:
                table = caches["is_class"].table
                if table.pop(source, None) is not None:
                    evicted += 1
                for meta in self.store.retrieve(
                    Pattern(label=INSTANCEOF, destination=source)
                ):
                    if table.pop(meta.source, None) is not None:
                        evicted += 1
        # isa/instanceof clips change validity intervals only, which the
        # name-set closures never read: stamps advanced, tables kept.
        if applied:
            self._c_closure_delta_applied.inc(applied)
        if evicted:
            self._c_closure_delta_evictions.inc(evicted)

    def _evict_attribute_keys(self, source: str, label: Optional[str],
                              any_label: bool = False) -> int:
        """Evict ``attribute_classes`` keys that can see an attribute
        link leaving ``source`` (directly or by inheritance).  With
        ``any_label`` every label is affected — the isa-change case,
        where inherited attributes of all labels move at once."""
        table = self._caches["attribute_classes"].table
        if not table:
            return 0
        evicted = 0
        for key in list(table):
            cls, wanted = key
            if not any_label and wanted is not None and wanted != label:
                continue
            if cls == source or source in self.generalizations(cls):
                del table[key]
                evicted += 1
        return evicted

    def _drop_false_classhood(self) -> int:
        """New isa/instanceof edges are monotone for classhood: cached
        ``True`` verdicts stay, cached ``False`` verdicts may flip."""
        table = self._caches["is_class"].table
        stale = [key for key, value in table.items() if not value]
        for key in stale:
            del table[key]
        return len(stale)

    # Which sub-epochs each closure family depends on.  All stamps fold
    # in the store's visibility epoch: workspace activation changes the
    # visible network without any create/delete passing through here.
    def _stamp(self, family: str) -> Tuple[int, ...]:
        visibility = self.store.visibility_epoch
        if family in ("generalizations", "specializations"):
            return (self._isa_epoch, visibility)
        if family == "attribute_classes":
            return (self._isa_epoch, self._attribute_epoch, visibility)
        # classes_of / instances_of / is_class: classification closed
        # over specialization.
        return (self._isa_epoch, self._instanceof_epoch, visibility)

    def _cached(self, family: str, key: Any, compute: Callable[[], Any]) -> Any:
        """Memoise ``compute()`` under ``key``, validated per stamp.

        A cache *miss* (and every call on the ``optimise=False``
        ablation path) runs the closure computation under a
        ``proposition.closure`` span, so a traced query shows exactly
        which closures went cold; hits only move the hit counter — a
        warm query trace is span-free at this level, which is how
        :class:`~repro.obs.explain.QueryExplain` tells cached from cold.
        """
        if not self._optimise:
            with self.tracer.span("proposition.closure", family=family,
                                  key=repr(key), cache="off"):
                return compute()
        cache = self._caches[family]
        stamp = self._stamp(family)
        if cache.stamp != stamp:
            if cache.table:
                self._c_closure_invalidations.inc()
                cache.table.clear()
            cache.stamp = stamp
        try:
            value = cache.table[key]
        except KeyError:
            self._c_closure_misses.inc()
            with self.tracer.span("proposition.closure", family=family,
                                  key=repr(key), cache="miss"):
                value = cache.table[key] = compute()
            return value
        self._c_closure_hits.inc()
        return value

    def telling(self, rollback_on_listener_error: bool = False) -> Telling:
        """Open a batched update; use as a context manager.

        Tellings nest freely: an inner telling acts as a savepoint —
        its rollback undoes only its own mutations.  With
        ``rollback_on_listener_error=True`` a commit-listener failure
        (e.g. the consistency checker's hook rejecting the batch) also
        rolls the whole telling back before the error propagates, which
        is the behaviour :meth:`repro.conceptbase.ConceptBase.transaction`
        exposes.
        """
        return Telling(self, rollback_on_listener_error=rollback_on_listener_error)

    @property
    def in_telling(self) -> bool:
        """Is a telling (at any nesting depth) currently open?"""
        return bool(self._tellings)

    def _begin(self, telling: Telling) -> None:
        telling._parent = self._tellings[-1] if self._tellings else None
        telling._depth = len(self._tellings) + 1
        telling._epochs = (
            self._isa_epoch, self._instanceof_epoch, self._attribute_epoch
        )
        self.store.txn("begin" if telling._parent is None else "save")
        self._tellings.append(telling)

    def _commit(self, telling: Telling) -> None:
        if not self._tellings or self._tellings[-1] is not telling:
            raise PropositionError("telling commit out of nesting order")
        self._tellings.pop()
        if telling._parent is not None:
            # Savepoint release: fold the batch into the enclosing
            # telling; listeners fire only at the outermost commit.
            telling._merge_into(telling._parent)
            self.store.txn("release")
            return
        try:
            # Validators first (stale-epoch / conflict rejection), then
            # listeners (the consistency checker): a conflicting commit
            # should be refused before any constraint work is spent.
            for validator in self._commit_validators:
                validator(list(telling.created))
            for listener in self._commit_listeners:
                listener(list(telling.created))
        except Exception:
            if telling._rollback_on_listener_error:
                self._undo(telling)
                self.store.txn("abort")
                self._c_rollbacks.inc()
                raise
            # Legacy telling() semantics: the batch stays committed and
            # the error surfaces to the caller, who may retract.  The
            # durable commit marker must reflect that.
            self.store.txn("commit")
            self._c_commits.inc()
            raise
        self.store.txn("commit")
        self._c_commits.inc()

    def _rollback(self, telling: Telling) -> None:
        if self._tellings and self._tellings[-1] is telling:
            self._tellings.pop()
        self._undo(telling)
        self.store.txn("abort" if telling._parent is None else "rollback")
        self._c_rollbacks.inc()

    def _undo(self, telling: Telling) -> None:
        """Physically reverse a telling's mutations (newest first), then
        restore the fine-grained epoch counters it bumped.  Rollback is
        one of the genuinely non-incremental mutations: the undo loop
        suppresses per-link cache maintenance (``_in_undo``) and lets
        :meth:`_restore_epochs` clear exactly the moved families."""
        self._in_undo = True
        try:
            for op in reversed(telling.ops):
                kind = op[0]
                if kind == "create":
                    prop = op[1]
                    if prop.pid in self.store:
                        self.store.delete(prop.pid)
                        self._note_change(prop, op="delete")
                elif kind == "delete":
                    prop = op[1]
                    if prop.pid not in self.store:
                        self.store.create(prop)
                        self._note_change(prop)
                else:  # clip
                    old = op[1]
                    self.store.replace(old)
                    self._note_change(old, op="clip")
        finally:
            self._in_undo = False
        if telling._epochs is not None:
            self._restore_epochs(telling._epochs)
        self._bump()

    #: Which fine-grained sub-epochs feed each closure family (mirrors
    #: :meth:`_stamp`); used to clear exactly the caches a rolled-back
    #: telling could have polluted.
    _FAMILY_DEPS = {
        "generalizations": frozenset({"isa"}),
        "specializations": frozenset({"isa"}),
        "attribute_classes": frozenset({"isa", "attribute"}),
        "classes_of": frozenset({"isa", "instanceof"}),
        "instances_of": frozenset({"isa", "instanceof"}),
        "is_class": frozenset({"isa", "instanceof"}),
    }

    def _restore_epochs(self, snapshot: Tuple[int, int, int]) -> None:
        """Roll the fine-grained counters back to their pre-telling
        values — rollback restored the exact pre-telling network, so
        caches stamped *before* the telling are valid again.  Any family
        whose counter moved during the telling is cleared outright
        first: a memo computed mid-telling must not be revalidated later
        merely because an unrelated bump lands on the same counter
        value."""
        current = {
            "isa": self._isa_epoch,
            "instanceof": self._instanceof_epoch,
            "attribute": self._attribute_epoch,
        }
        changed = {
            name for name, value in zip(
                ("isa", "instanceof", "attribute"), snapshot
            ) if current[name] != value
        }
        if changed:
            self._c_closure_invalidations.inc()
            for family, deps in self._FAMILY_DEPS.items():
                if deps & changed:
                    cache = self._caches[family]
                    cache.table.clear()
                    cache.stamp = None
        self._isa_epoch, self._instanceof_epoch, self._attribute_epoch = snapshot

    def on_commit(self, listener: Callable[[List[Proposition]], None]) -> None:
        """Register a listener for committed tellings."""
        self._commit_listeners.append(listener)

    def add_commit_validator(
        self, validator: Callable[[List[Proposition]], None]
    ) -> None:
        """Register a commit *validator*: called at the outermost commit
        with the telling's created propositions, before any listener.
        Raising refuses the commit with the telling's error semantics
        (``rollback_on_listener_error=True`` tellings roll the whole
        batch back) — the hook the service layer's first-committer-wins
        validation plugs into."""
        self._commit_validators.append(validator)

    def read_transaction(self) -> PinnedRead:
        """An epoch-pinned read scope: ``with proc.read_transaction() as
        pin: ...`` then check ``pin.consistent`` — ``False`` means a
        mutation landed mid-read (a torn read)."""
        return PinnedRead(self)

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def fresh_pid(self) -> str:
        """A proposition identifier not yet used in the base."""
        while True:
            pid = f"p{next(self._ids)}"
            if pid not in self.store:
                return pid

    def create_proposition(self, prop: Proposition) -> Proposition:
        """Validate ``prop`` against the axiom base and store it."""
        with self.tracer.span("proposition.tell", pid=prop.pid):
            self.axioms.validate(self, prop)
            self.store.create(prop)
            self._note_change(prop)
            self._bump()
            self._c_tells.inc()
            if self._tellings:
                self._tellings[-1].record(prop)
            return prop

    def tell_individual(
        self,
        name: str,
        in_class: Optional[str] = None,
        time: Interval = ALWAYS,
        belief_time: Interval = ALWAYS,
    ) -> Proposition:
        """Create a node, optionally classifying it into ``in_class``."""
        prop = self.create_proposition(
            individual(name, time=time, belief_time=belief_time)
        )
        if in_class is not None:
            self.tell_instanceof(name, in_class, time=time)
        return prop

    def tell_link(
        self,
        source: str,
        label: str,
        destination: str,
        pid: Optional[str] = None,
        time: Interval = ALWAYS,
        belief_time: Interval = ALWAYS,
        of_class: Optional[str] = None,
    ) -> Proposition:
        """Create a link; ``of_class`` additionally classifies it as an
        instance of the given attribute class (instantiation principle)."""
        prop = self.create_proposition(
            link(pid or self.fresh_pid(), source, label, destination,
                 time=time, belief_time=belief_time)
        )
        if of_class is not None:
            self.tell_instanceof(prop.pid, of_class, time=time)
        return prop

    def tell_instanceof(self, instance: str, cls: str,
                        time: Interval = ALWAYS) -> Proposition:
        """Assert a classification link."""
        return self.create_proposition(
            link(self.fresh_pid(), instance, INSTANCEOF, cls, time=time)
        )

    def tell_isa(self, sub: str, sup: str, time: Interval = ALWAYS) -> Proposition:
        """Assert a specialization link."""
        return self.create_proposition(
            link(self.fresh_pid(), sub, ISA, sup, time=time)
        )

    def define_class(
        self,
        name: str,
        level: str = "SimpleClass",
        isa: Iterable[str] = (),
        time: Interval = ALWAYS,
    ) -> Proposition:
        """Convenience: create a class at an instantiation level.

        ``level`` should be one of ``SimpleClass`` / ``MetaClass`` /
        ``MetametaClass`` (fig 2-5's abstraction levels).
        """
        prop = self.tell_individual(name, in_class=level, time=time)
        for sup in isa:
            self.tell_isa(name, sup, time=time)
        return prop

    # ------------------------------------------------------------------
    # Retraction
    # ------------------------------------------------------------------

    def dependents(self, pid: str) -> List[Proposition]:
        """Links that structurally reference ``pid`` (excluding itself)."""
        seen: Dict[str, Proposition] = {}
        for pattern in (Pattern(source=pid), Pattern(destination=pid)):
            for prop in self.store.retrieve(pattern):
                if prop.pid != pid:
                    seen[prop.pid] = prop
        return list(seen.values())

    def retract(self, pid: str, cascade: bool = True) -> List[Proposition]:
        """Remove a proposition; with ``cascade`` also every link that
        (transitively) references it.  Returns everything removed.

        One reverse-adjacency pass collects the dependent closure and the
        reference counts; deletion then drains leaves from a heap, so the
        whole cascade costs O(closure + edges) store operations instead
        of re-running ``dependents`` per member per round.
        """
        if pid in KERNEL_PIDS:
            raise PropositionError(f"kernel proposition {pid!r} cannot be retracted")
        if pid not in self.store:
            raise UnknownPropositionError(f"unknown proposition {pid!r}")
        with self.tracer.span("proposition.retract", pid=pid,
                              cascade=cascade) as span:
            removed = self._retract_closure(pid, cascade)
            span.set(removed=len(removed))
        self._c_retracts.inc()
        self._bump()
        return removed

    def _retract_closure(self, pid: str, cascade: bool) -> List[Proposition]:
        # Single pass: BFS over structural dependents, recording for each
        # member the set of closure members that reference it.
        closure: Set[str] = {pid}
        props: Dict[str, Proposition] = {pid: self.store.get(pid)}
        referenced_by: Dict[str, Set[str]] = {pid: set()}
        frontier = [pid]
        while frontier:
            current = frontier.pop()
            for dep in self.dependents(current):
                referenced_by[current].add(dep.pid)
                if dep.pid not in closure:
                    closure.add(dep.pid)
                    props[dep.pid] = dep
                    referenced_by[dep.pid] = set()
                    frontier.append(dep.pid)
        if len(closure) > 1 and not cascade:
            raise PropositionError(
                f"proposition {pid!r} still referenced by "
                f"{sorted(closure - {pid})}"
            )
        # Delete leaves first so referential integrity never breaks
        # mid-way; self-referencing links are deleted unconditionally,
        # and mutual-reference cycles are broken by force-deleting the
        # smallest remaining identifier (matching the previous policy).
        removed: List[Proposition] = []
        remaining = set(closure)
        ready = sorted(m for m in remaining if not referenced_by[m])
        heapq.heapify(ready)
        while remaining:
            if ready:
                current = heapq.heappop(ready)
                if current not in remaining:
                    continue
            else:
                current = min(remaining)
            prop = props[current]
            removed.append(self.store.delete(current))
            self._note_change(prop, op="delete")
            if self._tellings:
                self._tellings[-1].record_delete(prop)
            remaining.discard(current)
            for target in {prop.source, prop.destination}:
                refs = referenced_by.get(target)
                if refs is not None and current in refs:
                    refs.discard(current)
                    if not refs and target in remaining:
                        heapq.heappush(ready, target)
        return removed

    def clip_validity(self, pid: str, at) -> Proposition:
        """End a proposition's validity at time ``at`` instead of deleting
        it — the history-preserving retraction used for versioning."""
        prop = self.store.get(pid)
        clipped = prop.time.clip_end(at)
        if clipped is None:
            raise PropositionError(
                f"proposition {pid!r} was never valid before {at!r}"
            )
        updated = prop.with_time(clipped)
        with self.tracer.span("proposition.clip", pid=pid):
            self.store.replace(updated)
            self._note_change(updated, op="clip")
            self._c_clips.inc()
            if self._tellings:
                self._tellings[-1].record_clip(prop, updated)
            self._bump()
        return updated

    def replace_proposition(self, prop: Proposition) -> Proposition:
        """Swap the stored proposition with ``prop``'s pid for ``prop``,
        through the same delta-maintenance path as :meth:`clip_validity`
        — the inverse operation backtracking needs to restore a clipped
        validity interval without invalidating warm closure caches."""
        old = self.store.get(prop.pid)
        with self.tracer.span("proposition.clip", pid=prop.pid):
            self.store.replace(prop)
            self._note_change(prop, op="clip")
            self._c_clips.inc()
            if self._tellings:
                self._tellings[-1].record_clip(old, prop)
            self._bump()
        return old

    # ------------------------------------------------------------------
    # Retrieval: stored, inherited, deduced
    # ------------------------------------------------------------------

    def add_deduction_hook(self, hook: DeductionHook) -> None:
        """Register a deduced-propositions source."""
        self._deduction_hooks.append(hook)

    def retrieve_proposition(
        self, pattern: Pattern, include_deduced: bool = True
    ) -> Iterator[Proposition]:
        """Stored propositions matching ``pattern`` plus, when requested,
        propositions deduced by registered rule engines."""
        seen: Set[str] = set()
        for prop in self.store.retrieve(pattern):
            seen.add(prop.pid)
            yield prop
        if include_deduced:
            for hook in self._deduction_hooks:
                for prop in hook(self, pattern):
                    if prop.pid not in seen and pattern.matches(prop):
                        seen.add(prop.pid)
                        yield prop

    def get(self, pid: str) -> Proposition:
        """Fetch a stored proposition by identifier."""
        return self.store.get(pid)

    def exists(self, pid: str) -> bool:
        """Is the identifier in the base?"""
        return pid in self.store

    # ------------------------------------------------------------------
    # Closures: specialization and classification
    # ------------------------------------------------------------------

    def _isa_closure(self, name: str, down: bool) -> frozenset:
        """The strict isa-closure of ``name`` (ancestors or descendants),
        memoised per isa-epoch.  ``name`` itself is never a member (isa
        BFS never revisits its origin), so strict/non-strict variants
        both derive from the same cached set."""

        def compute() -> frozenset:
            result: Set[str] = set()
            frontier = [name]
            expansions = 0
            while frontier:
                current = frontier.pop()
                expansions += 1
                if down:
                    pattern = Pattern(label=ISA, destination=current)
                else:
                    pattern = Pattern(source=current, label=ISA)
                for prop in self.store.retrieve(pattern):
                    neighbour = prop.source if down else prop.destination
                    if neighbour not in result and neighbour != name:
                        result.add(neighbour)
                        frontier.append(neighbour)
            self._c_isa_expansions.inc(expansions)
            return frozenset(result)

        family = "specializations" if down else "generalizations"
        return self._cached(family, name, compute)

    def generalizations(self, name: str, strict: bool = False) -> Set[str]:
        """All (transitive) isa-ancestors of ``name``."""
        result = set(self._isa_closure(name, down=False))
        if not strict:
            result.add(name)
        return result

    def specializations(self, name: str, strict: bool = False) -> Set[str]:
        """All (transitive) isa-descendants of ``name``."""
        result = set(self._isa_closure(name, down=True))
        if not strict:
            result.add(name)
        return result

    def classes_of(self, name: str) -> Set[str]:
        """Every class ``name`` belongs to, including via specialization
        of its explicit classes; always includes ``Proposition``."""

        def compute() -> frozenset:
            result: Set[str] = {"Proposition"}
            for prop in self.store.retrieve(Pattern(source=name, label=INSTANCEOF)):
                result |= self.generalizations(prop.destination)
            return frozenset(result)

        return set(self._cached("classes_of", name, compute))

    def instances_of(self, cls: str, direct: bool = False,
                     at: Optional[object] = None) -> Set[str]:
        """The extension of ``cls``: explicit instances of it and of all
        its specializations (unless ``direct``).

        With ``at`` given, only classification links whose validity
        interval covers that time count — the as-of (time-travel) query
        the version intervals of section 3.1 enable.  As-of queries
        bypass the memo cache (their results also depend on validity
        clipping, which deliberately preserves the epoch-stamped caches).
        """

        def compute() -> frozenset:
            classes = {cls} if direct else self.specializations(cls)
            result: Set[str] = set()
            for c in classes:
                pattern = Pattern(label=INSTANCEOF, destination=c, at=at)
                for prop in self.store.retrieve(pattern):
                    result.add(prop.source)
            return frozenset(result)

        if at is not None:
            return set(compute())
        return set(self._cached("instances_of", (cls, direct), compute))

    def is_instance_of(self, name: str, cls: str) -> bool:
        """Membership, closed over specialization."""
        if cls == "Proposition":
            return name in self.store
        if cls == "Class":
            return self.is_class(name)
        return cls in self.classes_of(name)

    def is_class(self, name: str) -> bool:
        """Classhood: kernel classes, instances of ``Class``, and
        attribute links (attribute classes implicitly have the
        instance-level links as instances — the instantiation principle
        makes every attribute proposition potentially classifiable)."""
        if name in KERNEL_CLASSES:
            return True

        def compute() -> bool:
            for prop in self.store.retrieve(Pattern(source=name, label=INSTANCEOF)):
                destination_closure = self.generalizations(prop.destination)
                if "Class" in destination_closure or "Attribute" in destination_closure:
                    return True
                # Instances of a metaclass are classes; instances of a
                # metametaclass are metaclasses, hence classes too.  And an
                # instance of an attribute metaclass (e.g. a FROM link on a
                # concrete decision class) is itself an attribute class.
                for meta in self.store.retrieve(
                    Pattern(source=prop.destination, label=INSTANCEOF)
                ):
                    meta_closure = self.generalizations(meta.destination)
                    if ("MetaClass" in meta_closure
                            or "MetametaClass" in meta_closure
                            or "Attribute" in meta_closure):
                        return True
            return False

        return self._cached("is_class", name, compute)

    # ------------------------------------------------------------------
    # Attributes (aggregation) with inheritance
    # ------------------------------------------------------------------

    def attributes_of(self, name: str, label: Optional[str] = None) -> List[Proposition]:
        """Explicit attribute links leaving ``name`` (reserved labels
        excluded)."""
        pattern = Pattern(source=name, label=label)
        return [
            prop
            for prop in self.store.retrieve(pattern)
            if prop.is_link and not prop.is_instanceof and not prop.is_isa
        ]

    def attribute_classes(self, cls: str, label: Optional[str] = None) -> List[Proposition]:
        """Attribute links defined on ``cls`` or inherited from its
        generalizations — the paper's inherited propositions."""

        def compute() -> Tuple[Proposition, ...]:
            result: List[Proposition] = []
            seen: Set[str] = set()
            for sup in self.generalizations(cls):
                for prop in self.attributes_of(sup, label=label):
                    if prop.pid not in seen:
                        seen.add(prop.pid)
                        result.append(prop)
            return tuple(result)

        return list(self._cached("attribute_classes", (cls, label), compute))

    def links_instantiating(self, attr_class_pid: str) -> List[Proposition]:
        """All links that are declared instances of an attribute class."""
        result = []
        for inst in self.store.retrieve(
            Pattern(label=INSTANCEOF, destination=attr_class_pid)
        ):
            try:
                result.append(self.store.get(inst.source))
            except UnknownPropositionError:
                continue
        return result

    def classification_of_link(self, pid: str) -> Set[str]:
        """The attribute classes a given link is an instance of."""
        result: Set[str] = set()
        for prop in self.store.retrieve(Pattern(source=pid, label=INSTANCEOF)):
            result |= self.generalizations(prop.destination)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def individuals(self) -> List[Proposition]:
        """All node propositions."""
        return [p for p in self.store if p.is_individual]

    def links(self) -> List[Proposition]:
        """All link propositions."""
        return [p for p in self.store if p.is_link]

    def __len__(self) -> int:
        return len(self.store)

    def summary(self) -> Dict[str, int]:
        """Basic census of the base (used by displays and tests)."""
        counts = {"individuals": 0, "instanceof": 0, "isa": 0, "attribute": 0}
        for prop in self.store:
            if prop.is_individual:
                counts["individuals"] += 1
            elif prop.is_instanceof:
                counts["instanceof"] += 1
            elif prop.is_isa:
                counts["isa"] += 1
            else:
                counts["attribute"] += 1
        return counts
