"""Serialisation of proposition bases (the documentation service role).

"Ex post, [the GKBMS] plays the role of a documentation service" —
which only works if the documentation survives the session.  This
module serialises proposition bases to/from a JSON-compatible form:
quadruples plus their validity and belief intervals.  The kernel
bootstrap is not serialised (it is reconstructed on load), so dumps
stay small and version-independent.

Time points serialise as ``["-inf"] | ["+inf"] | ["v", value]`` where
``value`` must itself be JSON-compatible (ints, floats, strings — all
the library itself ever uses).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import PropositionError
from repro.propositions.axioms import KERNEL_PIDS
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Proposition
from repro.timecalc.interval import (
    Interval,
    NEGATIVE_INFINITY,
    POSITIVE_INFINITY,
    TimePoint,
)

FORMAT_VERSION = 1


def _point_to_json(point: TimePoint) -> List[Any]:
    if point.kind == -1:
        return ["-inf"]
    if point.kind == 1:
        return ["+inf"]
    return ["v", point.value]


def _point_from_json(data: List[Any]) -> TimePoint:
    if data == ["-inf"]:
        return NEGATIVE_INFINITY
    if data == ["+inf"]:
        return POSITIVE_INFINITY
    if len(data) == 2 and data[0] == "v":
        return TimePoint(0, data[1])
    raise PropositionError(f"bad serialized time point {data!r}")


def _interval_to_json(interval: Interval) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "start": _point_to_json(interval.start),
        "end": _point_to_json(interval.end),
    }
    if interval.label:
        out["label"] = interval.label
    return out


def _interval_from_json(data: Dict[str, Any]) -> Interval:
    return Interval(
        _point_from_json(data["start"]),
        _point_from_json(data["end"]),
        label=data.get("label"),
    )


def proposition_to_json(prop: Proposition) -> Dict[str, Any]:
    """One proposition as a JSON-able dict (Always intervals omitted)."""
    out: Dict[str, Any] = {
        "pid": prop.pid,
        "source": prop.source,
        "label": prop.label,
        "destination": prop.destination,
    }
    if not prop.time.is_always:
        out["time"] = _interval_to_json(prop.time)
    if not prop.belief_time.is_always:
        out["belief"] = _interval_to_json(prop.belief_time)
    return out


def proposition_from_json(data: Dict[str, Any]) -> Proposition:
    """Inverse of :func:`proposition_to_json`."""
    kwargs: Dict[str, Any] = {}
    if "time" in data:
        kwargs["time"] = _interval_from_json(data["time"])
    if "belief" in data:
        kwargs["belief_time"] = _interval_from_json(data["belief"])
    return Proposition(
        pid=data["pid"],
        source=data["source"],
        label=data["label"],
        destination=data["destination"],
        **kwargs,
    )


def dump_processor(processor: PropositionProcessor,
                   include_kernel: bool = False) -> Dict[str, Any]:
    """Serialise a processor's proposition base to a JSON-able dict."""
    props = [
        proposition_to_json(prop)
        for prop in processor.store
        if include_kernel or prop.pid not in KERNEL_PIDS
    ]
    return {"format": FORMAT_VERSION, "propositions": props}


def load_processor(
    data: Dict[str, Any],
    processor: Optional[PropositionProcessor] = None,
    validate: bool = False,
) -> PropositionProcessor:
    """Rebuild a processor from a dump.

    By default propositions are loaded without re-running the axiom
    checks (a dump of a consistent base stays consistent, and load
    order would otherwise matter); pass ``validate=True`` to replay
    them through ``create_proposition``, in dependency order.
    """
    if data.get("format") != FORMAT_VERSION:
        raise PropositionError(
            f"unsupported dump format {data.get('format')!r}"
        )
    proc = processor if processor is not None else PropositionProcessor()
    props = [proposition_from_json(item) for item in data["propositions"]]
    if not validate:
        for prop in props:
            if prop.pid not in proc.store:
                proc.store.create(prop)
                proc._note_change(prop)
        proc._bump()
        return proc
    # dependency order: individuals first, then links whose endpoints
    # are present, iterating to a fixpoint
    pending = [p for p in props if p.pid not in proc.store]
    while pending:
        progressed = False
        for prop in list(pending):
            if prop.is_individual or (
                prop.source in proc.store and prop.destination in proc.store
            ):
                proc.create_proposition(prop)
                pending.remove(prop)
                progressed = True
        if not progressed:
            raise PropositionError(
                f"dangling references in dump: {[p.pid for p in pending]}"
            )
    return proc


def dumps(processor: PropositionProcessor, **options) -> str:
    """JSON text form of :func:`dump_processor`."""
    return json.dumps(dump_processor(processor, **options), indent=1)


def loads(text: str, **options) -> PropositionProcessor:
    """Inverse of :func:`dumps`."""
    return load_processor(json.loads(text), **options)
