"""Serialisation of proposition bases (the documentation service role).

"Ex post, [the GKBMS] plays the role of a documentation service" —
which only works if the documentation survives the session.  This
module serialises proposition bases to/from a JSON-compatible form:
quadruples plus their validity and belief intervals.  The kernel
bootstrap is not serialised (it is reconstructed on load), so dumps
stay small and version-independent.

Time points serialise as ``["-inf"] | ["+inf"] | ["v", value]`` where
``value`` must itself be JSON-compatible (ints, floats, strings — all
the library itself ever uses).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.atomicio import FileIO, atomic_write_json, read_checked_json
from repro.errors import PersistenceError, PropositionError
from repro.propositions.axioms import KERNEL_PIDS
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Proposition
from repro.timecalc.interval import (
    Interval,
    NEGATIVE_INFINITY,
    POSITIVE_INFINITY,
    TimePoint,
)

FORMAT_VERSION = 1


def _point_to_json(point: TimePoint) -> List[Any]:
    if point.kind == -1:
        return ["-inf"]
    if point.kind == 1:
        return ["+inf"]
    return ["v", point.value]


def _point_from_json(data: List[Any]) -> TimePoint:
    if data == ["-inf"]:
        return NEGATIVE_INFINITY
    if data == ["+inf"]:
        return POSITIVE_INFINITY
    if len(data) == 2 and data[0] == "v":
        return TimePoint(0, data[1])
    raise PropositionError(f"bad serialized time point {data!r}")


def _interval_to_json(interval: Interval) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "start": _point_to_json(interval.start),
        "end": _point_to_json(interval.end),
    }
    if interval.label:
        out["label"] = interval.label
    return out


def _interval_from_json(data: Dict[str, Any]) -> Interval:
    if not isinstance(data, dict) or "start" not in data or "end" not in data:
        raise PropositionError(f"bad serialized interval {data!r}")
    return Interval(
        _point_from_json(data["start"]),
        _point_from_json(data["end"]),
        label=data.get("label"),
    )


def proposition_to_json(prop: Proposition) -> Dict[str, Any]:
    """One proposition as a JSON-able dict (Always intervals omitted)."""
    out: Dict[str, Any] = {
        "pid": prop.pid,
        "source": prop.source,
        "label": prop.label,
        "destination": prop.destination,
    }
    if not prop.time.is_always:
        out["time"] = _interval_to_json(prop.time)
    if not prop.belief_time.is_always:
        out["belief"] = _interval_to_json(prop.belief_time)
    return out


def proposition_from_json(data: Dict[str, Any]) -> Proposition:
    """Inverse of :func:`proposition_to_json`; typed errors on bad input."""
    if not isinstance(data, dict):
        raise PropositionError(
            f"serialized proposition must be an object, got {data!r}"
        )
    missing = [key for key in ("pid", "source", "label", "destination")
               if key not in data]
    if missing:
        raise PropositionError(
            f"serialized proposition {data.get('pid', '?')!r} is missing "
            f"field(s) {missing}"
        )
    kwargs: Dict[str, Any] = {}
    if "time" in data:
        kwargs["time"] = _interval_from_json(data["time"])
    if "belief" in data:
        kwargs["belief_time"] = _interval_from_json(data["belief"])
    return Proposition(
        pid=data["pid"],
        source=data["source"],
        label=data["label"],
        destination=data["destination"],
        **kwargs,
    )


def dump_processor(processor: PropositionProcessor,
                   include_kernel: bool = False) -> Dict[str, Any]:
    """Serialise a processor's proposition base to a JSON-able dict."""
    props = [
        proposition_to_json(prop)
        for prop in processor.store
        if include_kernel or prop.pid not in KERNEL_PIDS
    ]
    return {"format": FORMAT_VERSION, "propositions": props}


def load_processor(
    data: Dict[str, Any],
    processor: Optional[PropositionProcessor] = None,
    validate: bool = False,
) -> PropositionProcessor:
    """Rebuild a processor from a dump.

    By default propositions are loaded without re-running the axiom
    checks (a dump of a consistent base stays consistent, and load
    order would otherwise matter); pass ``validate=True`` to replay
    them through ``create_proposition``, in dependency order.
    """
    if not isinstance(data, dict):
        raise PropositionError(f"dump must be a JSON object, got {data!r}")
    if data.get("format") != FORMAT_VERSION:
        raise PropositionError(
            f"unsupported dump format {data.get('format')!r}"
        )
    if not isinstance(data.get("propositions"), list):
        raise PropositionError("dump is missing its 'propositions' list")
    proc = processor if processor is not None else PropositionProcessor()
    props = [proposition_from_json(item) for item in data["propositions"]]
    if not validate:
        for prop in props:
            if prop.pid not in proc.store:
                proc.store.create(prop)
                proc._note_change(prop)
        proc._bump()
        return proc
    # dependency order: individuals first, then links whose endpoints
    # are present, iterating to a fixpoint
    pending = [p for p in props if p.pid not in proc.store]
    while pending:
        progressed = False
        for prop in list(pending):
            if prop.is_individual or (
                prop.source in proc.store and prop.destination in proc.store
            ):
                proc.create_proposition(prop)
                pending.remove(prop)
                progressed = True
        if not progressed:
            raise PropositionError(
                f"dangling references in dump: {[p.pid for p in pending]}"
            )
    return proc


def dumps(processor: PropositionProcessor, **options) -> str:
    """JSON text form of :func:`dump_processor`."""
    return json.dumps(dump_processor(processor, **options), indent=1)


def loads(text: str, **options) -> PropositionProcessor:
    """Inverse of :func:`dumps`; malformed JSON raises a typed
    :class:`~repro.errors.PersistenceError`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"malformed proposition dump: {exc}") from None
    return load_processor(data, **options)


DUMP_KIND = "proposition-dump"


def save_to_file(processor: PropositionProcessor, path: str,
                 io: Optional[FileIO] = None, **options) -> None:
    """Write a checksummed dump atomically (tmp + fsync + replace).

    The dump is fully serialised in memory first, so a failure can
    never leave a truncated file behind, and an existing file at
    ``path`` survives any failed save untouched.
    """
    atomic_write_json(path, DUMP_KIND, dump_processor(processor, **options),
                      io=io)


def load_from_file(path: str,
                   processor: Optional[PropositionProcessor] = None,
                   validate: bool = False,
                   io: Optional[FileIO] = None) -> PropositionProcessor:
    """Read a file written by :func:`save_to_file`.

    Validates the envelope (kind, format version, checksum) and raises
    :class:`~repro.errors.PersistenceError` on any corruption; legacy
    un-enveloped dumps are still accepted.
    """
    payload = read_checked_json(path, DUMP_KIND, io=io, allow_legacy=True)
    return load_processor(payload, processor=processor, validate=validate)
