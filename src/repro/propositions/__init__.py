"""The CML proposition level (S2, S3).

Implements section 3.1 of the paper: a CML proposition is a quadruple
``p = <x, l, y, t>`` where ``x`` is the source, ``l`` the label, ``y``
the destination and ``t`` the associated time.  Nodes are themselves
propositions (self-referential quadruples).  The six predefined link
classes — classification (``instanceof``), specialization (``isa``),
aggregation (``attribute``), deduction (``rule``), constraints
(``constraint``) and behaviours (``behaviour``) — are axiomatised *as
propositions*, so the language itself is extensible.

- :mod:`repro.propositions.proposition` — the quadruple and patterns.
- :mod:`repro.propositions.store` — pluggable physical representations
  of the proposition base (memory / append-only log / workspaces).
- :mod:`repro.propositions.axioms` — the CML axiom base, bootstrapped
  from propositions, with executable well-formedness checks.
- :mod:`repro.propositions.processor` — the proposition processor:
  ``create_proposition`` / ``retrieve_proposition`` over explicit,
  inherited and deduced propositions, plus epochs and transactions.
"""

from repro.propositions.proposition import (
    ATTRIBUTE,
    INSTANCEOF,
    ISA,
    Pattern,
    Proposition,
    individual,
    link,
)
from repro.propositions.store import (
    LogStore,
    MemoryStore,
    PropositionStore,
    WorkspaceStore,
)
from repro.propositions.axioms import AxiomBase, BOOTSTRAP, CMLAxiom
from repro.propositions.processor import PropositionProcessor, Telling
from repro.propositions.wal import WalStore

__all__ = [
    "ATTRIBUTE",
    "INSTANCEOF",
    "ISA",
    "Pattern",
    "Proposition",
    "individual",
    "link",
    "LogStore",
    "MemoryStore",
    "PropositionStore",
    "WalStore",
    "WorkspaceStore",
    "AxiomBase",
    "BOOTSTRAP",
    "CMLAxiom",
    "PropositionProcessor",
    "Telling",
]
