"""A durable physical representation: write-ahead logged propositions.

Section 3.1 gives the proposition base "several physical
representations (e.g. Prolog workspaces, external databases)"; §1 (4)
makes the GKBMS a long-lived *documentation service*.  The in-memory
stores satisfy the first requirement, :class:`WalStore` the second: a
store whose every mutation is appended to an on-disk write-ahead log
*before* success is reported, so the proposition base survives process
death, torn writes and corrupted journal tails.

**Log format.**  A WAL is a sequence of length-prefixed, checksummed
records: 4-byte big-endian payload length, 4-byte CRC-32 of the
payload, then the payload (canonical JSON).  Payloads are one of::

    {"op": "header", "gen": G, "version": 1}   # first record of a log
    {"op": "create", "prop": {...}}            # serialized proposition
    {"op": "delete", "pid": "..."}
    {"op": "clip",   "prop": {...}}            # replace (validity clip)
    {"op": "txn",    "kind": "begin|commit|abort|save|release|rollback"}
    {"op": "decision", "record": {...}}        # decision-ledger entry
    {"op": "decision_retract", "did": "...", "tick": T}

The two ``decision`` payloads carry the decision-history subsystem
(:mod:`repro.decisions`): a ledger record is appended *inside* the
transaction that applied its proposition delta, so recovery's
transaction buffering makes record-plus-delta atomic — a decision is
either durable together with its consequences or discarded with them.

**Recovery.**  Opening a store loads the newest *valid* snapshot (the
current one, else the previous — both checksummed envelopes written
atomically), then replays the log on top.  Replay buffers records
between transaction markers so an uncommitted tail — a telling cut off
by a crash — is discarded wholesale, and it *stops* (rather than
raising) at the first torn or checksum-failed record; the log is then
physically truncated back to the last durable boundary so new appends
extend a clean prefix.  A log whose header generation does not match
the snapshot (a crash inside :meth:`checkpoint`) is discarded as stale.
Recovery outcomes land in the store's ``wal.*`` metrics namespace
(``replayed``, ``truncated_tail``, ``checksum_failures``,
``discarded_uncommitted``, ``snapshot_fallbacks``, ``stale_logs``,
``fsyncs``, ...), surfaced dict-style on :attr:`stats`; the owning
:class:`~repro.propositions.processor.PropositionProcessor` shows the
same counters *read-only* on its own ``stats`` view (it used to adopt
the dict by reference, which double-counted closures whenever two
processors shared one store).  Recovery, checkpoint, append and fsync
also run under :mod:`repro.obs.tracing` spans.

**Fsync policy.**  ``"always"`` forces every record, ``"commit"`` (the
default) forces transaction commit/abort boundaries, ``"never"`` leaves
durability to the OS (checkpoint still forces).  Policies only change
*when* the data is forced, never what is written — the Perf-7 benchmark
sweeps the throughput/durability trade-off.

All file access goes through :class:`~repro.atomicio.FileIO`, so the
fault-injection harness (:mod:`repro.faults`) can tear writes and kill
the "process" at any operation while exercising exactly this code.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.atomicio import (
    FileIO,
    REAL_IO,
    atomic_write_json,
    canonical_json,
    checksum,
    read_checked_json,
)
from repro.errors import PersistenceError, PropositionError
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.obs.tracing import Tracer, get_tracer
from repro.propositions.proposition import Pattern, Proposition
from repro.propositions.store import MemoryStore, PropositionStore

_RECORD_HEADER = struct.Struct(">II")  # payload length, CRC-32
_MAX_RECORD = 1 << 26  # 64 MiB: anything larger is a corrupt length field

WAL_VERSION = 1
SNAPSHOT_KIND = "wal-snapshot"

FSYNC_POLICIES = ("always", "commit", "never")


def encode_record(payload: Dict[str, Any]) -> bytes:
    """One length-prefixed, checksummed log record."""
    body = canonical_json(payload)
    return _RECORD_HEADER.pack(len(body), checksum(body)) + body


def scan_records(data: bytes) -> Tuple[List[Tuple[int, Dict[str, Any]]], int, str]:
    """Decode a log image into ``(end_offset, payload)`` pairs.

    Stops at the first torn or checksum-failed record and reports how:
    returns ``(records, valid_offset, corruption)`` where ``corruption``
    is ``""`` (clean end), ``"torn"`` (short header/body or absurd
    length) or ``"checksum"`` (CRC mismatch).
    """
    records: List[Tuple[int, Dict[str, Any]]] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _RECORD_HEADER.size > total:
            return records, offset, "torn"
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD:
            return records, offset, "torn"
        body_start = offset + _RECORD_HEADER.size
        body_end = body_start + length
        if body_end > total:
            return records, offset, "torn"
        body = data[body_start:body_end]
        if checksum(body) != crc:
            return records, offset, "checksum"
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, offset, "checksum"
        records.append((body_end, payload))
        offset = body_end
    return records, offset, ""


class _WalBatch:
    """Context manager for :meth:`WalStore.batch` (group commit)."""

    __slots__ = ("_store",)

    def __init__(self, store: "WalStore") -> None:
        self._store = store

    def __enter__(self) -> "_WalBatch":
        self._store._batch_enter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._store._batch_exit()
        return False


class WalStore(PropositionStore):
    """Write-ahead logged proposition store with crash recovery.

    State lives in an internal :class:`MemoryStore` (reads are as fast
    as the default store); every mutation is mirrored into the log.  A
    clean write failure (``OSError``) rolls the in-memory change back
    and raises :class:`~repro.errors.PersistenceError`, so memory and
    disk never diverge on a survivable error.
    """

    #: Durability / recovery counter names (the ``wal.*`` namespace).
    COUNTERS = (
        "replayed", "truncated_tail", "checksum_failures",
        "discarded_uncommitted", "replay_errors", "snapshot_fallbacks",
        "stale_logs", "fsyncs", "wal_records", "checkpoints",
        "group_batches", "deferred_fsyncs",
    )

    def __init__(self, path: str, fsync: str = "commit",
                 io: Optional[FileIO] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise PersistenceError(
                f"unknown fsync policy {fsync!r} (choose from {FSYNC_POLICIES})"
            )
        self._path = str(path)
        self._fsync_policy = fsync
        self._io = io if io is not None else REAL_IO
        self.registry = registry if registry is not None else MetricsRegistry()
        # The WAL itself is single-writer: in the service every mutation
        # arrives on the commit pipeline's writer thread (reads of the
        # in-memory state go through the serving rwlock above it), so
        # mutable log state is writer-confined rather than locked.
        self._state = MemoryStore(registry=self.registry)  # guarded-by: external: GKBMSService._rwlock
        self._generation = 0            # guarded-by: <writer>
        self._txn_depth = 0             # guarded-by: <writer>
        self._log_offset = 0            # guarded-by: <writer>
        self._handle = None             # guarded-by: <writer>
        self._records_at_checkpoint = 0  # guarded-by: <writer>
        self._batch_depth = 0           # guarded-by: <writer>
        self._force_pending = False     # guarded-by: <writer>
        # Recovery and durability counters live in this store's own
        # registry namespace.  The owning processor surfaces them
        # *read-only* on its ``stats`` view — it no longer adopts the
        # dict itself, so reopening a processor (or opening two) never
        # mixes closure counters into durability counters again.
        self._metrics = self.registry.namespace("wal")
        self._tracer = tracer
        self._c = {name: self._metrics.counter(name) for name in self.COUNTERS}
        #: Dict-compatible view over the ``wal.*`` counters.
        self.stats: StatsView = StatsView(self._metrics)
        #: The durable decision ledger, in append order (dicts as they
        #: appeared on the log; :mod:`repro.decisions` rebuilds its
        #: typed ledger from exactly this list after recovery).
        self.decision_log: List[Dict[str, Any]] = []  # guarded-by: <writer>
        self._decision_index: Dict[str, Dict[str, Any]] = {}  # guarded-by: <writer>
        self._recover()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def reset_stats(self) -> None:
        """Zero the durability counters (benchmarks should snapshot via
        ``stats.snapshot()`` instead of mutating live counters)."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # Paths and low-level log IO
    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def snapshot_path(self) -> str:
        return self._path + ".snapshot"

    @property
    def previous_snapshot_path(self) -> str:
        return self._path + ".snapshot.prev"

    @property
    def log_offset(self) -> int:
        """Bytes successfully appended to the log so far."""
        return self._log_offset  # unguarded: advisory progress read

    @property
    def generation(self) -> int:
        """Checkpoint generation (bumped by every :meth:`checkpoint`)."""
        return self._generation  # unguarded: advisory progress read

    @property
    def fsync_policy(self) -> str:
        return self._fsync_policy

    def _append(self, payload: Dict[str, Any],  # runs-on: writer
                force: bool = False) -> None:
        data = encode_record(payload)
        with self.tracer.span("wal.append", op=payload.get("op"),
                              bytes=len(data)):
            try:
                self._io.write(self._handle, data)
            except OSError as exc:
                raise PersistenceError(
                    f"WAL append failed on {self._path!r}: {exc}"
                ) from exc
            self._log_offset += len(data)
            self._c["wal_records"].inc()
            if self._fsync_policy == "always":
                # "always" is a per-record promise; group batching never
                # weakens it.
                self._force()
            elif force:
                if self._batch_depth:
                    self._force_pending = True
                    self._c["deferred_fsyncs"].inc()
                else:
                    self._force()

    def batch(self) -> "_WalBatch":
        """Group-commit scope: ``with store.batch(): ...``.

        Inside the scope, forces that the ``commit`` policy would issue
        at transaction boundaries are *deferred*; leaving the scope
        issues at most one fsync covering every record appended inside
        it.  This is how the service layer's commit pipeline turns N
        session commits into one fsync.  The ``always`` policy is
        unaffected (its per-record promise stands), and ``never`` still
        never forces.  Nesting is allowed; only the outermost exit
        forces.
        """
        return _WalBatch(self)

    def _batch_enter(self) -> None:  # runs-on: writer
        self._batch_depth += 1

    def _batch_exit(self) -> None:  # runs-on: writer
        self._batch_depth -= 1
        if self._batch_depth == 0:
            if self._force_pending:
                self._force_pending = False
                self._force()
            self._c["group_batches"].inc()

    def _force(self) -> None:  # runs-on: writer
        with self.tracer.span("wal.fsync"):
            try:
                self._io.fsync(self._handle)
            except OSError as exc:
                raise PersistenceError(
                    f"WAL fsync failed on {self._path!r}: {exc}"
                ) from exc
            self._c["fsyncs"].inc()

    def _start_log(self, generation: int) -> None:  # runs-on: writer
        """Truncate the log and write a fresh header for ``generation``."""
        if self._handle is not None:
            self._io.close(self._handle)
        self._handle = self._io.open_truncate(self._path)
        self._log_offset = 0
        self._append(
            {"op": "header", "gen": generation, "version": WAL_VERSION},
            force=self._fsync_policy != "never",
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _load_snapshot(self) -> int:
        """Load the newest valid snapshot into state; return its
        generation (0 when starting empty)."""
        for fallback, path in enumerate(
            (self.snapshot_path, self.previous_snapshot_path)
        ):
            if not self._io.exists(path):
                continue
            try:
                payload = read_checked_json(path, SNAPSHOT_KIND, io=self._io)
            except PersistenceError:
                self._c["checksum_failures"].inc()
                continue
            from repro.propositions.serialization import proposition_from_json

            try:
                generation = int(payload["generation"])
                props = [proposition_from_json(item)
                         for item in payload["propositions"]]
                # Older snapshots predate the decision ledger.
                decisions = [dict(item)
                             for item in payload.get("decisions") or []]
            except (KeyError, TypeError, ValueError, PropositionError):
                self._c["checksum_failures"].inc()
                continue
            if fallback:
                self._c["snapshot_fallbacks"].inc()
            for prop in props:
                self._state.create(prop)
            for item in decisions:
                self._remember_decision(item)
            return generation
        return 0

    def _apply(self, record: Dict[str, Any]) -> None:
        from repro.propositions.serialization import proposition_from_json

        op = record.get("op")
        if op == "create":
            self._state.create(proposition_from_json(record["prop"]))
        elif op == "delete":
            self._state.delete(record["pid"])
        elif op == "clip":
            prop = proposition_from_json(record["prop"])
            self._state.delete(prop.pid)
            self._state.create(prop)
        elif op == "decision":
            self._remember_decision(dict(record["record"]))
        elif op == "decision_retract":
            self._mark_decision_retracted(record["did"], record.get("tick"))
        else:
            raise PropositionError(f"unknown WAL op {op!r}")

    def _replay(self, records: List[Tuple[int, Dict[str, Any]]],
                header_end: int) -> int:
        """Apply records with transaction buffering; returns the offset
        of the last durable boundary (end of the last record applied or
        discarded at top level)."""
        stack: List[List[Dict[str, Any]]] = []
        applied_offset = header_end
        for end_offset, record in records:
            op = record.get("op")
            if op == "header":
                applied_offset = end_offset
                continue
            if op == "txn":
                kind = record.get("kind")
                if kind in ("begin", "save"):
                    stack.append([])
                elif kind in ("commit", "release"):
                    if stack:
                        buffered = stack.pop()
                        if stack:
                            stack[-1].extend(buffered)
                        else:
                            for item in buffered:
                                self._apply_counted(item)
                    if not stack:
                        applied_offset = end_offset
                elif kind in ("abort", "rollback"):
                    if stack:
                        stack.pop()
                    if not stack:
                        applied_offset = end_offset
                continue
            if stack:
                stack[-1].append(record)
            else:
                self._apply_counted(record)
                applied_offset = end_offset
        self._c["discarded_uncommitted"].inc(sum(len(b) for b in stack))
        return applied_offset

    def _apply_counted(self, record: Dict[str, Any]) -> None:
        try:
            self._apply(record)
        except (PropositionError, KeyError, TypeError):
            self._c["replay_errors"].inc()
        else:
            self._c["replayed"].inc()

    # ------------------------------------------------------------------
    # The decision ledger (repro.decisions rides the same log)
    # ------------------------------------------------------------------

    def _remember_decision(self, record: Dict[str, Any]) -> None:  # runs-on: writer
        did = record.get("did")
        existing = self._decision_index.get(did) if did is not None else None
        if existing is not None:
            # Replaying a log on top of a snapshot that already holds
            # the record: the log copy wins (it is at least as new).
            existing.update(record)
            return
        self.decision_log.append(record)
        if did is not None:
            self._decision_index[did] = record

    def _mark_decision_retracted(self, did: str, tick: Any) -> None:  # runs-on: writer
        record = self._decision_index.get(did)
        if record is None:
            raise PropositionError(
                f"decision_retract for unknown decision {did!r}"
            )
        record["status"] = "retracted"
        record["retracted_tick"] = tick

    def append_decision(self, record: Dict[str, Any]) -> None:  # runs-on: writer
        """Log one decision-ledger record (JSON-serializable dict).

        Called *inside* the transaction that applied the decision's
        proposition delta, so the txn buffering in :meth:`_replay` makes
        the pair atomic across a crash."""
        self._append({"op": "decision", "record": record})
        self._remember_decision(dict(record))

    def append_decision_retract(self, did: str, tick: Any) -> None:  # runs-on: writer
        """Log a decision retraction (selective backtracking)."""
        self._append({"op": "decision_retract", "did": did, "tick": tick})
        self._mark_decision_retracted(did, tick)

    def rollback_decision(self, did: str) -> None:  # runs-on: writer
        """Drop an in-memory ledger entry whose enclosing transaction
        aborted — the log's abort marker already discards the logged
        record on replay, this re-aligns the live copy."""
        record = self._decision_index.pop(did, None)
        if record is not None:
            self.decision_log.remove(record)

    def rollback_decision_retract(self, did: str) -> None:  # runs-on: writer
        """Undo an in-memory retraction mark after its transaction
        aborted (only active decisions can be marked, so the prior
        state is always ``done``)."""
        record = self._decision_index.get(did)
        if record is not None:
            record["status"] = "done"
            record["retracted_tick"] = None

    def _recover(self) -> None:  # runs-on: writer
        with self.tracer.span("wal.recover", path=self._path) as span:
            self._do_recover()
            span.set(replayed=self._c["replayed"].value,
                     truncated_tail=self._c["truncated_tail"].value,
                     generation=self._generation)

    def _do_recover(self) -> None:  # runs-on: writer
        self._generation = self._load_snapshot()
        if not self._io.exists(self._path):
            self._start_log(self._generation)
            return
        data = self._io.read_bytes(self._path)
        records, valid_offset, corruption = scan_records(data)
        if corruption == "torn":
            self._c["truncated_tail"].inc()
        elif corruption == "checksum":
            self._c["truncated_tail"].inc()
            self._c["checksum_failures"].inc()
        if not records:
            # Empty or unreadable-from-the-start log: restart it.
            self._start_log(self._generation)
            return
        first = records[0][1]
        has_header = first.get("op") == "header"
        log_generation = first.get("gen", 0) if has_header else 0
        if log_generation != self._generation:
            # A crash inside checkpoint(): the snapshot already contains
            # everything this stale log described.  Discard it.
            self._c["stale_logs"].inc()
            self._start_log(self._generation)
            return
        applied_offset = self._replay(records, records[0][0] if has_header else 0)
        if applied_offset < len(data):
            # Drop the torn/uncommitted tail physically so future
            # appends extend a clean, fully-durable prefix.
            self._io.truncate(self._path, applied_offset)
        self._handle = self._io.open_append(self._path)
        self._log_offset = applied_offset

    # ------------------------------------------------------------------
    # Checkpoint / compaction
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:  # runs-on: writer
        """Fold the log into an atomic snapshot; returns records dropped.

        Ordering is crash-safe at every step: the previous snapshot is
        rotated aside first, the new one is written atomically, and only
        then is the log reset under a new generation.  A crash between
        snapshot and log reset leaves a *stale* log (older generation)
        that recovery discards, because the snapshot already covers it.
        """
        dropped = self._c["wal_records"].value - self._records_at_checkpoint
        new_generation = self._generation + 1
        with self.tracer.span("wal.checkpoint", generation=new_generation,
                              dropped=dropped):
            payload = {
                "generation": new_generation,
                "propositions": [
                    json.loads(row) for row in self.rows()
                ],
                "decisions": [dict(item) for item in self.decision_log],
            }
            try:
                if self._io.exists(self.snapshot_path):
                    self._io.replace(self.snapshot_path,
                                     self.previous_snapshot_path)
                atomic_write_json(self.snapshot_path, SNAPSHOT_KIND, payload,
                                  io=self._io)
            except OSError as exc:
                raise PersistenceError(f"checkpoint failed: {exc}") from exc
            self._generation = new_generation
            self._start_log(new_generation)
            self._c["checkpoints"].inc()
            self._records_at_checkpoint = self._c["wal_records"].value
        return dropped

    def close(self) -> None:  # runs-on: writer
        """Force and release the log handle."""
        if self._handle is not None:
            if self._fsync_policy != "never":
                self._force()
            self._io.close(self._handle)
            self._handle = None

    # ------------------------------------------------------------------
    # Transaction markers (driven by the proposition processor)
    # ------------------------------------------------------------------

    def txn(self, kind: str) -> None:  # runs-on: writer
        """Record a transaction boundary.

        ``begin``/``save`` open a (nested) unit, ``commit``/``release``
        close one, ``abort``/``rollback`` discard one.  Under the
        ``commit`` fsync policy the outermost commit/abort forces the
        log, making the whole telling durable at once.
        """
        if kind in ("begin", "save"):
            self._append({"op": "txn", "kind": kind})
            self._txn_depth += 1
            return
        if kind not in ("commit", "release", "abort", "rollback"):
            raise PropositionError(f"unknown transaction marker {kind!r}")
        self._txn_depth = max(0, self._txn_depth - 1)
        force = (
            self._txn_depth == 0
            and kind in ("commit", "abort")
            and self._fsync_policy == "commit"
        )
        self._append({"op": "txn", "kind": kind}, force=force)

    # ------------------------------------------------------------------
    # Store interface
    # ------------------------------------------------------------------

    @property
    def visibility_epoch(self) -> int:
        return 0

    def create(self, prop: Proposition) -> None:
        """Store and log; a clean log failure undoes the memory change."""
        from repro.propositions.serialization import proposition_to_json

        self._state.create(prop)
        try:
            self._append({"op": "create", "prop": proposition_to_json(prop)})
        except PersistenceError:
            self._state.delete(prop.pid)
            raise

    def delete(self, pid: str) -> Proposition:
        """Remove and log; a clean log failure undoes the memory change."""
        prop = self._state.delete(pid)
        try:
            self._append({"op": "delete", "pid": pid})
        except PersistenceError:
            self._state.create(prop)
            raise
        return prop

    def replace(self, prop: Proposition) -> Proposition:
        """Swap in place, logged as a single ``clip`` record."""
        from repro.propositions.serialization import proposition_to_json

        old = self._state.delete(prop.pid)
        self._state.create(prop)
        try:
            self._append({"op": "clip", "prop": proposition_to_json(prop)})
        except PersistenceError:
            self._state.delete(prop.pid)
            self._state.create(old)
            raise
        return old

    def get(self, pid: str) -> Proposition:
        return self._state.get(pid)

    def retrieve(self, pattern: Pattern) -> Iterator[Proposition]:
        return self._state.retrieve(pattern)

    def __len__(self) -> int:
        return len(self._state)

    def __iter__(self) -> Iterator[Proposition]:
        return iter(self._state)
