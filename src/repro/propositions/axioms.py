"""The CML axiom base (S3).

Section 3.1: "Axioms of CML restrict the set of well-formed networks and
help define their semantics. [...] the axioms of CML are represented by
propositions themselves, enabling very flexible modification and
extension of the language."

This module provides

- :data:`BOOTSTRAP` — the kernel network: the omega objects
  (``Proposition``, ``Class``, the instantiation-level classes), the six
  predefined link classes (classification, specialization, aggregation,
  deduction, constraint, behaviour) *expressed as propositions*;
- :class:`CMLAxiom` — an executable well-formedness check paired with
  the proposition that represents it in the base;
- :class:`AxiomBase` — the registry the proposition processor consults
  on every ``create_proposition``; axioms can be switched off
  individually (the ablation hook used by the Perf-2 benchmark) or
  extended with new ones (language extensibility).

Kernel instantiation structure (mirrors ConceptBase):

- ``Proposition`` is the omega class: everything is implicitly one.
- ``Class`` (isa ``Proposition``) is the class of all classes.
- ``SimpleClass`` / ``MetaClass`` / ``MetametaClass`` (each isa
  ``Class``) hold the user's classes at the three abstraction levels
  the GKBMS needs (tokens / classes / metaclasses, fig 2-5).
- ``Token`` (isa ``Proposition``) holds instance-level objects.
- ``InstanceOf_omega = <Proposition, instanceof, Class>`` is itself an
  instanceof link and the class of all instanceof links — the paper's
  ``InstanceOf omega``.
- ``IsA_omega = <Class, isa, Proposition>`` is itself an isa link and
  the class of all isa links (the paper shows the analogous ``IsA_1``).
- ``Attribute = <Proposition, attribute, Proposition>`` is the class of
  all attribute links; ``RuleAttribute``, ``ConstraintAttribute`` and
  ``BehaviourAttribute`` specialise it for deduction rules, integrity
  constraints and behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.errors import AxiomViolation
from repro.propositions.proposition import (
    ATTRIBUTE,
    BEHAVIOUR,
    CONSTRAINT,
    INSTANCEOF,
    ISA,
    RULE,
    Proposition,
    individual,
    link,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.propositions.processor import PropositionProcessor


#: Omega individuals of the kernel.
OMEGA_INDIVIDUALS = (
    "Proposition",
    "Class",
    "Token",
    "SimpleClass",
    "MetaClass",
    "MetametaClass",
    "AssertionObject",
    "BehaviourSpec",
    "CMLAxiom",
)

#: Names treated as classes without further proof.
KERNEL_CLASSES = frozenset(OMEGA_INDIVIDUALS)


def _bootstrap_propositions() -> List[Proposition]:
    props: List[Proposition] = [individual(name) for name in OMEGA_INDIVIDUALS]
    # Specialization spine.
    props += [
        link("IsA_omega", "Class", ISA, "Proposition"),
        link("IsA_Token", "Token", ISA, "Proposition"),
        link("IsA_SimpleClass", "SimpleClass", ISA, "Class"),
        link("IsA_MetaClass", "MetaClass", ISA, "Class"),
        link("IsA_MetametaClass", "MetametaClass", ISA, "Class"),
        link("IsA_AssertionObject", "AssertionObject", ISA, "Proposition"),
        link("IsA_BehaviourSpec", "BehaviourSpec", ISA, "Proposition"),
        link("IsA_CMLAxiom", "CMLAxiom", ISA, "Proposition"),
    ]
    # Classification spine; InstanceOf_omega doubles as the class of all
    # instanceof links, exactly as in the paper.
    props += [
        link("InstanceOf_omega", "Proposition", INSTANCEOF, "Class"),
        link("InstanceOf_Class", "Class", INSTANCEOF, "Class"),
        link("InstanceOf_Token", "Token", INSTANCEOF, "Class"),
        link("InstanceOf_SimpleClass", "SimpleClass", INSTANCEOF, "Class"),
        link("InstanceOf_MetaClass", "MetaClass", INSTANCEOF, "Class"),
        link("InstanceOf_MetametaClass", "MetametaClass", INSTANCEOF, "Class"),
        link("InstanceOf_AssertionObject", "AssertionObject", INSTANCEOF, "Class"),
        link("InstanceOf_BehaviourSpec", "BehaviourSpec", INSTANCEOF, "Class"),
        link("InstanceOf_CMLAxiom", "CMLAxiom", INSTANCEOF, "Class"),
    ]
    # Aggregation, deduction, constraint and behaviour link classes.
    props += [
        link("Attribute", "Proposition", ATTRIBUTE, "Proposition"),
        link("RuleAttribute", "Class", RULE, "AssertionObject"),
        link("ConstraintAttribute", "Class", CONSTRAINT, "AssertionObject"),
        link("BehaviourAttribute", "Class", BEHAVIOUR, "BehaviourSpec"),
        link("IsA_RuleAttribute", "RuleAttribute", ISA, "Attribute"),
        link("IsA_ConstraintAttribute", "ConstraintAttribute", ISA, "Attribute"),
        link("IsA_BehaviourAttribute", "BehaviourAttribute", ISA, "Attribute"),
    ]
    # The predefined link classes are classes themselves (they have the
    # user's links as instances), so classify them accordingly.
    props += [
        link("InstanceOf_Attribute", "Attribute", INSTANCEOF, "Class"),
        link("InstanceOf_InstanceOf_omega", "InstanceOf_omega", INSTANCEOF, "Class"),
        link("InstanceOf_IsA_omega", "IsA_omega", INSTANCEOF, "Class"),
        link("InstanceOf_RuleAttribute", "RuleAttribute", INSTANCEOF, "Class"),
        link("InstanceOf_ConstraintAttribute", "ConstraintAttribute", INSTANCEOF, "Class"),
        link("InstanceOf_BehaviourAttribute", "BehaviourAttribute", INSTANCEOF, "Class"),
    ]
    return props


BOOTSTRAP: List[Proposition] = _bootstrap_propositions()

#: pids that belong to the kernel and must never be retracted.
KERNEL_PIDS = frozenset(p.pid for p in BOOTSTRAP)


CheckFn = Callable[["PropositionProcessor", Proposition], Optional[str]]


@dataclass(frozen=True)
class CMLAxiom:
    """An executable axiom plus its knowledge-base representation.

    ``check`` inspects a candidate proposition against the current
    processor state and returns an error message (``None`` = accepted).
    """

    name: str
    description: str
    check: CheckFn

    def proposition(self) -> Proposition:
        """The proposition representing this axiom in the base."""
        return individual(f"Axiom_{self.name}")


# ---------------------------------------------------------------------------
# The predefined axioms.
# ---------------------------------------------------------------------------

def _check_reference(proc: "PropositionProcessor", prop: Proposition) -> Optional[str]:
    if prop.is_individual:
        return None
    missing = [ref for ref in (prop.source, prop.destination) if ref not in proc.store]
    if missing:
        return f"link {prop.pid!r} references unknown proposition(s) {missing}"
    return None


def _check_isa_wellformed(proc: "PropositionProcessor", prop: Proposition) -> Optional[str]:
    if not prop.is_isa or prop.is_individual:
        return None
    if prop.source == prop.destination:
        return None  # reflexive isa is harmless
    # Reject non-trivial cycles: the destination must not already reach
    # the source by going *up* the isa hierarchy.
    if prop.source in proc.generalizations(prop.destination, strict=True):
        return (
            f"isa link {prop.pid!r} would create a specialization cycle "
            f"{prop.source!r} <-> {prop.destination!r}"
        )
    return None


def _check_instanceof_class(proc: "PropositionProcessor", prop: Proposition) -> Optional[str]:
    if not prop.is_instanceof or prop.is_individual:
        return None
    if proc.is_class(prop.destination):
        return None
    return (
        f"instanceof link {prop.pid!r}: destination {prop.destination!r} "
        f"is not a class"
    )


def _check_attribute_typing(proc: "PropositionProcessor", prop: Proposition) -> Optional[str]:
    """The instantiation principle (fig 2-6): a link declared to be an
    instance of an attribute class must connect instances of that
    attribute class's source and destination."""
    if not prop.is_instanceof or prop.is_individual:
        return None
    try:
        instance = proc.store.get(prop.source)
        attr_class = proc.store.get(prop.destination)
    except Exception:  # missing refs are axiom A1's business
        return None
    if instance.is_individual or attr_class.is_individual:
        return None
    if attr_class.is_instanceof or attr_class.is_isa:
        return None  # typed by the omega classes, not user attribute classes
    if not proc.is_instance_of(instance.source, attr_class.source):
        return (
            f"attribute instantiation violated: source {instance.source!r} of "
            f"{instance.pid!r} is no instance of {attr_class.source!r} "
            f"(required by attribute class {attr_class.pid!r})"
        )
    if not proc.is_instance_of(instance.destination, attr_class.destination):
        return (
            f"attribute instantiation violated: destination "
            f"{instance.destination!r} of {instance.pid!r} is no instance of "
            f"{attr_class.destination!r} (required by attribute class "
            f"{attr_class.pid!r})"
        )
    return None


def _check_kernel_protection(proc: "PropositionProcessor", prop: Proposition) -> Optional[str]:
    if prop.pid in KERNEL_PIDS and prop.pid in proc.store:
        return f"kernel proposition {prop.pid!r} cannot be redefined"
    return None


PREDEFINED_AXIOMS = (
    CMLAxiom(
        "reference",
        "source and destination of a link must name existing propositions",
        _check_reference,
    ),
    CMLAxiom(
        "isa_acyclic",
        "specialization must not introduce non-trivial cycles",
        _check_isa_wellformed,
    ),
    CMLAxiom(
        "instanceof_class",
        "the destination of a classification link must be a class",
        _check_instanceof_class,
    ),
    CMLAxiom(
        "attribute_typing",
        "links instantiating an attribute class must connect instances of "
        "its source and destination (instantiation principle)",
        _check_attribute_typing,
    ),
    CMLAxiom(
        "kernel_protection",
        "kernel propositions cannot be redefined",
        _check_kernel_protection,
    ),
)


class AxiomBase:
    """Registry of active axioms consulted on each create."""

    def __init__(self, axioms: Iterable[CMLAxiom] = PREDEFINED_AXIOMS) -> None:
        self._axioms: Dict[str, CMLAxiom] = {}
        self._enabled: Dict[str, bool] = {}
        for axiom in axioms:
            self.register(axiom)

    def register(self, axiom: CMLAxiom) -> None:
        """Add (and enable) an axiom."""
        self._axioms[axiom.name] = axiom
        self._enabled[axiom.name] = True

    def names(self) -> List[str]:
        """All registered axiom names."""
        return list(self._axioms)

    def get(self, name: str) -> CMLAxiom:
        """Look an axiom up by name."""
        return self._axioms[name]

    def enable(self, name: str) -> None:
        """Turn an axiom's check on."""
        if name not in self._axioms:
            raise AxiomViolation(name, "cannot enable unknown axiom")
        self._enabled[name] = True

    def disable(self, name: str) -> None:
        """Turn an axiom's check off (ablation hook)."""
        if name not in self._axioms:
            raise AxiomViolation(name, "cannot disable unknown axiom")
        self._enabled[name] = False

    def is_enabled(self, name: str) -> bool:
        """Is the axiom's check active?"""
        return self._enabled.get(name, False)

    def validate(self, proc: "PropositionProcessor", prop: Proposition) -> None:
        """Run all enabled axioms; raise on the first violation."""
        for name, axiom in self._axioms.items():
            if not self._enabled[name]:
                continue
            message = axiom.check(proc, prop)
            if message is not None:
                raise AxiomViolation(name, message)

    def axiom_propositions(self) -> List[Proposition]:
        """The reflective representation of the axioms themselves."""
        return [axiom.proposition() for axiom in self._axioms.values()]
