"""Physical representations of the proposition base.

Section 3.1: "Several physical representations (e.g. Prolog workspaces,
external databases) of propositions can be managed by the proposition
base.  In its interface it exports operations for retrieving and creating
stored propositions."

Three stores implement that interface:

- :class:`MemoryStore` — hash-indexed main-memory store (the default);
- :class:`LogStore` — an append-only journal whose current state is the
  replay of its entries, with compaction (models an external database
  file / recovery log);
- :class:`WorkspaceStore` — named partitions with a union view (models
  the BIM-Prolog workspaces of the prototype).

Stores deal purely in *stored* propositions; inheritance and deduction
live in the proposition processor, exactly as the paper separates the
proposition base from the proposition processor.
"""

from __future__ import annotations

import abc
import json
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import PropositionError, UnknownPropositionError
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.propositions.proposition import Pattern, Proposition


class PropositionStore(abc.ABC):
    """Interface every physical representation must export."""

    @property
    def visibility_epoch(self) -> int:
        """Counter bumped when the *visible* content changes without a
        create/delete going through the owning processor (e.g. workspace
        activation).  Stores without such a mechanism stay at 0; caches
        above the store fold this into their validation stamps."""
        return 0

    @abc.abstractmethod
    def create(self, prop: Proposition) -> None:
        """Store ``prop``; reject duplicate identifiers."""

    @abc.abstractmethod
    def delete(self, pid: str) -> Proposition:
        """Remove and return the proposition with identifier ``pid``."""

    @abc.abstractmethod
    def get(self, pid: str) -> Proposition:
        """Return the proposition with identifier ``pid``."""

    @abc.abstractmethod
    def retrieve(self, pattern: Pattern) -> Iterator[Proposition]:
        """Yield stored propositions matching ``pattern``."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def __iter__(self) -> Iterator[Proposition]: ...

    def __contains__(self, pid: str) -> bool:
        try:
            self.get(pid)
        except UnknownPropositionError:
            return False
        return True

    def txn(self, kind: str) -> None:
        """Transaction boundary hook, driven by the proposition
        processor's tellings: ``begin``/``commit``/``abort`` for the
        outermost telling, ``save``/``release``/``rollback`` for nested
        savepoints.  Purely in-memory stores need no boundaries (their
        state *is* the current state); durable stores override this to
        write transaction markers into their journal."""

    def rows(self) -> Tuple[str, ...]:
        """The visible propositions in canonical serialized form, sorted.

        Two stores hold bit-identical content iff their ``rows()`` are
        equal — the comparison the crash-recovery and replay tests use.
        """
        from repro.propositions.serialization import proposition_to_json

        return tuple(sorted(
            json.dumps(proposition_to_json(prop), sort_keys=True)
            for prop in self
        ))

    def replace(self, prop: Proposition) -> Proposition:
        """Swap the stored proposition with the same pid for ``prop``."""
        old = self.delete(prop.pid)
        self.create(prop)
        return old


class MemoryStore(PropositionStore):
    """Hash-indexed in-memory store.

    Maintains secondary indexes on source, label, destination and the
    (source, label) pair, so the common access paths of the object
    processor (all attributes of an object; all instanceof links of a
    class) are O(result).  Index buckets are pruned when they empty, so
    index dictionaries never grow beyond the live proposition set under
    create/delete churn.

    Access counters (creates / deletes / retrievals / scans) live in
    ``namespace`` of ``registry`` — private per store unless a shared
    registry is passed in — and surface through ``stats``, a
    :class:`~repro.obs.metrics.StatsView`.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 namespace: str = "store") -> None:
        self._by_pid: Dict[str, Proposition] = {}
        self._by_source: Dict[str, set] = {}
        self._by_label: Dict[str, set] = {}
        self._by_destination: Dict[str, set] = {}
        self._by_source_label: Dict[Tuple[str, str], set] = {}
        self._by_label_destination: Dict[Tuple[str, str], set] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        self._metrics = self.registry.namespace(namespace)
        self._c_creates = self._metrics.counter("creates")
        self._c_deletes = self._metrics.counter("deletes")
        self._c_retrievals = self._metrics.counter("retrievals")
        self._c_scans = self._metrics.counter("scans")
        self.stats = StatsView(self._metrics)

    def reset_stats(self) -> None:
        """Zero this store's access counters."""
        self.stats.reset()

    def _index_entries(self, prop: Proposition):
        yield self._by_source, prop.source
        yield self._by_label, prop.label
        yield self._by_destination, prop.destination
        yield self._by_source_label, (prop.source, prop.label)
        yield self._by_label_destination, (prop.label, prop.destination)

    def create(self, prop: Proposition) -> None:
        """Store; reject duplicate identifiers."""
        if prop.pid in self._by_pid:
            raise PropositionError(f"duplicate proposition identifier {prop.pid!r}")
        self._by_pid[prop.pid] = prop
        for index, key in self._index_entries(prop):
            index.setdefault(key, set()).add(prop.pid)
        self._c_creates.inc()

    def delete(self, pid: str) -> Proposition:
        """Remove and return by identifier; empty buckets are pruned."""
        prop = self.get(pid)
        del self._by_pid[pid]
        for index, key in self._index_entries(prop):
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(pid)
                if not bucket:
                    del index[key]
        self._c_deletes.inc()
        return prop

    def get(self, pid: str) -> Proposition:
        """Fetch by identifier."""
        try:
            return self._by_pid[pid]
        except KeyError:
            raise UnknownPropositionError(f"unknown proposition {pid!r}") from None

    def _candidate_pids(self, pattern: Pattern) -> Optional[Iterable[str]]:
        """Pick the most selective index for ``pattern``; None = scan."""
        if pattern.pid is not None:
            return [pattern.pid] if pattern.pid in self._by_pid else []
        if pattern.source is not None and pattern.label is not None:
            return self._by_source_label.get((pattern.source, pattern.label), ())
        if pattern.label is not None and pattern.destination is not None:
            return self._by_label_destination.get(
                (pattern.label, pattern.destination), ()
            )
        if pattern.source is not None:
            return self._by_source.get(pattern.source, ())
        if pattern.destination is not None:
            return self._by_destination.get(pattern.destination, ())
        if pattern.label is not None:
            return self._by_label.get(pattern.label, ())
        return None

    def retrieve(self, pattern: Pattern) -> Iterator[Proposition]:
        """Yield matches via the most selective index."""
        self._c_retrievals.inc()
        candidates = self._candidate_pids(pattern)
        if candidates is None:
            self._c_scans.inc()
            yield from pattern.filter(iter(self._by_pid.values()))
            return
        for pid in list(candidates):
            prop = self._by_pid.get(pid)
            if prop is not None and pattern.matches(prop):
                yield prop

    def __len__(self) -> int:
        return len(self._by_pid)

    def __iter__(self) -> Iterator[Proposition]:
        return iter(list(self._by_pid.values()))


class LogStore(PropositionStore):
    """Append-only journal store.

    Every mutation appends a ``("create" | "delete", proposition)`` entry;
    the current state is derived by replay and cached in an internal
    :class:`MemoryStore`.  :meth:`compact` rewrites the journal to the
    live set.  This models an external-database representation with a
    recovery log, and gives the Perf-4 benchmark a second physical
    representation with different write/read trade-offs.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._journal: List[Tuple[str, Proposition]] = []
        self._state = MemoryStore(registry=self.registry)
        self._c_compactions = self.registry.namespace("store").counter("compactions")

    @property
    def stats(self) -> StatsView:
        """Access counters of the replayed state (plus ``compactions``)."""
        return self._state.stats

    def reset_stats(self) -> None:
        """Zero the store's access counters."""
        self._state.reset_stats()

    @classmethod
    def from_journal(
        cls, entries: Iterable[Tuple[str, Proposition]]
    ) -> "LogStore":
        """Reconstruct a store by replaying ``(op, proposition)`` journal
        entries — the recovery constructor.  ``from_journal(s.journal)``
        reproduces both ``s``'s state and its journal exactly."""
        store = cls()
        for op, prop in entries:
            if op == "create":
                store.create(prop)
            elif op == "delete":
                store.delete(prop.pid)
            else:
                raise PropositionError(f"unknown journal op {op!r}")
        return store

    @property
    def journal(self) -> Tuple[Tuple[str, Proposition], ...]:
        """The append-only (op, proposition) entries."""
        return tuple(self._journal)

    def create(self, prop: Proposition) -> None:
        """Store and append a create entry."""
        self._state.create(prop)
        self._journal.append(("create", prop))

    def delete(self, pid: str) -> Proposition:
        """Remove and append a delete entry."""
        prop = self._state.delete(pid)
        self._journal.append(("delete", prop))
        return prop

    def get(self, pid: str) -> Proposition:
        """Fetch from the replayed state."""
        return self._state.get(pid)

    def retrieve(self, pattern: Pattern) -> Iterator[Proposition]:
        """Query the replayed state."""
        return self._state.retrieve(pattern)

    def replay(self) -> MemoryStore:
        """Rebuild state purely from the journal (recovery path)."""
        state = MemoryStore()
        for op, prop in self._journal:
            if op == "create":
                state.create(prop)
            else:
                state.delete(prop.pid)
        return state

    def compact(self) -> int:
        """Drop superseded journal entries; return entries removed."""
        before = len(self._journal)
        self._journal = [("create", prop) for prop in self._state]
        self._c_compactions.inc()
        return before - len(self._journal)

    def __len__(self) -> int:
        return len(self._state)

    def __iter__(self) -> Iterator[Proposition]:
        return iter(self._state)


class WorkspaceStore(PropositionStore):
    """Named partitions with a union view (Prolog-workspace model).

    Each proposition lives in exactly one workspace; retrieval runs over
    the union of *active* workspaces.  Deactivating a workspace hides its
    propositions without deleting them — the mechanism the model
    configuration module (S8) uses to activate model nodes.
    """

    DEFAULT = "__kernel__"

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._metrics = self.registry.namespace("store")
        self._c_activations = self._metrics.counter("activations")
        self._c_deactivations = self._metrics.counter("deactivations")
        self._c_removals = self._metrics.counter("workspaces_removed")
        self.stats = StatsView(self._metrics)
        self._spaces: Dict[str, MemoryStore] = {
            self.DEFAULT: self._new_space(self.DEFAULT)
        }
        self._active: Dict[str, bool] = {self.DEFAULT: True}
        self._location: Dict[str, str] = {}
        self._current = self.DEFAULT
        self._visibility_epoch = 0
        #: Per-workspace visibility counters: a session overlay's own
        #: activate/deactivate/remove history, independent of the
        #: *global* epoch that invalidates processor closure caches.
        self._workspace_epochs: Dict[str, int] = {self.DEFAULT: 0}

    def _new_space(self, name: str) -> MemoryStore:
        # one metrics namespace per partition: "store.<name>.creates" etc.
        return MemoryStore(registry=self.registry, namespace=f"store.{name}")

    def snapshot(self) -> Dict[str, int]:
        """All ``store.*`` counters (union + per-partition) by full name."""
        return self.registry.snapshot("store")

    def reset_stats(self) -> None:
        """Zero the union-level and per-partition counters."""
        self.registry.reset("store")

    @property
    def visibility_epoch(self) -> int:
        """Bumped on activate/deactivate: visible content changed without
        any create/delete, so processor-level caches must revalidate."""
        return self._visibility_epoch

    # -- workspace management ---------------------------------------------

    def add_workspace(self, name: str, active: bool = True) -> None:
        """Create a named partition."""
        if name in self._spaces:
            raise PropositionError(f"workspace {name!r} already exists")
        self._spaces[name] = self._new_space(name)
        self._active[name] = active
        self._workspace_epochs[name] = 0

    def remove_workspace(self, name: str) -> int:
        """Discard a partition and everything in it; returns how many
        propositions were dropped.

        This is the session-overlay discard path of the service layer:
        a session stages uncommitted tellings into its own workspace and
        aborting must throw them away.  Removing an *inactive* (or
        empty) workspace bumps only that workspace's own epoch — its
        content never reached the union view, so processor closure
        caches stamped against :attr:`visibility_epoch` stay valid and
        no overlay entry can leak into them.  Removing an active,
        non-empty workspace does change the visible network, so the
        global epoch bumps exactly as deactivation would.
        """
        if name == self.DEFAULT:
            raise PropositionError("the kernel workspace cannot be removed")
        if name not in self._spaces:
            raise PropositionError(f"unknown workspace {name!r}")
        space = self._spaces.pop(name)
        was_active = self._active.pop(name)
        self._workspace_epochs[name] = self._workspace_epochs.get(name, 0) + 1
        dropped = len(space)
        for prop in space:
            self._location.pop(prop.pid, None)
        if was_active and dropped:
            self._visibility_epoch += 1
        if self._current == name:
            self._current = self.DEFAULT
        self._c_removals.inc()
        return dropped

    def workspaces(self) -> List[str]:
        """All partition names."""
        return list(self._spaces)

    def workspace_epoch(self, name: str) -> int:
        """The per-workspace visibility counter: bumped when *this*
        workspace is activated, deactivated or removed.  Session-scoped
        caches key on this; the global :attr:`visibility_epoch` moves
        only when the shared union view changes."""
        if name not in self._workspace_epochs:
            raise PropositionError(f"unknown workspace {name!r}")
        return self._workspace_epochs[name]

    def is_active(self, name: str) -> bool:
        """Is the partition part of the union view?"""
        if name not in self._spaces:
            raise PropositionError(f"unknown workspace {name!r}")
        return self._active[name]

    def propositions_in(self, name: str) -> List[Proposition]:
        """The propositions stored in one partition, active or not —
        how a session enumerates its staged overlay write-set."""
        if name not in self._spaces:
            raise PropositionError(f"unknown workspace {name!r}")
        return list(self._spaces[name])

    def set_current(self, name: str) -> None:
        """Direct new propositions into a partition."""
        if name not in self._spaces:
            raise PropositionError(f"unknown workspace {name!r}")
        self._current = name

    def activate(self, name: str) -> None:
        """Make a partition visible."""
        if name not in self._spaces:
            raise PropositionError(f"unknown workspace {name!r}")
        if not self._active[name]:
            self._visibility_epoch += 1
            self._workspace_epochs[name] = self._workspace_epochs.get(name, 0) + 1
            self._c_activations.inc()
        self._active[name] = True

    def deactivate(self, name: str) -> None:
        """Hide a partition (kernel excluded)."""
        if name not in self._spaces:
            raise PropositionError(f"unknown workspace {name!r}")
        if name == self.DEFAULT:
            raise PropositionError("the kernel workspace cannot be deactivated")
        if self._active[name]:
            self._visibility_epoch += 1
            self._workspace_epochs[name] = self._workspace_epochs.get(name, 0) + 1
            self._c_deactivations.inc()
        self._active[name] = False

    def workspace_of(self, pid: str) -> str:
        """The partition holding a proposition."""
        try:
            return self._location[pid]
        except KeyError:
            raise UnknownPropositionError(f"unknown proposition {pid!r}") from None

    def _active_spaces(self) -> Iterator[MemoryStore]:
        for name, space in self._spaces.items():
            if self._active[name]:
                yield space

    # -- store interface ----------------------------------------------------

    def create(self, prop: Proposition) -> None:
        """Store into the current partition."""
        if prop.pid in self._location:
            raise PropositionError(f"duplicate proposition identifier {prop.pid!r}")
        self._spaces[self._current].create(prop)
        self._location[prop.pid] = self._current

    def delete(self, pid: str) -> Proposition:
        """Remove from its partition."""
        space = self.workspace_of(pid)
        prop = self._spaces[space].delete(pid)
        del self._location[pid]
        return prop

    def get(self, pid: str) -> Proposition:
        """Fetch if its partition is active."""
        space = self.workspace_of(pid)
        if not self._active[space]:
            raise UnknownPropositionError(
                f"proposition {pid!r} is in inactive workspace {space!r}"
            )
        return self._spaces[space].get(pid)

    def retrieve(self, pattern: Pattern) -> Iterator[Proposition]:
        """Query the union of active partitions.

        A pid-bound pattern short-circuits straight to the owning
        partition via the location map instead of probing every active
        space; other patterns use each partition's own secondary indexes
        (candidate selection stays per-space, never a unioned scan).
        """
        if pattern.pid is not None:
            space = self._location.get(pattern.pid)
            if space is None or not self._active[space]:
                return
            prop = self._spaces[space].get(pattern.pid)
            if pattern.matches(prop):
                yield prop
            return
        for space in self._active_spaces():
            yield from space.retrieve(pattern)

    def __len__(self) -> int:
        return sum(len(space) for space in self._active_spaces())

    def __iter__(self) -> Iterator[Proposition]:
        for space in self._active_spaces():
            yield from space
