"""The CML proposition quadruple.

From the paper (section 3.1)::

    A CML proposition is a quadruple  p = <x, l, y, t>  where p is the
    identifier of the proposition, x is the name of the source
    proposition, l is the label, y is the name of the destination
    proposition and t is the time associated with p.  [...] Note that
    nodes are also represented by propositions.

We follow the Telos/CML convention that an *individual* (a node) is a
self-referential proposition whose source and destination are its own
identifier and whose label is its name.  Links reference other
propositions by identifier, so a link can itself be the source of a
further proposition ("p can appear as the source component of another
proposition p'"), which is what makes attributes first-class objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Optional

from repro.errors import PropositionError
from repro.timecalc.interval import ALWAYS, Interval

#: Reserved labels with predefined axiomatic interpretation.
INSTANCEOF = "instanceof"
ISA = "isa"
ATTRIBUTE = "attribute"
RULE = "rule"
CONSTRAINT = "constraint"
BEHAVIOUR = "behaviour"

RESERVED_LABELS = frozenset({INSTANCEOF, ISA})


@dataclass(frozen=True)
class Proposition:
    """An immutable CML proposition ``p = <x, l, y, t>``.

    ``pid`` is the proposition identifier; ``source`` and ``destination``
    name other propositions by identifier.  ``time`` is the validity
    interval of the asserted link; ``belief_time`` records when the
    knowledge base was told (the ``21-Sep-1987+`` stamps of the paper).
    """

    pid: str
    source: str
    label: str
    destination: str
    time: Interval = ALWAYS
    belief_time: Interval = ALWAYS

    def __post_init__(self) -> None:
        for name, value in (
            ("pid", self.pid),
            ("source", self.source),
            ("label", self.label),
            ("destination", self.destination),
        ):
            if not isinstance(value, str) or not value:
                raise PropositionError(
                    f"proposition {name} must be a non-empty string, got {value!r}"
                )
        if not isinstance(self.time, Interval):
            raise PropositionError(f"time must be an Interval, got {self.time!r}")
        if not isinstance(self.belief_time, Interval):
            raise PropositionError(
                f"belief_time must be an Interval, got {self.belief_time!r}"
            )

    # -- structural predicates -------------------------------------------

    @property
    def is_individual(self) -> bool:
        """Node propositions are self-referential: ``<p, name, p, t>``."""
        return self.source == self.pid and self.destination == self.pid

    @property
    def is_link(self) -> bool:
        """Not self-referential: references other propositions."""
        return not self.is_individual

    @property
    def is_instanceof(self) -> bool:
        """Is this a classification link?"""
        return self.label == INSTANCEOF

    @property
    def is_isa(self) -> bool:
        """Is this a specialization link?"""
        return self.label == ISA

    def quadruple(self) -> tuple:
        """The raw ``<x, l, y, t>`` quadruple (without the identifier)."""
        return (self.source, self.label, self.destination, self.time)

    def with_time(self, time: Interval) -> "Proposition":
        """Copy with a different validity interval."""
        return replace(self, time=time)

    def __repr__(self) -> str:
        if self.is_individual:
            return f"{self.pid}=<{self.label}>"
        return (
            f"{self.pid}=<{self.source}, {self.label}, "
            f"{self.destination}, {self.time!r}>"
        )


def individual(name: str, time: Interval = ALWAYS,
               belief_time: Interval = ALWAYS) -> Proposition:
    """Build the self-referential proposition representing a node."""
    return Proposition(
        pid=name, source=name, label=name, destination=name,
        time=time, belief_time=belief_time,
    )


def link(pid: str, source: str, label: str, destination: str,
         time: Interval = ALWAYS, belief_time: Interval = ALWAYS) -> Proposition:
    """Build a link proposition between two existing propositions."""
    prop = Proposition(
        pid=pid, source=source, label=label, destination=destination,
        time=time, belief_time=belief_time,
    )
    if prop.is_individual:
        raise PropositionError(
            f"link {pid!r} degenerated into an individual; use individual()"
        )
    return prop


@dataclass(frozen=True)
class Pattern:
    """A retrieval pattern: any combination of components, ``None`` = wildcard.

    ``at`` restricts matches to propositions whose validity interval
    covers the given time point.
    """

    pid: Optional[str] = None
    source: Optional[str] = None
    label: Optional[str] = None
    destination: Optional[str] = None
    at: Any = None
    _fields: tuple = field(default=(), repr=False, compare=False)

    def matches(self, prop: Proposition) -> bool:
        """Does the proposition satisfy every set component?"""
        if self.pid is not None and prop.pid != self.pid:
            return False
        if self.source is not None and prop.source != self.source:
            return False
        if self.label is not None and prop.label != self.label:
            return False
        if self.destination is not None and prop.destination != self.destination:
            return False
        if self.at is not None and not prop.time.contains_point(self.at):
            return False
        return True

    def filter(self, props: Iterator[Proposition]) -> Iterator[Proposition]:
        """Lazily filter a proposition stream."""
        return (p for p in props if self.matches(p))

    @property
    def is_total_wildcard(self) -> bool:
        """No component set: matches everything."""
        return (
            self.pid is None and self.source is None
            and self.label is None and self.destination is None
            and self.at is None
        )
