"""The ConceptBase facade (fig 3-1).

One object exposing the whole conceptual model base management system:
the proposition processor (with axiom base and consistency checker),
the object processor (frames, deductive relational view, behaviours),
the inference engines (rules, prover, assertion evaluation) and the
model configuration/display level.  The GKBMS builds on the same
components; this facade makes the kernel adoptable on its own, e.g.::

    cb = ConceptBase()
    cb.define_metaclass("TDL_EntityClass")
    cb.tell('''
        TELL Invitation IN TDL_EntityClass WITH
          attribute sender : Person
        END
    ''')
    cb.add_rule("attr(?x, informed, ?y) :- attr(?x, sender, ?y).")
    cb.add_constraint("Invitation", "HasSender", "Known(self.sender)")
    cb.ask("exists i/Invitation (Known(i.sender))")
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.analysis.analyzer import ModelAnalyzer
from repro.analysis.diagnostics import DiagnosticReport
from repro.assertions.ast import Quantifier
from repro.assertions.evaluator import Bindings, Evaluator
from repro.assertions.parser import parse_assertion
from repro.consistency.checker import ConsistencyChecker, Violation
from repro.deduction.kb import RuleEngine
from repro.deduction.parser import parse_literal
from repro.models.display.relational_display import RelationalDisplay
from repro.models.display.text_dag import TextDAGBrowser
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.objects.behaviours import BehaviourBase
from repro.objects.frame import ObjectFrame
from repro.objects.object_processor import ObjectProcessor
from repro.objects.relational import RelationalView
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Proposition
from repro.propositions.store import PropositionStore
from repro.timecalc.interval import ALWAYS, Interval


class ConceptBase:
    """The conceptual model base management system, in one object."""

    def __init__(self, store: Optional[PropositionStore] = None,
                 strict: bool = False,
                 incremental: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        #: One registry for the whole facade: each component writes its
        #: own namespace (proposition.*, deduction.*, consistency.*, …),
        #: so ``cb.registry.snapshot()`` is the full system census.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer
        self.propositions = PropositionProcessor(
            store=store, incremental=incremental, registry=self.registry,
            tracer=tracer
        )
        self.objects = ObjectProcessor(self.propositions)
        self.rules = RuleEngine(self.propositions, incremental=incremental,
                                registry=self.registry, tracer=tracer)
        self.rules.install_hook()
        self.consistency = ConsistencyChecker(
            self.propositions, registry=self.registry, tracer=tracer
        )
        self.consistency.set_rule_source(self.rules.rules)
        self.behaviours = BehaviourBase(self.propositions)
        self.view = RelationalView(self.propositions)
        self._evaluator = Evaluator(self.propositions)
        #: Strict mode refuses to commit rules, constraints and frames
        #: that carry error-level static diagnostics.
        self.strict = strict

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Pin a tracer on every component (``None`` = process default)."""
        self._tracer = tracer
        self.propositions.set_tracer(tracer)
        self.rules.set_tracer(tracer)
        self.consistency.set_tracer(tracer)

    def explain(self):
        """A :class:`~repro.obs.explain.QueryExplain` bound to this
        facade's registry (and pinned tracer, if any)."""
        from repro.obs.explain import QueryExplain

        return QueryExplain(self.registry, tracer=self._tracer)

    def metrics_snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """Point-in-time values of every metric the facade owns."""
        return self.registry.snapshot(prefix)

    def reset_stats(self) -> None:
        """Zero every counter in the facade's registry."""
        self.registry.reset()

    # ------------------------------------------------------------------
    # Telling (object processor level)
    # ------------------------------------------------------------------

    def define_class(self, name: str, isa: Iterable[str] = (),
                     level: str = "SimpleClass") -> Proposition:
        """Create a class at an instantiation level, with generalizations."""
        return self.propositions.define_class(name, level=level, isa=isa)

    def define_metaclass(self, name: str) -> Proposition:
        """Create a metaclass (its instances are classes)."""
        return self.propositions.define_class(name, level="MetaClass")

    def tell(self, frames: Union[str, ObjectFrame],
             time: Interval = ALWAYS) -> List[Proposition]:
        """Tell one frame or a script of frames.

        In strict mode the frames are linted first and error-level
        diagnostics refuse the whole telling."""
        if self.strict:
            from repro.analysis.schema import check_frames
            from repro.objects.frame import parse_frames

            parsed = (parse_frames(frames) if isinstance(frames, str)
                      else [frames])
            report = DiagnosticReport()
            report.extend(check_frames(parsed, self.propositions))
            report.raise_if_errors()
        if isinstance(frames, str) and frames.count("TELL") > 1:
            return self.objects.tell_all(frames, time=time)
        return self.objects.tell(frames, time=time)

    def untell(self, name: str) -> List[Proposition]:
        """Retract an object and everything referencing it."""
        return self.objects.untell(name)

    def telling(self):
        """Batched update context (checked as one unit on commit when
        the consistency hook is installed)."""
        return self.propositions.telling()

    def transaction(self):
        """A savepoint-scoped update: nests freely (each level rolls
        back independently), and a consistency-check failure at commit
        (after :meth:`enforce_on_commit`) automatically rolls the whole
        unit back before the :class:`~repro.errors.ConsistencyError`
        propagates — unlike :meth:`telling`, which leaves the batch
        committed for the caller to repair.  With a durable store
        (:class:`~repro.propositions.wal.WalStore`), commit is also the
        durability boundary under the ``commit`` fsync policy."""
        return self.propositions.telling(rollback_on_listener_error=True)

    # ------------------------------------------------------------------
    # Asking
    # ------------------------------------------------------------------

    def ask_object(self, name: str) -> ObjectFrame:
        """The frame grouped around one object identifier."""
        return self.objects.ask(name)

    def ask(self, assertion: str, env: Optional[Bindings] = None) -> bool:
        """Evaluate a (closed or environment-bound) assertion."""
        return self._evaluator.evaluate(parse_assertion(assertion),
                                        env or {})

    def ask_all(self, assertion: str) -> List[Bindings]:
        """Witnesses of an ``exists``-quantified assertion."""
        expr = parse_assertion(assertion)
        if not isinstance(expr, Quantifier):
            raise ReproError("ask_all() requires an exists-quantified assertion")
        return list(self._evaluator.satisfying(expr))

    def query(self, literal: str) -> List[Tuple[Any, ...]]:
        """Answer a fact-level query (``attr(?x, sender, ?y)``) through
        the prover, rules included."""
        prover = self.rules.prover()
        return prover.answers(parse_literal(literal))

    def instances(self, cls: str, at: Optional[object] = None) -> List[str]:
        """The extent of a class; with ``at``, the as-of extent."""
        return sorted(self.propositions.instances_of(cls, at=at))

    # ------------------------------------------------------------------
    # Rules, constraints, behaviours
    # ------------------------------------------------------------------

    def add_rule(self, rule: str, name: Optional[str] = None,
                 attached_to: str = "Proposition") -> None:
        """Register a deduction rule (documented as a rule proposition).

        In strict mode the rule is first analyzed together with the
        already-registered rules; unsafe rules and recursion through
        negation refuse the commit with an
        :class:`~repro.errors.AnalysisError`."""
        if self.strict:
            analyzer = ModelAnalyzer(self.propositions)
            analyzer.add_rules(self.rules.rules().items())
            rule_name = name or f"rule_{len(self.rules.rules()) + 1}"
            if isinstance(rule, str):
                analyzer.add_rule_text(rule_name, rule)
            else:
                analyzer.add_rule(rule_name, rule)
            analyzer.analyze().raise_if_errors()
        self.rules.add_rule(rule, name=name, attached_to=attached_to)

    def add_constraint(self, cls: str, name: str, text: str) -> None:
        """Attach a first-order constraint to a class.

        In strict mode the constraint is statically checked first
        (unbound variables, undefined classes) and error diagnostics
        refuse the attachment."""
        if self.strict:
            analyzer = ModelAnalyzer(self.propositions)
            analyzer.add_constraint_text(name, cls, text)
            analyzer.analyze().raise_if_errors()
        self.consistency.attach_constraint(cls, name, text)

    def check(self) -> List[Violation]:
        """Check every attached constraint over its extent."""
        return self.consistency.check_all()

    def analyze(self, check_times: bool = False) -> DiagnosticReport:
        """Static analysis of the whole model: rule stratification and
        safety, constraint safety, schema lint and (optionally) validity
        containment — without evaluating anything against extents."""
        analyzer = ModelAnalyzer(self.propositions, check_times=check_times)
        analyzer.add_rules(self.rules.rules().items())
        analyzer.add_constraint_defs(self.consistency.constraints().values())
        return analyzer.analyze()

    def enforce_on_commit(self) -> None:
        """Reject inconsistent tellings at commit (set-oriented)."""
        self.consistency.install_hook()

    def define_behaviour(self, cls: str, name: str, fn) -> None:
        """Attach a behaviour (method) to a class."""
        self.behaviours.define(cls, name, fn)

    def invoke(self, name: str, behaviour: str, *args: Any) -> Any:
        """Run a behaviour on an object (most specific class wins)."""
        return self.behaviours.invoke(name, behaviour, *args)

    # ------------------------------------------------------------------
    # Display (model processor level)
    # ------------------------------------------------------------------

    def display(self, name: str) -> str:
        """The object's frame rendering (the ``display`` behaviour)."""
        return self.behaviours.invoke(name, "display")

    def relational_display(self, cls: str, **options) -> str:
        """Tabular rendering of a class relation (§3.3.1)."""
        return RelationalDisplay(self.view, **options).render(cls)

    def browse(self, focus: str, direction: str = "specializations",
               depth: int = 3) -> str:
        """A text-DAG rendering from ``focus`` along a closure."""
        proc = self.propositions

        def children(name: str) -> List[str]:
            if not proc.exists(name):
                return []
            if direction == "specializations":
                return sorted(proc.specializations(name, strict=True))
            if direction == "generalizations":
                return sorted(proc.generalizations(name, strict=True))
            if direction == "instances":
                return sorted(proc.instances_of(name, direct=True))
            raise ReproError(f"unknown browse direction {direction!r}")

        return TextDAGBrowser(children=children, depth=depth).render(focus)

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Census of the proposition base by proposition kind."""
        return self.propositions.summary()
