"""Bridge between the proposition base and the inference engines.

:class:`KnowledgeView` exposes the proposition base as ground facts:

- ``prop(P, X, L, Y)`` — every stored proposition quadruple;
- ``in(X, C)`` — classification closed over specialization;
- ``isa(C, D)`` — explicit specialization links;
- ``isa_star(C, D)`` — reflexive-transitive specialization;
- ``attr(X, L, Y)`` — attribute links (labels are data);
- ``attr_of(P, C)`` — link P is an instance of attribute class C.

:class:`RuleEngine` manages *rule propositions*: each registered rule is
documented in the knowledge base (an ``AssertionObject`` individual plus
a ``rule`` link from the class it is attached to), evaluated bottom-up
for the deduced-proposition hook, and available to the top-down
:class:`~repro.deduction.prover.Prover` for query answering.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.errors import DeductionError
from repro.deduction.parser import parse_rule
from repro.deduction.prover import Prover
from repro.deduction.seminaive import (
    Database,
    MaterializedFixpoint,
    evaluate,
    maintenance_stats,
)
from repro.deduction.terms import Rule
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.obs.tracing import Tracer, get_tracer
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Pattern, Proposition

#: Prefix of synthetic identifiers for deduced propositions.
DEDUCED_PREFIX = "ded:"


class KnowledgeView:
    """Fact-level view of a proposition processor."""

    def __init__(self, processor: PropositionProcessor) -> None:
        self.processor = processor
        self._cache_epoch = -1
        self._cache: Dict[str, List[Tuple]] = {}

    def facts(self, predicate: str) -> Iterable[Tuple]:
        """Ground facts for ``predicate`` (cached per epoch)."""
        if self._cache_epoch != self.processor.epoch:
            self._cache.clear()
            self._cache_epoch = self.processor.epoch
        if predicate not in self._cache:
            self._cache[predicate] = list(self._compute(predicate))
        return self._cache[predicate]

    def _compute(self, predicate: str) -> Iterator[Tuple]:
        proc = self.processor
        if predicate == "prop":
            for p in proc.store:
                yield (p.pid, p.source, p.label, p.destination)
        elif predicate == "attr":
            for p in proc.store:
                if p.is_link and not p.is_instanceof and not p.is_isa:
                    yield (p.source, p.label, p.destination)
        elif predicate == "isa":
            for p in proc.store:
                if p.is_isa and p.is_link:
                    yield (p.source, p.destination)
        elif predicate == "isa_star":
            seen: Set[Tuple] = set()
            names = [p.pid for p in proc.store if p.is_individual]
            names += [p.pid for p in proc.store if p.is_link]
            for name in names:
                for sup in proc.generalizations(name):
                    pair = (name, sup)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair
        elif predicate == "in":
            seen = set()
            for p in proc.store:
                if p.is_instanceof and p.is_link:
                    for sup in proc.generalizations(p.destination):
                        pair = (p.source, sup)
                        if pair not in seen:
                            seen.add(pair)
                            yield pair
        elif predicate == "attr_of":
            for p in proc.store:
                if p.is_instanceof and p.is_link:
                    try:
                        inst = proc.store.get(p.source)
                    except Exception:
                        continue
                    if inst.is_link and not inst.is_instanceof and not inst.is_isa:
                        yield (p.source, p.destination)
        # unknown predicates yield nothing: they may be purely IDB.

    def database(self, predicates: Iterable[str] = ("prop", "attr", "isa", "in")) -> Database:
        """Materialise an EDB for bottom-up evaluation."""
        db = Database()
        for predicate in predicates:
            for row in self.facts(predicate):
                db.add(predicate, row)
        return db


class RuleEngine:
    """Rule propositions + deduced propositions for a processor.

    ``optimise`` selects the compiled join-plan evaluator for bottom-up
    materialisation (the default) or the interpreted baseline; ``stats``
    accumulates the evaluator's join/index-probe counters across
    :meth:`materialise` calls, next to the prover's lemma statistics.

    Counters live in the engine's own ``deduction`` namespace of a
    :class:`~repro.obs.metrics.MetricsRegistry` (private by default, or
    a shared registry passed in); ``stats`` is a
    :class:`~repro.obs.metrics.StatsView` over that namespace, so two
    engines never alias each other's dict.
    """

    #: EDB predicates materialised for bottom-up evaluation.
    EDB_PREDICATES: Tuple[str, ...] = ("prop", "attr", "isa", "in")

    def __init__(self, processor: PropositionProcessor,
                 optimise: bool = True,
                 incremental: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.processor = processor
        self.view = KnowledgeView(processor)
        self.optimise = optimise
        self.incremental = incremental
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer
        self._metrics = self.registry.namespace("deduction")
        for key in maintenance_stats():
            self._metrics.counter(key)
        self._c_materialisations = self._metrics.counter("materialisations")
        self._c_refreshes = self._metrics.counter("idb_refreshes")
        self.stats = StatsView(self._metrics)
        self._rules: Dict[str, Rule] = {}
        self._idb_epoch = -1
        self._idb: Optional[Database] = None
        self._fixpoint: Optional[MaterializedFixpoint] = None
        self._edb_rows: Dict[str, Set[Tuple]] = {}
        self._hooked = False

    @property
    def tracer(self) -> Tracer:
        """The engine's tracer (falls back to the process default)."""
        return self._tracer if self._tracer is not None else get_tracer()

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Pin a tracer for this engine (``None`` = process default)."""
        self._tracer = tracer

    def reset_stats(self) -> None:
        """Zero this engine's own counters."""
        self.stats.reset()

    # -- rule management -------------------------------------------------

    def add_rule(
        self,
        rule: Union[str, Rule],
        name: Optional[str] = None,
        attached_to: str = "Proposition",
        document: bool = True,
    ) -> Rule:
        """Register a deduction rule.

        With ``document=True`` the rule is reflected into the knowledge
        base as a rule proposition: an ``AssertionObject`` individual
        holding the rule, linked from ``attached_to`` by a ``rule`` link
        that instantiates the predefined ``RuleAttribute`` class.
        """
        parsed = parse_rule(rule) if isinstance(rule, str) else rule
        rule_name = name or f"rule_{len(self._rules) + 1}"
        if rule_name in self._rules:
            raise DeductionError(f"duplicate rule name {rule_name!r}")
        self._rules[rule_name] = parsed
        self._idb = None
        self._fixpoint = None
        if document:
            holder = f"Assertion_{rule_name}"
            if not self.processor.exists(holder):
                self.processor.tell_individual(holder, in_class="AssertionObject")
            self.processor.tell_link(
                attached_to, "rule", holder, of_class="RuleAttribute"
            )
        return parsed

    def rules(self) -> Dict[str, Rule]:
        """Registered rules by name."""
        return dict(self._rules)

    def remove_rule(self, name: str) -> None:
        """Unregister a rule by name."""
        if name not in self._rules:
            raise DeductionError(f"unknown rule {name!r}")
        del self._rules[name]
        self._idb = None
        self._fixpoint = None

    # -- engines -----------------------------------------------------------

    def prover(self, lemmas: bool = True, max_depth: int = 256) -> Prover:
        """A top-down prover over the live knowledge base."""
        return Prover(
            rules=self._rules.values(),
            fact_source=self.view.facts,
            lemmas=lemmas,
            epoch_source=lambda: self.processor.epoch,
            max_depth=max_depth,
        )

    def materialise(self) -> Database:
        """Bottom-up IDB, cached per knowledge-base epoch.

        With ``incremental`` (and the compiled evaluator) the IDB is
        built once into a
        :class:`~repro.deduction.seminaive.MaterializedFixpoint` and
        then *delta-maintained*: an epoch change triggers a support-set
        diff of the EDB predicates against the previous materialisation
        and an :meth:`MaterializedFixpoint.apply_delta` call, instead of
        re-deriving every rule conclusion from scratch.  With
        ``incremental=False`` (or the interpreted evaluator) every epoch
        change re-evaluates fully — the ablation baseline Perf-9
        compares rule-firing counts against.
        """
        epoch = self.processor.epoch
        if self._idb is not None and self._idb_epoch == epoch:
            return self._idb
        if (self.incremental and self.optimise
                and self._fixpoint is not None):
            self._refresh_fixpoint()
            return self._idb
        with self.tracer.span(
            "deduction.materialise",
            rules=len(self._rules), epoch=epoch,
        ):
            self._c_materialisations.inc()
            if self.incremental and self.optimise:
                self._edb_rows = {
                    pred: set(self.view.facts(pred))
                    for pred in self.EDB_PREDICATES
                }
                edb = Database(
                    {pred: set(rows) for pred, rows in self._edb_rows.items()}
                )
                self._fixpoint = MaterializedFixpoint(
                    list(self._rules.values()), edb,
                    stats=self.stats, tracer=self._tracer,
                )
                self._idb = self._fixpoint.database()
            else:
                self._idb = evaluate(
                    list(self._rules.values()), self.view.database(),
                    optimise=self.optimise, stats=self.stats,
                    tracer=self._tracer,
                )
        self._idb_epoch = epoch
        return self._idb

    def _refresh_fixpoint(self) -> None:
        """Delta-maintain the materialised IDB up to the current epoch."""
        assert self._fixpoint is not None
        added: Dict[str, Set[Tuple]] = {}
        removed: Dict[str, Set[Tuple]] = {}
        for pred in self.EDB_PREDICATES:
            new_rows = set(self.view.facts(pred))
            old_rows = self._edb_rows.get(pred, set())
            if new_rows == old_rows:
                continue
            fresh = new_rows - old_rows
            gone = old_rows - new_rows
            if fresh:
                added[pred] = fresh
            if gone:
                removed[pred] = gone
            self._edb_rows[pred] = new_rows
        if added or removed:
            self._c_refreshes.inc()
            self._fixpoint.apply_delta(added, removed)
        self._idb = self._fixpoint.database()
        self._idb_epoch = self.processor.epoch

    def apply_delta(
        self,
        added: Iterable[Proposition] = (),
        removed: Iterable[Proposition] = (),
    ) -> Database:
        """Explicit delta entry point: fold knowledge-base changes into
        the materialised IDB without a from-scratch re-derivation.

        The proposition lists are advisory (they let callers skip the
        call entirely when a commit touched nothing): the actual fact
        delta is computed support-set style — each EDB predicate is
        re-listed from the live view and diffed against the rows the
        fixpoint was last maintained at, which is what makes shared
        closure predicates like ``in`` exact regardless of how many
        propositions support one fact.  Falls back to a full rebuild
        when incremental maintenance is disabled or nothing is
        materialised yet.
        """
        if (not self.incremental or not self.optimise
                or self._fixpoint is None):
            self._idb = None
            return self.materialise()
        if (not added and not removed
                and self._idb_epoch == self.processor.epoch):
            return self._fixpoint.database()
        self._refresh_fixpoint()
        assert self._idb is not None
        return self._idb

    # -- deduced propositions ------------------------------------------------

    def deduced_propositions(self) -> List[Proposition]:
        """Propositions asserted by rule conclusions of the form
        ``attr(X, L, Y)`` that are not already stored."""
        idb = self.materialise()
        stored = {
            (p.source, p.label, p.destination)
            for p in self.processor.store
            if p.is_link
        }
        deduced: List[Proposition] = []
        for source, label, destination in sorted(idb.rows("attr"), key=str):
            if (source, label, destination) in stored:
                continue
            if not (self.processor.exists(source) and self.processor.exists(destination)):
                continue
            pid = f"{DEDUCED_PREFIX}{source}:{label}:{destination}"
            deduced.append(Proposition(pid, source, label, destination))
        return deduced

    def install_hook(self) -> None:
        """Register deduced propositions with the processor's retrieval."""
        if self._hooked:
            return
        self._hooked = True

        def hook(_proc: PropositionProcessor, pattern: Pattern) -> Iterable[Proposition]:
            return self.deduced_propositions()

        self.processor.add_deduction_hook(hook)
