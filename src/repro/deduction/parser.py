"""Textual syntax for rules and queries.

Grammar (Prolog-flavoured)::

    program  := (rule)*
    rule     := literal ( ":-" literals )? "."
    literals := literal ("," literal)*
    literal  := "not"? IDENT "(" term ("," term)* ")"
    term     := "?" IDENT | IDENT | STRING | NUMBER

Variables are written ``?x``; bare identifiers are constants (knowledge
bases are full of capitalised class names such as ``Person``, so the
Prolog capitalisation convention would be a trap here).  Quoted strings
allow constants with arbitrary characters (e.g. ``'Invitation.sender'``).
Comments run from ``%`` to end of line.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import DeductionError
from repro.deduction.terms import Constant, Literal, Rule, Term, Variable

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<neck>:-)
  | (?P<punct>[(),.])
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<variable>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DeductionError(f"rule syntax error at offset {pos}: {text[pos:pos+20]!r}")
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group(), pos))
        pos = match.end()
    tokens.append(("eof", "", pos))
    return tokens


class _RuleParser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self) -> Tuple[str, str, int]:
        return self._tokens[self._index]

    def _advance(self) -> Tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        kind, text, pos = self._advance()
        if text != value:
            raise DeductionError(f"expected {value!r} at offset {pos}, got {text!r}")

    def at_end(self) -> bool:
        """Only EOF remains?"""
        return self._peek()[0] == "eof"

    def parse_term(self) -> Term:
        """Variable, identifier, string or number."""
        kind, text, pos = self._advance()
        if kind == "string":
            return Constant(text[1:-1].replace("\\'", "'"))
        if kind == "number":
            return Constant(float(text) if "." in text else int(text))
        if kind == "variable":
            return Variable(text[1:])
        if kind == "ident":
            return Constant(text)
        raise DeductionError(f"expected a term at offset {pos}, got {text!r}")

    def parse_literal(self) -> Literal:
        """``not? pred(t1, ..., tn)``."""
        negated = False
        kind, text, pos = self._peek()
        if kind == "ident" and text == "not":
            self._advance()
            negated = True
        kind, text, pos = self._advance()
        if kind != "ident":
            raise DeductionError(f"expected predicate at offset {pos}, got {text!r}")
        predicate = text
        self._expect("(")
        args = [self.parse_term()]
        while self._peek()[1] == ",":
            self._advance()
            args.append(self.parse_term())
        self._expect(")")
        return Literal(predicate, tuple(args), negated=negated)

    def parse_rule_parts(self) -> Tuple[Literal, Tuple[Literal, ...]]:
        """``head [:- body].`` as raw literals, without safety checks."""
        head = self.parse_literal()
        body: List[Literal] = []
        if self._peek()[0] == "neck":
            self._advance()
            body.append(self.parse_literal())
            while self._peek()[1] == ",":
                self._advance()
                body.append(self.parse_literal())
        self._expect(".")
        return head, tuple(body)

    def parse_rule(self) -> Rule:
        """``head [:- body].``."""
        head, body = self.parse_rule_parts()
        return Rule(head, body)

    def parse_program(self) -> List[Rule]:
        """All rules until EOF."""
        rules: List[Rule] = []
        while not self.at_end():
            rules.append(self.parse_rule())
        return rules


def parse_rule(text: str) -> Rule:
    """Parse a single ``head :- body.`` rule (or fact)."""
    parser = _RuleParser(text)
    rule = parser.parse_rule()
    if not parser.at_end():
        raise DeductionError(f"trailing input after rule: {text!r}")
    return rule


def parse_rule_parts(text: str) -> Tuple[Literal, Tuple[Literal, ...]]:
    """Parse a rule into ``(head, body)`` literals *without* the safety
    checks of the :class:`~repro.deduction.terms.Rule` constructor.

    The static analyzer uses this to diagnose unsafe rules instead of
    dying on the first problem.
    """
    parser = _RuleParser(text)
    parts = parser.parse_rule_parts()
    if not parser.at_end():
        raise DeductionError(f"trailing input after rule: {text!r}")
    return parts


def parse_program(text: str) -> List[Rule]:
    """Parse a sequence of rules separated by periods."""
    return _RuleParser(text).parse_program()


def parse_literal(text: str) -> Literal:
    """Parse a single literal (used for queries)."""
    parser = _RuleParser(text)
    literal = parser.parse_literal()
    if not parser.at_end():
        raise DeductionError(f"trailing input after literal: {text!r}")
    return literal
