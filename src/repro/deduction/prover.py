"""Top-down prover with negation-as-failure and lemma generation.

Section 3.1: "The Inference Engines support various proof strategies for
question-answering on the KB (in the current implementation, the Prolog
prover with some enhancements concerning negation is the only such proof
strategy). [...] The inference engines may enhance their performance by
lemma generation; this capability is, e.g., used in creating dependency
graph objects of the GKBMS."

:class:`Prover` performs SLD resolution over a rule program plus a
*fact source* (a callable yielding ground facts per predicate, normally
backed by the live proposition base).  Proved goals are cached as
*lemmas* keyed by the goal pattern and the knowledge-base epoch, so any
update invalidates stale lemmas automatically.  ``lemmas=False`` turns
the cache off — the ablation measured by benchmark Perf-1.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import DeductionError
from repro.deduction.terms import (
    Constant,
    Literal,
    Rule,
    Substitution,
    resolve,
    unify,
)

#: Yields ground argument tuples for a predicate.
FactSource = Callable[[str], Iterable[Tuple[Any, ...]]]


def _goal_key(goal: Literal, theta: Substitution) -> Tuple:
    """Hashable pattern of a goal: constants kept, variables wildcarded."""
    parts: List[Any] = [goal.predicate]
    for arg in goal.args:
        arg = resolve(arg, theta)
        parts.append(("const", arg.value) if isinstance(arg, Constant) else "?")
    return tuple(parts)


class Prover:
    """SLD resolution with NAF, depth bounding and lemma caching."""

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        fact_source: Optional[FactSource] = None,
        lemmas: bool = True,
        epoch_source: Optional[Callable[[], int]] = None,
        max_depth: int = 256,
    ) -> None:
        self._rules: List[Rule] = list(rules)
        self._fact_source = fact_source or (lambda predicate: ())
        self._lemmas_enabled = lemmas
        self._epoch_source = epoch_source or (lambda: 0)
        self._max_depth = max_depth
        self._rename = itertools.count(1)
        # lemma cache: goal pattern -> (epoch, list of answer tuples)
        self._lemmas: Dict[Tuple, Tuple[int, List[Tuple[Any, ...]]]] = {}
        self.stats = {"calls": 0, "lemma_hits": 0, "lemma_stores": 0}

    # ------------------------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Add a rule; invalidates the lemma cache."""
        self._rules.append(rule)
        self._lemmas.clear()

    @property
    def rules(self) -> Tuple[Rule, ...]:
        """The rule program."""
        return tuple(self._rules)

    def clear_lemmas(self) -> None:
        """Drop every cached lemma."""
        self._lemmas.clear()

    # ------------------------------------------------------------------

    def solve(self, goal: Literal, theta: Optional[Substitution] = None) -> Iterator[Substitution]:
        """Yield substitutions proving ``goal``."""
        yield from self._solve_goal(goal, dict(theta or {}), depth=0)

    def ask(self, goal: Literal) -> bool:
        """True when at least one proof of ``goal`` exists."""
        for _ in self.solve(goal):
            return True
        return False

    def answers(self, goal: Literal) -> List[Tuple[Any, ...]]:
        """Distinct ground argument tuples satisfying ``goal``."""
        seen: Set[Tuple[Any, ...]] = set()
        out: List[Tuple[Any, ...]] = []
        for theta in self.solve(goal):
            values = []
            for arg in goal.args:
                value = resolve(arg, theta)
                if not isinstance(value, Constant):
                    break
                values.append(value.value)
            else:
                row = tuple(values)
                if row not in seen:
                    seen.add(row)
                    out.append(row)
        return out

    # ------------------------------------------------------------------

    def _solve_goal(
        self, goal: Literal, theta: Substitution, depth: int
    ) -> Iterator[Substitution]:
        if depth > self._max_depth:
            raise DeductionError(
                f"proof depth limit ({self._max_depth}) exceeded at {goal!r}"
            )
        self.stats["calls"] += 1
        if goal.negated:
            positive = goal.negate().substitute(theta)
            if not positive.is_ground():
                raise DeductionError(
                    f"negation-as-failure requires a ground goal, got {positive!r}"
                )
            for _ in self._solve_goal(positive, dict(theta), depth + 1):
                return
            yield theta
            return

        if self._lemmas_enabled:
            yield from self._solve_with_lemmas(goal, theta, depth)
        else:
            yield from self._expand(goal, theta, depth)

    def _solve_with_lemmas(
        self, goal: Literal, theta: Substitution, depth: int
    ) -> Iterator[Substitution]:
        key = _goal_key(goal, theta)
        epoch = self._epoch_source()
        cached = self._lemmas.get(key)
        if cached is not None and cached[0] == epoch:
            self.stats["lemma_hits"] += 1
            for row in cached[1]:
                out = unify(
                    goal.substitute(theta),
                    Literal(goal.predicate, tuple(Constant(v) for v in row)),
                    theta,
                )
                if out is not None:
                    yield out
            return
        answers: List[Tuple[Any, ...]] = []
        complete = True
        for result in self._expand(goal, theta, depth):
            row = []
            for arg in goal.args:
                value = resolve(arg, result)
                if isinstance(value, Constant):
                    row.append(value.value)
                else:
                    complete = False
                    break
            else:
                answers.append(tuple(row))
            yield result
        if complete:
            self._lemmas[key] = (epoch, answers)
            self.stats["lemma_stores"] += 1

    def _expand(
        self, goal: Literal, theta: Substitution, depth: int
    ) -> Iterator[Substitution]:
        # 1. ground facts from the fact source
        for row in self._fact_source(goal.predicate):
            candidate = Literal(goal.predicate, tuple(Constant(v) for v in row))
            out = unify(goal.substitute(theta), candidate, theta)
            if out is not None:
                yield out
        # 2. rules
        for rule in self._rules:
            if rule.head.predicate != goal.predicate:
                continue
            fresh = rule.rename(str(next(self._rename)))
            out = unify(goal.substitute(theta), fresh.head, theta)
            if out is None:
                continue
            yield from self._solve_body(list(fresh.body), out, depth + 1)

    def _solve_body(
        self, body: List[Literal], theta: Substitution, depth: int
    ) -> Iterator[Substitution]:
        if not body:
            yield theta
            return
        first, rest = body[0], body[1:]
        for out in self._solve_goal(first, theta, depth):
            yield from self._solve_body(rest, out, depth)
