"""Deduction layer (S5).

Section 3.1: "Deduction (rule propositions) allows the definition of
Horn clauses which assert a proposition in their conclusion. [...] The
inference engines are also capable of evaluating rules.  The inference
engines may enhance their performance by lemma generation."

- :mod:`repro.deduction.terms` — terms, literals, rules, substitution
  and unification.
- :mod:`repro.deduction.parser` — a small textual rule/query syntax
  (``head :- body``; uppercase identifiers are variables).
- :mod:`repro.deduction.seminaive` — bottom-up semi-naive evaluation
  with stratified negation.
- :mod:`repro.deduction.prover` — top-down SLD resolution with
  negation-as-failure and an epoch-invalidated lemma cache (the paper's
  lemma generation; the cache is the ablation hook of Perf-1).
- :mod:`repro.deduction.kb` — the bridge between the proposition base
  and the engines: propositions as ``prop/in/isa/attr`` facts, and a
  deduction hook deriving new propositions from rule conclusions.
"""

from repro.deduction.terms import (
    Constant,
    Literal,
    Rule,
    Substitution,
    Variable,
    unify,
)
from repro.deduction.parser import parse_literal, parse_program, parse_rule
from repro.deduction.seminaive import Database, evaluate, stratify
from repro.deduction.prover import Prover
from repro.deduction.kb import KnowledgeView, RuleEngine

__all__ = [
    "Constant",
    "Literal",
    "Rule",
    "Substitution",
    "Variable",
    "unify",
    "parse_literal",
    "parse_program",
    "parse_rule",
    "Database",
    "evaluate",
    "stratify",
    "Prover",
    "KnowledgeView",
    "RuleEngine",
]
