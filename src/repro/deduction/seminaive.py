"""Bottom-up semi-naive Datalog evaluation with stratified negation.

The object processor's "deductive relational database" view (section
3.1) materialises rule conclusions set-at-a-time.  Semi-naive evaluation
only joins against the *delta* of the previous iteration, which is the
standard optimisation over naive iteration; negation is handled by
stratification (a rule may only negate predicates fully computed in
earlier strata).

Two evaluation paths share the same stratified fixpoint loop:

- the **compiled** path (default): each rule is compiled once into join
  plans — one per delta focus — with literals reordered greedily by the
  number of bound argument positions, and each join step probing a
  per-predicate argument-position hash index on the
  :class:`Database` instead of scanning and unifying row by row;
- the **interpreted** path (``optimise=False``): the original
  per-row ``unify`` loop, kept as the ablation baseline benchmark
  Perf-6 compares join-probe counts against.

Both paths count every examined row in ``stats["join_probes"]`` and
produce bit-identical fixpoints.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import DeductionError
from repro.obs.tracing import Tracer, get_tracer
from repro.deduction.terms import (
    Constant,
    Literal,
    Rule,
    Substitution,
    Variable,
    ground_tuple,
    unify,
)

Fact = Tuple[Any, ...]

_EMPTY_ROWS: frozenset = frozenset()


class Database:
    """Predicate-indexed fact storage.

    Beyond the per-predicate fact sets, the database maintains lazy
    *argument-position indexes*: ``index("edge", (0,))`` maps each value
    of the first argument to the matching rows.  Indexes are built on
    first use and maintained incrementally by :meth:`add`, which is what
    makes the compiled join plans O(matching rows) per probe.
    """

    def __init__(self, facts: Optional[Dict[str, Set[Fact]]] = None) -> None:
        self._facts: Dict[str, Set[Fact]] = {}
        # predicate -> positions-tuple -> key-tuple -> rows
        self._indexes: Dict[str, Dict[Tuple[int, ...], Dict[Tuple, List[Fact]]]] = {}
        self._frozen: Dict[str, frozenset] = {}
        for pred, rows in (facts or {}).items():
            self._facts[pred] = set(rows)

    def add(self, predicate: str, row: Fact) -> bool:
        """Insert; return True when the fact is new."""
        rows = self._facts.get(predicate)
        if rows is None:
            rows = self._facts[predicate] = set()
        if row in rows:
            return False
        rows.add(row)
        self._frozen.pop(predicate, None)
        indexes = self._indexes.get(predicate)
        if indexes:
            for positions, table in indexes.items():
                if not positions or positions[-1] < len(row):
                    key = tuple(row[p] for p in positions)
                    table.setdefault(key, []).append(row)
        return True

    def discard(self, predicate: str, row: Fact) -> bool:
        """Remove one fact; return True when it was present.

        Deletion keeps every built argument-position index consistent
        (the row is removed from each bucket it was filed under, and
        emptied buckets are pruned) and drops the cached frozen
        snapshot, so ``rows()`` / ``index()`` observers never see the
        removed fact again.
        """
        rows = self._facts.get(predicate)
        if rows is None or row not in rows:
            return False
        rows.remove(row)
        if not rows:
            del self._facts[predicate]
        self._frozen.pop(predicate, None)
        indexes = self._indexes.get(predicate)
        if indexes:
            for positions, table in indexes.items():
                if not positions or positions[-1] < len(row):
                    key = tuple(row[p] for p in positions)
                    bucket = table.get(key)
                    if bucket is not None:
                        try:
                            bucket.remove(row)
                        except ValueError:
                            pass
                        if not bucket:
                            del table[key]
        return True

    def rows(self, predicate: str) -> frozenset:
        """The fact set of one predicate, as an immutable snapshot.

        Always a ``frozenset`` — previously this leaked the live
        internal set for known predicates (mutating it corrupted the
        indexes) but a fresh set for unknown ones.  The snapshot is
        cached per predicate and invalidated on the next insert.
        """
        frozen = self._frozen.get(predicate)
        if frozen is None:
            frozen = self._frozen[predicate] = frozenset(
                self._facts.get(predicate, ())
            )
        return frozen

    def _live_rows(self, predicate: str) -> Iterable[Fact]:
        """Internal read-only access without snapshot cost."""
        return self._facts.get(predicate, _EMPTY_ROWS)

    def index(self, predicate: str, positions: Tuple[int, ...]) -> Dict[Tuple, List[Fact]]:
        """The hash index of ``predicate`` on ``positions`` (lazily built)."""
        indexes = self._indexes.setdefault(predicate, {})
        table = indexes.get(positions)
        if table is None:
            table = indexes[positions] = {}
            last = positions[-1] if positions else -1
            for row in self._facts.get(predicate, ()):
                if last < len(row):
                    key = tuple(row[p] for p in positions)
                    table.setdefault(key, []).append(row)
        return table

    def contains(self, predicate: str, row: Fact) -> bool:
        """Membership test for one fact."""
        rows = self._facts.get(predicate)
        return rows is not None and row in rows

    def predicates(self) -> List[str]:
        """Predicates with at least one fact."""
        return list(self._facts)

    def copy(self) -> "Database":
        """Independent deep copy."""
        return Database({p: set(rows) for p, rows in self._facts.items()})

    def merge(self, other: "Database") -> None:
        """Union another database in, in place (indexes kept current)."""
        for pred in other.predicates():
            incoming = other._live_rows(pred)
            if self._indexes.get(pred):
                for row in incoming:
                    self.add(pred, row)
            else:
                rows = self._facts.setdefault(pred, set())
                if incoming - rows:
                    self._frozen.pop(pred, None)
                    rows |= incoming

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._facts.values())


def stratify(rules: Iterable[Rule]) -> List[List[Rule]]:
    """Partition rules into strata; negation may only reach lower strata.

    Raises :class:`DeductionError` when the program is not stratifiable
    (a negative dependency cycle exists).
    """
    rules = list(rules)
    heads = {rule.head.predicate for rule in rules}
    stratum: Dict[str, int] = {pred: 0 for pred in heads}
    changed = True
    iterations = 0
    bound = len(heads) + 1
    while changed:
        changed = False
        iterations += 1
        if iterations > bound * max(1, len(rules)):
            raise DeductionError("program is not stratifiable (negative cycle)")
        for rule in rules:
            head = rule.head.predicate
            for lit in rule.body:
                if lit.predicate not in heads:
                    continue  # EDB predicate: stratum 0 by definition
                required = stratum[lit.predicate] + (1 if lit.negated else 0)
                if stratum[head] < required:
                    stratum[head] = required
                    if stratum[head] > len(heads):
                        raise DeductionError(
                            "program is not stratifiable (negative cycle "
                            f"through {head!r})"
                        )
                    changed = True
    layers: Dict[int, List[Rule]] = defaultdict(list)
    for rule in rules:
        layers[stratum[rule.head.predicate]].append(rule)
    return [layers[level] for level in sorted(layers)]


# ---------------------------------------------------------------------------
# Compiled join plans
# ---------------------------------------------------------------------------
#
# Substitutions on the compiled path are plain ``{variable name: value}``
# dicts — no ``Constant`` wrapping, no ``unify`` call per row.  A literal
# compiled against a known set of already-bound variables splits its
# argument positions into
#
# - *key* positions (constants and bound variables): probed through the
#   database's argument-position index;
# - *binder* positions (first occurrence of a new variable): bound from
#   the row;
# - *check* positions (repeated occurrence of a new variable within the
#   same literal): compared against the binder position.


class _JoinStep:
    """One positive body literal, compiled for a fixed binding context."""

    __slots__ = ("predicate", "arity", "positions", "key_parts", "binders",
                 "checks", "body_index")

    def __init__(self, literal: Literal, bound_vars: Set[str], body_index: int) -> None:
        self.predicate = literal.predicate
        self.arity = len(literal.args)
        self.body_index = body_index  # position among the rule's positives
        positions: List[int] = []
        key_parts: List[Tuple[bool, Any]] = []  # (is_variable, value-or-name)
        binders: List[Tuple[int, str]] = []
        checks: List[Tuple[int, int]] = []
        first_seen: Dict[str, int] = {}
        for pos, arg in enumerate(literal.args):
            if isinstance(arg, Constant):
                positions.append(pos)
                key_parts.append((False, arg.value))
            elif arg.name in bound_vars:
                positions.append(pos)
                key_parts.append((True, arg.name))
            elif arg.name in first_seen:
                checks.append((pos, first_seen[arg.name]))
            else:
                first_seen[arg.name] = pos
                binders.append((pos, arg.name))
        self.positions = tuple(positions)
        self.key_parts = tuple(key_parts)
        self.binders = tuple(binders)
        self.checks = tuple(checks)

    def extend(self, db: Database, env: Dict[str, Any],
               stats: Dict[str, int]) -> Iterator[Dict[str, Any]]:
        """All extensions of ``env`` over matching rows of ``db``."""
        if self.positions:
            key = tuple(
                env[part] if is_var else part
                for is_var, part in self.key_parts
            )
            stats["index_probes"] += 1
            candidates = db.index(self.predicate, self.positions).get(key, ())
        else:
            candidates = db._live_rows(self.predicate)
        arity = self.arity
        for row in candidates:
            stats["join_probes"] += 1
            if len(row) != arity:
                continue
            ok = True
            for pos, first in self.checks:
                if row[pos] != row[first]:
                    ok = False
                    break
            if not ok:
                continue
            out = dict(env)
            for pos, name in self.binders:
                out[name] = row[pos]
            yield out


class _TupleBuilder:
    """Grounds a literal whose variables are all bound (heads, negation)."""

    __slots__ = ("predicate", "parts")

    def __init__(self, literal: Literal) -> None:
        self.predicate = literal.predicate
        self.parts = tuple(
            (True, arg.name) if isinstance(arg, Variable) else (False, arg.value)
            for arg in literal.args
        )

    def build(self, env: Dict[str, Any]) -> Fact:
        return tuple(env[part] if is_var else part for is_var, part in self.parts)


class _CompiledRule:
    """A rule compiled into one join plan per semi-naive focus."""

    def __init__(self, rule: Rule) -> None:
        self.rule = rule
        self.positive = [lit for lit in rule.body if not lit.negated]
        self.negative = [_TupleBuilder(lit) for lit in rule.body if lit.negated]
        self.head = _TupleBuilder(rule.head)
        # focus (None or positive-literal index) -> ordered join steps
        self._plans: Dict[Optional[int], List[_JoinStep]] = {}
        self._check_plan: Optional[List[_JoinStep]] = None

    def _bound_count(self, literal: Literal, bound_vars: Set[str]) -> int:
        count = 0
        for arg in literal.args:
            if isinstance(arg, Constant) or arg.name in bound_vars:
                count += 1
        return count

    def plan(self, focus: Optional[int]) -> List[_JoinStep]:
        """The join order for ``focus``: the delta literal leads, the
        rest follow greedily by bound-position count (selectivity)."""
        try:
            return self._plans[focus]
        except KeyError:
            pass
        remaining = list(range(len(self.positive)))
        order: List[int] = []
        bound_vars: Set[str] = set()
        if focus is not None:
            order.append(focus)
            remaining.remove(focus)
            bound_vars |= {v.name for v in self.positive[focus].variables()}
        while remaining:
            best = max(
                remaining,
                key=lambda i: (self._bound_count(self.positive[i], bound_vars), -i),
            )
            order.append(best)
            remaining.remove(best)
            bound_vars |= {v.name for v in self.positive[best].variables()}
        steps: List[_JoinStep] = []
        bound_vars = set()
        for body_index in order:
            steps.append(_JoinStep(self.positive[body_index], bound_vars, body_index))
            bound_vars |= {v.name for v in self.positive[body_index].variables()}
        self._plans[focus] = steps
        return steps

    def check_plan(self) -> List[_JoinStep]:
        """The join order for a fully-bound head (rederivation checks):
        every head variable is treated as already bound."""
        if self._check_plan is None:
            head_vars = {v.name for v in self.rule.head.variables()}
            remaining = list(range(len(self.positive)))
            order: List[int] = []
            bound_vars = set(head_vars)
            while remaining:
                best = max(
                    remaining,
                    key=lambda i: (self._bound_count(self.positive[i],
                                                     bound_vars), -i),
                )
                order.append(best)
                remaining.remove(best)
                bound_vars |= {v.name for v in self.positive[best].variables()}
            steps: List[_JoinStep] = []
            bound_vars = set(head_vars)
            for body_index in order:
                steps.append(
                    _JoinStep(self.positive[body_index], bound_vars, body_index)
                )
                bound_vars |= {v.name for v in self.positive[body_index].variables()}
            self._check_plan = steps
        return self._check_plan


def _evaluate_compiled(
    crule: _CompiledRule,
    full: Database,
    delta: Optional[Database],
    derived: Database,
    stats: Dict[str, int],
) -> List[Fact]:
    """One semi-naive pass of a compiled rule (see ``_evaluate_rule``)."""
    new_facts: List[Fact] = []
    focus_positions: List[Optional[int]]
    if delta is None or not crule.positive:
        focus_positions = [None]
    else:
        focus_positions = list(range(len(crule.positive)))
    head_pred = crule.rule.head.predicate
    for focus in focus_positions:
        envs: List[Dict[str, Any]] = [{}]
        for step in crule.plan(focus):
            db = delta if (focus is not None and step.body_index == focus) else full
            next_envs: List[Dict[str, Any]] = []
            for env in envs:
                next_envs.extend(step.extend(db, env, stats))
            envs = next_envs
            if not envs:
                break
        for env in envs:
            blocked = False
            for builder in crule.negative:
                if full.contains(builder.predicate, builder.build(env)):
                    blocked = True
                    break
            if blocked:
                continue
            stats["rule_firings"] += 1
            row = crule.head.build(env)
            if not full.contains(head_pred, row) and not derived.contains(
                head_pred, row
            ):
                derived.add(head_pred, row)
                new_facts.append(row)
    return new_facts


# ---------------------------------------------------------------------------
# Interpreted path (the optimise=False ablation baseline)
# ---------------------------------------------------------------------------


def _match_literal(
    literal: Literal,
    rows: Iterable[Fact],
    theta: Substitution,
    stats: Optional[Dict[str, int]] = None,
) -> Iterable[Substitution]:
    """All extensions of ``theta`` matching ``literal`` against ``rows``."""
    bound = literal.substitute(theta)
    for row in rows:
        if stats is not None:
            stats["join_probes"] += 1
        candidate = Literal(
            literal.predicate, tuple(Constant(v) for v in row)
        )
        out = unify(
            Literal(bound.predicate, bound.args), candidate, theta
        )
        if out is not None:
            yield out


def _evaluate_rule(
    rule: Rule,
    full: Database,
    delta: Optional[Database],
    derived: Database,
    stats: Optional[Dict[str, int]] = None,
) -> List[Fact]:
    """One semi-naive pass of ``rule``; ``delta`` focuses one positive
    literal on the last iteration's new facts (None = naive first round)."""
    new_facts: List[Fact] = []
    positive = [lit for lit in rule.body if not lit.negated]
    negative = [lit for lit in rule.body if lit.negated]

    def lookup(lit: Literal, use_delta: bool) -> Iterable[Fact]:
        if use_delta and delta is not None:
            return delta._live_rows(lit.predicate)
        return full._live_rows(lit.predicate)

    focus_positions: List[Optional[int]]
    if delta is None or not positive:
        focus_positions = [None]
    else:
        focus_positions = list(range(len(positive)))

    for focus in focus_positions:
        substitutions: List[Substitution] = [{}]
        for index, lit in enumerate(positive):
            rows = lookup(lit, use_delta=(focus == index))
            next_subs: List[Substitution] = []
            for theta in substitutions:
                next_subs.extend(_match_literal(lit, rows, theta, stats))
            substitutions = next_subs
            if not substitutions:
                break
        for theta in substitutions:
            blocked = False
            for lit in negative:
                row = ground_tuple(lit, theta)
                if full.contains(lit.predicate, row):
                    blocked = True
                    break
            if blocked:
                continue
            if stats is not None:
                stats["rule_firings"] += 1
            row = ground_tuple(rule.head, theta)
            if not full.contains(rule.head.predicate, row) and not derived.contains(
                rule.head.predicate, row
            ):
                derived.add(rule.head.predicate, row)
                new_facts.append(row)
    return new_facts


# ---------------------------------------------------------------------------
# The stratified fixpoint
# ---------------------------------------------------------------------------


def new_stats() -> Dict[str, int]:
    """A fresh evaluation-statistics dict (all counters zero)."""
    return {"join_probes": 0, "index_probes": 0, "iterations": 0,
            "derived_facts": 0, "rule_firings": 0}


def maintenance_stats() -> Dict[str, int]:
    """Fresh counters for incremental maintenance (see
    :class:`MaterializedFixpoint`), on top of :func:`new_stats`."""
    stats = new_stats()
    stats.update({
        "delta_applies": 0,
        "delta_added_facts": 0,
        "delta_removed_facts": 0,
        "count_increments": 0,
        "count_decrements": 0,
        "overdeletions": 0,
        "rederivations": 0,
        "rederive_checks": 0,
        "delta_fallbacks": 0,
    })
    return stats


def evaluate(
    rules: Iterable[Rule],
    edb: Database,
    optimise: bool = True,
    stats: Optional[Dict[str, int]] = None,
    tracer: Optional[Tracer] = None,
) -> Database:
    """Compute the full IDB: ``edb`` plus everything the rules derive.

    ``optimise`` selects the compiled join-plan path (default) or the
    interpreted unify-per-row baseline; both produce identical
    databases.  ``stats`` (any mutable mapping, see :func:`new_stats`)
    accumulates join-probe / index-probe / iteration counters for
    structural performance assertions.  Counters are gathered in a plain
    local dict during the fixpoint (one dict op per probe, even when
    ``stats`` is a registry-backed view) and folded into ``stats`` once
    at the end; the whole evaluation runs under a
    ``deduction.evaluate`` span with one ``deduction.round`` child per
    semi-naive iteration.
    """
    local = new_stats()
    rules = list(rules)
    active_tracer = tracer if tracer is not None else get_tracer()
    with active_tracer.span("deduction.evaluate", rules=len(rules),
                            optimise=optimise) as evaluate_span:
        full = edb.copy()
        for stratum_index, layer in enumerate(stratify(rules)):
            facts = [rule for rule in layer if rule.is_fact]
            proper = [rule for rule in layer if not rule.is_fact]
            compiled = [_CompiledRule(r) for r in proper] if optimise else []
            for fact in facts:
                full.add(fact.head.predicate, ground_tuple(fact.head, {}))
            delta: Optional[Database] = None
            while True:
                local["iterations"] += 1
                derived = Database()
                with active_tracer.span(
                    "deduction.round", stratum=stratum_index,
                    seminaive=delta is not None,
                ) as round_span:
                    if optimise:
                        for crule in compiled:
                            local["derived_facts"] += len(
                                _evaluate_compiled(crule, full, delta,
                                                   derived, local)
                            )
                    else:
                        for rule in proper:
                            local["derived_facts"] += len(
                                _evaluate_rule(rule, full, delta, derived,
                                               local)
                            )
                    round_span.set(derived=len(derived))
                if len(derived) == 0:
                    break
                full.merge(derived)
                delta = derived
            # First round after facts: run once naive, then semi-naive
            # rounds (handled above: delta None = naive round).
        evaluate_span.set(**local)
    if stats is not None:
        for key, value in local.items():
            stats[key] = stats.get(key, 0) + value
    return full


# ---------------------------------------------------------------------------
# Incremental maintenance: counting + DRed
# ---------------------------------------------------------------------------


class _PatchedView:
    """Pre-delta visibility over a post-delta :class:`Database`.

    Presents ``db`` as it looked before the ``added``/``removed``
    pred->rows patches were physically applied: probes hide rows in
    ``added`` and re-surface rows in ``removed``.  The patch maps are
    delta-sized, so re-surfacing scans are cheap.
    """

    __slots__ = ("_db", "_added", "_removed")

    def __init__(self, db: Database, added: Dict[str, Set[Fact]],
                 removed: Dict[str, Set[Fact]]) -> None:
        self._db = db
        self._added = added
        self._removed = removed

    def index(self, predicate: str, positions: Tuple[int, ...]) -> "_PatchedIndex":
        return _PatchedIndex(
            self._db.index(predicate, positions),
            self._added.get(predicate),
            self._removed.get(predicate),
            positions,
        )

    def _live_rows(self, predicate: str) -> Iterator[Fact]:
        added = self._added.get(predicate)
        removed = self._removed.get(predicate)
        for row in self._db._live_rows(predicate):
            if added and row in added:
                continue
            yield row
        if removed:
            yield from removed

    def contains(self, predicate: str, row: Fact) -> bool:
        removed = self._removed.get(predicate)
        if removed and row in removed:
            return True
        added = self._added.get(predicate)
        if added and row in added:
            return False
        return self._db.contains(predicate, row)


class _PatchedIndex:
    """``.get(key)`` adapter applying the old-state patch per probe."""

    __slots__ = ("_table", "_added", "_removed", "_positions")

    def __init__(self, table: Dict[Tuple, List[Fact]],
                 added: Optional[Set[Fact]], removed: Optional[Set[Fact]],
                 positions: Tuple[int, ...]) -> None:
        self._table = table
        self._added = added
        self._removed = removed
        self._positions = positions

    def get(self, key: Tuple, default: Iterable[Fact] = ()) -> Iterable[Fact]:
        added = self._added
        base = self._table.get(key, ())
        out = [row for row in base if not (added and row in added)]
        if self._removed:
            positions = self._positions
            last = positions[-1] if positions else -1
            for row in self._removed:
                if last < len(row) and tuple(row[p] for p in positions) == key:
                    out.append(row)
        return out


def _flip_add(added: Dict[str, Set[Fact]], removed: Dict[str, Set[Fact]],
              pred: str, row: Fact) -> None:
    """Record a net insertion (cancelling a same-batch removal)."""
    rset = removed.get(pred)
    if rset and row in rset:
        rset.discard(row)
        return
    added.setdefault(pred, set()).add(row)


def _flip_remove(added: Dict[str, Set[Fact]], removed: Dict[str, Set[Fact]],
                 pred: str, row: Fact) -> None:
    """Record a net removal (cancelling a same-batch insertion)."""
    aset = added.get(pred)
    if aset and row in aset:
        aset.discard(row)
        return
    removed.setdefault(pred, set()).add(row)


def _match_head(crule: _CompiledRule, row: Fact) -> Optional[Dict[str, Any]]:
    """Bindings unifying a ground ``row`` with the rule head, or None."""
    parts = crule.head.parts
    if len(row) != len(parts):
        return None
    env: Dict[str, Any] = {}
    for value, (is_var, part) in zip(row, parts):
        if is_var:
            if part in env:
                if env[part] != value:
                    return None
            else:
                env[part] = value
        elif part != value:
            return None
    return env


class MaterializedFixpoint:
    """A stratified fixpoint kept consistent under fact deltas.

    Produces the exact database :func:`evaluate` would, but maintains it
    in place instead of recomputing.  Each stratum is classified once:

    - **counting** — no positive dependency cycle among the stratum's
      head predicates.  Every derived fact carries its exact derivation
      count, adjusted per delta batch with the signed semi-naive
      formula: for each rule and each focused body literal, literals
      before the focus see the *new* state, literals after it the *old*
      state (reconstructed by :class:`_PatchedView`), so the per-batch
      derivation-count change is exact and a fact disappears precisely
      when its last derivation does.
    - **recursive** — maintained by DRed (delete-and-rederive):
      overdelete everything transitively supported by a removed fact
      against the pre-batch state, rederive survivors from the
      remainder, then propagate insertions and rederivations with the
      ordinary semi-naive rounds.

    A delta touching a predicate that appears **negated** in a stratum
    is not maintained incrementally — that stratum and everything above
    it is recomputed from scratch (``delta_fallbacks``); negation makes
    maintenance non-monotone.
    """

    def __init__(self, rules: Iterable[Rule], edb: Database,
                 stats: Optional[Dict[str, int]] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self._stats_sink = stats
        self._tracer = tracer
        self._rules = list(rules)
        self._strata: List[List[_CompiledRule]] = []
        self._rules_by_head: List[Dict[str, List[_CompiledRule]]] = []
        self._stratum_heads: List[List[str]] = []  # topo-ordered when counting
        self._stratum_counting: List[bool] = []
        self._stratum_negated: List[Set[str]] = []
        for layer in stratify(self._rules):
            compiled = [_CompiledRule(r) for r in layer]
            by_head: Dict[str, List[_CompiledRule]] = defaultdict(list)
            for crule in compiled:
                by_head[crule.rule.head.predicate].append(crule)
            order, acyclic = self._topo_heads(compiled, set(by_head))
            self._strata.append(compiled)
            self._rules_by_head.append(dict(by_head))
            self._stratum_heads.append(order)
            self._stratum_counting.append(acyclic)
            self._stratum_negated.append({
                lit.predicate for crule in compiled
                for lit in crule.rule.body if lit.negated
            })
        self._head_preds: Set[str] = {
            head for by_head in self._rules_by_head for head in by_head
        }
        self._edb: Dict[str, Set[Fact]] = {
            pred: set(edb._live_rows(pred)) for pred in edb.predicates()
        }
        self._db = Database({p: set(rows) for p, rows in self._edb.items()})
        # counting strata: head pred -> row -> exact derivation count
        self._counts: Dict[str, Dict[Fact, int]] = {}
        # recursive strata: head pred -> rows with at least one derivation
        self._derived: Dict[str, Set[Fact]] = {}
        self.stats = maintenance_stats()
        local = maintenance_stats()
        # The initial build is an ordinary evaluation — it reports under
        # the same span names so EXPLAIN trees and the obs smoke gates
        # see one evaluate with its rounds, maintained or not.
        with self._span("deduction.evaluate", rules=len(self._rules),
                        optimise=True, maintained=True) as span:
            for s in range(len(self._strata)):
                self._build_stratum(s, local)
            span.set(**{k: v for k, v in local.items() if v})
        self._fold(local)

    # -- infrastructure ----------------------------------------------------

    def _span(self, name: str, **attrs: Any):
        tracer = self._tracer if self._tracer is not None else get_tracer()
        return tracer.span(name, **attrs)

    def _fold(self, local: Dict[str, int]) -> None:
        for key, value in local.items():
            if value:
                self.stats[key] = self.stats.get(key, 0) + value
                if self._stats_sink is not None:
                    self._stats_sink[key] = self._stats_sink.get(key, 0) + value

    @staticmethod
    def _topo_heads(compiled: List[_CompiledRule],
                    heads: Set[str]) -> Tuple[List[str], bool]:
        """Topologically order the stratum's head predicates by positive
        intra-stratum dependency; returns ``(order, acyclic)``."""
        deps: Dict[str, Set[str]] = {head: set() for head in heads}
        for crule in compiled:
            head = crule.rule.head.predicate
            for lit in crule.positive:
                if lit.predicate in heads and lit.predicate != head:
                    deps[head].add(lit.predicate)
            for lit in crule.rule.body:
                if not lit.negated and lit.predicate == head:
                    return sorted(heads), False  # self-recursive
        order: List[str] = []
        placed: Set[str] = set()
        pending = sorted(heads)
        while pending:
            progress = False
            remaining = []
            for head in pending:
                if deps[head] <= placed:
                    order.append(head)
                    placed.add(head)
                    progress = True
                else:
                    remaining.append(head)
            if not progress:
                return sorted(heads), False  # cycle
            pending = remaining
        return order, True

    def database(self) -> Database:
        """The live materialised database (EDB plus derived facts)."""
        return self._db

    def _join(self, crule: _CompiledRule, focus: Optional[int],
              focus_db: Optional[Database], new_db: Any, old_db: Any,
              stats: Dict[str, int]) -> List[Dict[str, Any]]:
        """Body environments of ``crule``; each one is one derivation.

        With a focus, the focused literal reads ``focus_db``, literals
        before it (in original body order) read ``new_db`` and literals
        after it read ``old_db`` — the telescoping split that makes the
        signed derivation-count delta exact.  Negation is always checked
        against the live database (deltas touching negated predicates
        take the fallback path instead).
        """
        envs: List[Dict[str, Any]] = [{}]
        for step in crule.plan(focus):
            if focus is None:
                db = old_db
            elif step.body_index == focus:
                db = focus_db
            elif step.body_index < focus:
                db = new_db
            else:
                db = old_db
            next_envs: List[Dict[str, Any]] = []
            for env in envs:
                next_envs.extend(step.extend(db, env, stats))
            envs = next_envs
            if not envs:
                return []
        if crule.negative:
            envs = [
                env for env in envs
                if not any(
                    self._db.contains(builder.predicate, builder.build(env))
                    for builder in crule.negative
                )
            ]
        return envs

    # -- initial build -----------------------------------------------------

    def _build_stratum(self, s: int, local: Dict[str, int]) -> None:
        if self._stratum_counting[s]:
            local["iterations"] += 1
            with self._span("deduction.round", stratum=s, seminaive=False,
                            counting=True) as span:
                derived_count = 0
                for head in self._stratum_heads[s]:
                    counts = self._counts.setdefault(head, {})
                    for crule in self._rules_by_head[s][head]:
                        for env in self._join(crule, None, None, self._db,
                                              self._db, local):
                            local["rule_firings"] += 1
                            row = crule.head.build(env)
                            previous = counts.get(row, 0)
                            counts[row] = previous + 1
                            if previous == 0 and self._db.add(head, row):
                                local["derived_facts"] += 1
                                derived_count += 1
                span.set(derived=derived_count)
            return
        compiled = self._strata[s]
        delta: Optional[Database] = None
        while True:
            local["iterations"] += 1
            derived = Database()
            with self._span("deduction.round", stratum=s,
                            seminaive=delta is not None) as span:
                for crule in compiled:
                    local["derived_facts"] += len(
                        _evaluate_compiled(crule, self._db, delta, derived,
                                           local)
                    )
                span.set(derived=len(derived))
            if len(derived) == 0:
                break
            for pred in derived.predicates():
                self._derived.setdefault(pred, set()).update(
                    derived._live_rows(pred)
                )
            self._db.merge(derived)
            delta = derived

    # -- delta maintenance -------------------------------------------------

    def apply_delta(
        self,
        added: Dict[str, Iterable[Fact]],
        removed: Dict[str, Iterable[Fact]],
    ) -> Tuple[Dict[str, Set[Fact]], Dict[str, Set[Fact]]]:
        """Apply an EDB delta batch; maintain every stratum.

        Returns ``(net_added, net_removed)`` pred->rows maps covering
        both the EDB changes and every derived-fact consequence — the
        exact difference between the database before and after.
        """
        local = maintenance_stats()
        local["delta_applies"] = 1
        added_all: Dict[str, Set[Fact]] = {}
        removed_all: Dict[str, Set[Fact]] = {}
        with self._span("deduction.apply_delta") as span:
            for pred, rows in removed.items():
                asserted = self._edb.get(pred)
                for row in rows:
                    row = tuple(row)
                    if asserted is None or row not in asserted:
                        continue
                    asserted.remove(row)
                    if self._counts.get(pred, {}).get(row, 0) > 0:
                        continue  # still derived: presence unchanged
                    if row in self._derived.get(pred, ()):
                        continue
                    if self._db.discard(pred, row):
                        _flip_remove(added_all, removed_all, pred, row)
                        local["delta_removed_facts"] += 1
            for pred, rows in added.items():
                asserted = self._edb.setdefault(pred, set())
                for row in rows:
                    row = tuple(row)
                    if row in asserted:
                        continue
                    asserted.add(row)
                    if self._db.add(pred, row):
                        _flip_add(added_all, removed_all, pred, row)
                        local["delta_added_facts"] += 1
            for s in range(len(self._strata)):
                changed = {
                    pred for pred, rows in added_all.items() if rows
                } | {pred for pred, rows in removed_all.items() if rows}
                if not changed:
                    break
                if changed & self._stratum_negated[s]:
                    local["delta_fallbacks"] += 1
                    self._recompute_from(s, added_all, removed_all, local)
                    break
                body_preds = {
                    lit.predicate for crule in self._strata[s]
                    for lit in crule.rule.body
                }
                if not (changed & body_preds) and not (
                    changed & set(self._rules_by_head[s])
                ):
                    continue
                if self._stratum_counting[s]:
                    self._maintain_counting(s, added_all, removed_all, local)
                else:
                    self._maintain_dred(s, added_all, removed_all, local)
            span.set(
                added=sum(len(r) for r in added_all.values()),
                removed=sum(len(r) for r in removed_all.values()),
                fallbacks=local["delta_fallbacks"],
            )
        self._fold(local)
        return added_all, removed_all

    def _maintain_counting(self, s: int, added_all: Dict[str, Set[Fact]],
                           removed_all: Dict[str, Set[Fact]],
                           local: Dict[str, int]) -> None:
        old_view = _PatchedView(self._db, added_all, removed_all)
        for head in self._stratum_heads[s]:
            net: Dict[Fact, int] = {}
            for crule in self._rules_by_head[s][head]:
                for focus in range(len(crule.positive)):
                    pred = crule.positive[focus].predicate
                    for sign, patch in ((1, added_all), (-1, removed_all)):
                        rows = patch.get(pred)
                        if not rows:
                            continue
                        focus_db = Database({pred: set(rows)})
                        for env in self._join(crule, focus, focus_db,
                                              self._db, old_view, local):
                            local["rule_firings"] += 1
                            if sign > 0:
                                local["count_increments"] += 1
                            else:
                                local["count_decrements"] += 1
                            row = crule.head.build(env)
                            net[row] = net.get(row, 0) + sign
            if not net:
                continue
            counts = self._counts.setdefault(head, {})
            asserted = self._edb.get(head, ())
            for row, diff in net.items():
                if diff == 0:
                    continue
                previous = counts.get(row, 0)
                current = max(0, previous + diff)
                if current == 0:
                    counts.pop(row, None)
                else:
                    counts[row] = current
                if previous == 0 and current > 0:
                    if self._db.add(head, row):
                        _flip_add(added_all, removed_all, head, row)
                        local["delta_added_facts"] += 1
                elif previous > 0 and current == 0 and row not in asserted:
                    if self._db.discard(head, row):
                        _flip_remove(added_all, removed_all, head, row)
                        local["delta_removed_facts"] += 1

    def _maintain_dred(self, s: int, added_all: Dict[str, Set[Fact]],
                       removed_all: Dict[str, Set[Fact]],
                       local: Dict[str, int]) -> None:
        compiled = self._strata[s]
        heads = set(self._rules_by_head[s])
        old_view = _PatchedView(self._db, added_all, removed_all)
        # --- phase 1: overdeletion against the pre-batch state ---------
        over: Dict[str, Set[Fact]] = {}
        round_delta: Dict[str, Set[Fact]] = {
            pred: set(rows) for pred, rows in removed_all.items() if rows
        }
        while round_delta:
            local["iterations"] += 1
            next_delta: Dict[str, Set[Fact]] = {}
            for crule in compiled:
                head = crule.rule.head.predicate
                for focus in range(len(crule.positive)):
                    pred = crule.positive[focus].predicate
                    rows = round_delta.get(pred)
                    if not rows:
                        continue
                    focus_db = Database({pred: set(rows)})
                    for env in self._join(crule, focus, focus_db,
                                          old_view, old_view, local):
                        local["rule_firings"] += 1
                        row = crule.head.build(env)
                        if row in over.get(head, ()):
                            continue
                        if row not in self._derived.get(head, ()):
                            continue
                        over.setdefault(head, set()).add(row)
                        # an EDB-asserted row keeps its presence: its
                        # dependents never lose support, so only
                        # derived-only rows propagate the doom wave.
                        if row not in self._edb.get(head, ()):
                            next_delta.setdefault(head, set()).add(row)
            round_delta = next_delta
        # --- phase 2: physical deletion + rederivation ------------------
        recheck: Dict[str, Set[Fact]] = {}
        for head, rows in over.items():
            derived_set = self._derived.setdefault(head, set())
            asserted = self._edb.get(head, ())
            for row in rows:
                derived_set.discard(row)
                local["overdeletions"] += 1
                recheck.setdefault(head, set()).add(row)
                if row in asserted:
                    continue  # presence survives on the EDB assertion
                if self._db.discard(head, row):
                    _flip_remove(added_all, removed_all, head, row)
                    local["delta_removed_facts"] += 1
        # EDB-removed rows of this stratum's heads may still be
        # rule-supported (the derived flag can be stale for rows that
        # were EDB-present at build time): give them a rederive check.
        for head in heads:
            rows = removed_all.get(head)
            if rows:
                recheck.setdefault(head, set()).update(rows)
        rederived = Database()
        for head, rows in recheck.items():
            derived_set = self._derived.setdefault(head, set())
            for row in rows:
                local["rederive_checks"] += 1
                if self._rederivable(s, head, row, local):
                    local["rederivations"] += 1
                    derived_set.add(row)
                    if self._db.add(head, row):
                        _flip_add(added_all, removed_all, head, row)
                        local["delta_added_facts"] += 1
                        rederived.add(head, row)
        # --- phase 3: semi-naive insertion propagation ------------------
        body_preds = {
            lit.predicate for crule in compiled
            for lit in crule.rule.body if not lit.negated
        }
        delta = rederived
        for pred in body_preds:
            rows = added_all.get(pred)
            if rows:
                for row in rows:
                    delta.add(pred, row)
        while len(delta):
            local["iterations"] += 1
            derived = Database()
            for crule in compiled:
                local["derived_facts"] += len(
                    _evaluate_compiled(crule, self._db, delta, derived, local)
                )
            if len(derived) == 0:
                break
            for pred in derived.predicates():
                derived_set = self._derived.setdefault(pred, set())
                for row in derived._live_rows(pred):
                    derived_set.add(row)
                    _flip_add(added_all, removed_all, pred, row)
                    local["delta_added_facts"] += 1
            self._db.merge(derived)
            delta = derived

    def _rederivable(self, s: int, head: str, row: Fact,
                     local: Dict[str, int]) -> bool:
        """True when ``row`` still has a one-step derivation in the
        current database (the DRed rederivation test)."""
        for crule in self._rules_by_head[s][head]:
            env = _match_head(crule, row)
            if env is None:
                continue
            envs = [env]
            for step in crule.check_plan():
                next_envs: List[Dict[str, Any]] = []
                for candidate in envs:
                    next_envs.extend(step.extend(self._db, candidate, local))
                envs = next_envs
                if not envs:
                    break
            for candidate in envs:
                if any(
                    self._db.contains(builder.predicate,
                                      builder.build(candidate))
                    for builder in crule.negative
                ):
                    continue
                return True
        return False

    def _recompute_from(self, s: int, added_all: Dict[str, Set[Fact]],
                        removed_all: Dict[str, Set[Fact]],
                        local: Dict[str, int]) -> None:
        """Fallback: rebuild strata ``s..`` from scratch (negation)."""
        heads: Set[str] = set()
        for idx in range(s, len(self._strata)):
            heads |= set(self._rules_by_head[idx])
        before = {head: set(self._db._live_rows(head)) for head in heads}
        for head in heads:
            asserted = self._edb.get(head, ())
            for row in list(self._db._live_rows(head)):
                if row not in asserted:
                    self._db.discard(head, row)
            self._counts.pop(head, None)
            self._derived.pop(head, None)
        for idx in range(s, len(self._strata)):
            self._build_stratum(idx, local)
        for head in heads:
            after = set(self._db._live_rows(head))
            for row in after - before[head]:
                _flip_add(added_all, removed_all, head, row)
            for row in before[head] - after:
                _flip_remove(added_all, removed_all, head, row)
