"""Bottom-up semi-naive Datalog evaluation with stratified negation.

The object processor's "deductive relational database" view (section
3.1) materialises rule conclusions set-at-a-time.  Semi-naive evaluation
only joins against the *delta* of the previous iteration, which is the
standard optimisation over naive iteration; negation is handled by
stratification (a rule may only negate predicates fully computed in
earlier strata).

Two evaluation paths share the same stratified fixpoint loop:

- the **compiled** path (default): each rule is compiled once into join
  plans — one per delta focus — with literals reordered greedily by the
  number of bound argument positions, and each join step probing a
  per-predicate argument-position hash index on the
  :class:`Database` instead of scanning and unifying row by row;
- the **interpreted** path (``optimise=False``): the original
  per-row ``unify`` loop, kept as the ablation baseline benchmark
  Perf-6 compares join-probe counts against.

Both paths count every examined row in ``stats["join_probes"]`` and
produce bit-identical fixpoints.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import DeductionError
from repro.obs.tracing import Tracer, get_tracer
from repro.deduction.terms import (
    Constant,
    Literal,
    Rule,
    Substitution,
    Variable,
    ground_tuple,
    unify,
)

Fact = Tuple[Any, ...]

_EMPTY_ROWS: frozenset = frozenset()


class Database:
    """Predicate-indexed fact storage.

    Beyond the per-predicate fact sets, the database maintains lazy
    *argument-position indexes*: ``index("edge", (0,))`` maps each value
    of the first argument to the matching rows.  Indexes are built on
    first use and maintained incrementally by :meth:`add`, which is what
    makes the compiled join plans O(matching rows) per probe.
    """

    def __init__(self, facts: Optional[Dict[str, Set[Fact]]] = None) -> None:
        self._facts: Dict[str, Set[Fact]] = {}
        # predicate -> positions-tuple -> key-tuple -> rows
        self._indexes: Dict[str, Dict[Tuple[int, ...], Dict[Tuple, List[Fact]]]] = {}
        self._frozen: Dict[str, frozenset] = {}
        for pred, rows in (facts or {}).items():
            self._facts[pred] = set(rows)

    def add(self, predicate: str, row: Fact) -> bool:
        """Insert; return True when the fact is new."""
        rows = self._facts.get(predicate)
        if rows is None:
            rows = self._facts[predicate] = set()
        if row in rows:
            return False
        rows.add(row)
        self._frozen.pop(predicate, None)
        indexes = self._indexes.get(predicate)
        if indexes:
            for positions, table in indexes.items():
                if not positions or positions[-1] < len(row):
                    key = tuple(row[p] for p in positions)
                    table.setdefault(key, []).append(row)
        return True

    def rows(self, predicate: str) -> frozenset:
        """The fact set of one predicate, as an immutable snapshot.

        Always a ``frozenset`` — previously this leaked the live
        internal set for known predicates (mutating it corrupted the
        indexes) but a fresh set for unknown ones.  The snapshot is
        cached per predicate and invalidated on the next insert.
        """
        frozen = self._frozen.get(predicate)
        if frozen is None:
            frozen = self._frozen[predicate] = frozenset(
                self._facts.get(predicate, ())
            )
        return frozen

    def _live_rows(self, predicate: str) -> Iterable[Fact]:
        """Internal read-only access without snapshot cost."""
        return self._facts.get(predicate, _EMPTY_ROWS)

    def index(self, predicate: str, positions: Tuple[int, ...]) -> Dict[Tuple, List[Fact]]:
        """The hash index of ``predicate`` on ``positions`` (lazily built)."""
        indexes = self._indexes.setdefault(predicate, {})
        table = indexes.get(positions)
        if table is None:
            table = indexes[positions] = {}
            last = positions[-1] if positions else -1
            for row in self._facts.get(predicate, ()):
                if last < len(row):
                    key = tuple(row[p] for p in positions)
                    table.setdefault(key, []).append(row)
        return table

    def contains(self, predicate: str, row: Fact) -> bool:
        """Membership test for one fact."""
        rows = self._facts.get(predicate)
        return rows is not None and row in rows

    def predicates(self) -> List[str]:
        """Predicates with at least one fact."""
        return list(self._facts)

    def copy(self) -> "Database":
        """Independent deep copy."""
        return Database({p: set(rows) for p, rows in self._facts.items()})

    def merge(self, other: "Database") -> None:
        """Union another database in, in place (indexes kept current)."""
        for pred in other.predicates():
            incoming = other._live_rows(pred)
            if self._indexes.get(pred):
                for row in incoming:
                    self.add(pred, row)
            else:
                rows = self._facts.setdefault(pred, set())
                if incoming - rows:
                    self._frozen.pop(pred, None)
                    rows |= incoming

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._facts.values())


def stratify(rules: Iterable[Rule]) -> List[List[Rule]]:
    """Partition rules into strata; negation may only reach lower strata.

    Raises :class:`DeductionError` when the program is not stratifiable
    (a negative dependency cycle exists).
    """
    rules = list(rules)
    heads = {rule.head.predicate for rule in rules}
    stratum: Dict[str, int] = {pred: 0 for pred in heads}
    changed = True
    iterations = 0
    bound = len(heads) + 1
    while changed:
        changed = False
        iterations += 1
        if iterations > bound * max(1, len(rules)):
            raise DeductionError("program is not stratifiable (negative cycle)")
        for rule in rules:
            head = rule.head.predicate
            for lit in rule.body:
                if lit.predicate not in heads:
                    continue  # EDB predicate: stratum 0 by definition
                required = stratum[lit.predicate] + (1 if lit.negated else 0)
                if stratum[head] < required:
                    stratum[head] = required
                    if stratum[head] > len(heads):
                        raise DeductionError(
                            "program is not stratifiable (negative cycle "
                            f"through {head!r})"
                        )
                    changed = True
    layers: Dict[int, List[Rule]] = defaultdict(list)
    for rule in rules:
        layers[stratum[rule.head.predicate]].append(rule)
    return [layers[level] for level in sorted(layers)]


# ---------------------------------------------------------------------------
# Compiled join plans
# ---------------------------------------------------------------------------
#
# Substitutions on the compiled path are plain ``{variable name: value}``
# dicts — no ``Constant`` wrapping, no ``unify`` call per row.  A literal
# compiled against a known set of already-bound variables splits its
# argument positions into
#
# - *key* positions (constants and bound variables): probed through the
#   database's argument-position index;
# - *binder* positions (first occurrence of a new variable): bound from
#   the row;
# - *check* positions (repeated occurrence of a new variable within the
#   same literal): compared against the binder position.


class _JoinStep:
    """One positive body literal, compiled for a fixed binding context."""

    __slots__ = ("predicate", "arity", "positions", "key_parts", "binders",
                 "checks", "body_index")

    def __init__(self, literal: Literal, bound_vars: Set[str], body_index: int) -> None:
        self.predicate = literal.predicate
        self.arity = len(literal.args)
        self.body_index = body_index  # position among the rule's positives
        positions: List[int] = []
        key_parts: List[Tuple[bool, Any]] = []  # (is_variable, value-or-name)
        binders: List[Tuple[int, str]] = []
        checks: List[Tuple[int, int]] = []
        first_seen: Dict[str, int] = {}
        for pos, arg in enumerate(literal.args):
            if isinstance(arg, Constant):
                positions.append(pos)
                key_parts.append((False, arg.value))
            elif arg.name in bound_vars:
                positions.append(pos)
                key_parts.append((True, arg.name))
            elif arg.name in first_seen:
                checks.append((pos, first_seen[arg.name]))
            else:
                first_seen[arg.name] = pos
                binders.append((pos, arg.name))
        self.positions = tuple(positions)
        self.key_parts = tuple(key_parts)
        self.binders = tuple(binders)
        self.checks = tuple(checks)

    def extend(self, db: Database, env: Dict[str, Any],
               stats: Dict[str, int]) -> Iterator[Dict[str, Any]]:
        """All extensions of ``env`` over matching rows of ``db``."""
        if self.positions:
            key = tuple(
                env[part] if is_var else part
                for is_var, part in self.key_parts
            )
            stats["index_probes"] += 1
            candidates = db.index(self.predicate, self.positions).get(key, ())
        else:
            candidates = db._live_rows(self.predicate)
        arity = self.arity
        for row in candidates:
            stats["join_probes"] += 1
            if len(row) != arity:
                continue
            ok = True
            for pos, first in self.checks:
                if row[pos] != row[first]:
                    ok = False
                    break
            if not ok:
                continue
            out = dict(env)
            for pos, name in self.binders:
                out[name] = row[pos]
            yield out


class _TupleBuilder:
    """Grounds a literal whose variables are all bound (heads, negation)."""

    __slots__ = ("predicate", "parts")

    def __init__(self, literal: Literal) -> None:
        self.predicate = literal.predicate
        self.parts = tuple(
            (True, arg.name) if isinstance(arg, Variable) else (False, arg.value)
            for arg in literal.args
        )

    def build(self, env: Dict[str, Any]) -> Fact:
        return tuple(env[part] if is_var else part for is_var, part in self.parts)


class _CompiledRule:
    """A rule compiled into one join plan per semi-naive focus."""

    def __init__(self, rule: Rule) -> None:
        self.rule = rule
        self.positive = [lit for lit in rule.body if not lit.negated]
        self.negative = [_TupleBuilder(lit) for lit in rule.body if lit.negated]
        self.head = _TupleBuilder(rule.head)
        # focus (None or positive-literal index) -> ordered join steps
        self._plans: Dict[Optional[int], List[_JoinStep]] = {}

    def _bound_count(self, literal: Literal, bound_vars: Set[str]) -> int:
        count = 0
        for arg in literal.args:
            if isinstance(arg, Constant) or arg.name in bound_vars:
                count += 1
        return count

    def plan(self, focus: Optional[int]) -> List[_JoinStep]:
        """The join order for ``focus``: the delta literal leads, the
        rest follow greedily by bound-position count (selectivity)."""
        try:
            return self._plans[focus]
        except KeyError:
            pass
        remaining = list(range(len(self.positive)))
        order: List[int] = []
        bound_vars: Set[str] = set()
        if focus is not None:
            order.append(focus)
            remaining.remove(focus)
            bound_vars |= {v.name for v in self.positive[focus].variables()}
        while remaining:
            best = max(
                remaining,
                key=lambda i: (self._bound_count(self.positive[i], bound_vars), -i),
            )
            order.append(best)
            remaining.remove(best)
            bound_vars |= {v.name for v in self.positive[best].variables()}
        steps: List[_JoinStep] = []
        bound_vars = set()
        for body_index in order:
            steps.append(_JoinStep(self.positive[body_index], bound_vars, body_index))
            bound_vars |= {v.name for v in self.positive[body_index].variables()}
        self._plans[focus] = steps
        return steps


def _evaluate_compiled(
    crule: _CompiledRule,
    full: Database,
    delta: Optional[Database],
    derived: Database,
    stats: Dict[str, int],
) -> List[Fact]:
    """One semi-naive pass of a compiled rule (see ``_evaluate_rule``)."""
    new_facts: List[Fact] = []
    focus_positions: List[Optional[int]]
    if delta is None or not crule.positive:
        focus_positions = [None]
    else:
        focus_positions = list(range(len(crule.positive)))
    head_pred = crule.rule.head.predicate
    for focus in focus_positions:
        envs: List[Dict[str, Any]] = [{}]
        for step in crule.plan(focus):
            db = delta if (focus is not None and step.body_index == focus) else full
            next_envs: List[Dict[str, Any]] = []
            for env in envs:
                next_envs.extend(step.extend(db, env, stats))
            envs = next_envs
            if not envs:
                break
        for env in envs:
            blocked = False
            for builder in crule.negative:
                if full.contains(builder.predicate, builder.build(env)):
                    blocked = True
                    break
            if blocked:
                continue
            row = crule.head.build(env)
            if not full.contains(head_pred, row) and not derived.contains(
                head_pred, row
            ):
                derived.add(head_pred, row)
                new_facts.append(row)
    return new_facts


# ---------------------------------------------------------------------------
# Interpreted path (the optimise=False ablation baseline)
# ---------------------------------------------------------------------------


def _match_literal(
    literal: Literal,
    rows: Iterable[Fact],
    theta: Substitution,
    stats: Optional[Dict[str, int]] = None,
) -> Iterable[Substitution]:
    """All extensions of ``theta`` matching ``literal`` against ``rows``."""
    bound = literal.substitute(theta)
    for row in rows:
        if stats is not None:
            stats["join_probes"] += 1
        candidate = Literal(
            literal.predicate, tuple(Constant(v) for v in row)
        )
        out = unify(
            Literal(bound.predicate, bound.args), candidate, theta
        )
        if out is not None:
            yield out


def _evaluate_rule(
    rule: Rule,
    full: Database,
    delta: Optional[Database],
    derived: Database,
    stats: Optional[Dict[str, int]] = None,
) -> List[Fact]:
    """One semi-naive pass of ``rule``; ``delta`` focuses one positive
    literal on the last iteration's new facts (None = naive first round)."""
    new_facts: List[Fact] = []
    positive = [lit for lit in rule.body if not lit.negated]
    negative = [lit for lit in rule.body if lit.negated]

    def lookup(lit: Literal, use_delta: bool) -> Iterable[Fact]:
        if use_delta and delta is not None:
            return delta._live_rows(lit.predicate)
        return full._live_rows(lit.predicate)

    focus_positions: List[Optional[int]]
    if delta is None or not positive:
        focus_positions = [None]
    else:
        focus_positions = list(range(len(positive)))

    for focus in focus_positions:
        substitutions: List[Substitution] = [{}]
        for index, lit in enumerate(positive):
            rows = lookup(lit, use_delta=(focus == index))
            next_subs: List[Substitution] = []
            for theta in substitutions:
                next_subs.extend(_match_literal(lit, rows, theta, stats))
            substitutions = next_subs
            if not substitutions:
                break
        for theta in substitutions:
            blocked = False
            for lit in negative:
                row = ground_tuple(lit, theta)
                if full.contains(lit.predicate, row):
                    blocked = True
                    break
            if blocked:
                continue
            row = ground_tuple(rule.head, theta)
            if not full.contains(rule.head.predicate, row) and not derived.contains(
                rule.head.predicate, row
            ):
                derived.add(rule.head.predicate, row)
                new_facts.append(row)
    return new_facts


# ---------------------------------------------------------------------------
# The stratified fixpoint
# ---------------------------------------------------------------------------


def new_stats() -> Dict[str, int]:
    """A fresh evaluation-statistics dict (all counters zero)."""
    return {"join_probes": 0, "index_probes": 0, "iterations": 0,
            "derived_facts": 0}


def evaluate(
    rules: Iterable[Rule],
    edb: Database,
    optimise: bool = True,
    stats: Optional[Dict[str, int]] = None,
    tracer: Optional[Tracer] = None,
) -> Database:
    """Compute the full IDB: ``edb`` plus everything the rules derive.

    ``optimise`` selects the compiled join-plan path (default) or the
    interpreted unify-per-row baseline; both produce identical
    databases.  ``stats`` (any mutable mapping, see :func:`new_stats`)
    accumulates join-probe / index-probe / iteration counters for
    structural performance assertions.  Counters are gathered in a plain
    local dict during the fixpoint (one dict op per probe, even when
    ``stats`` is a registry-backed view) and folded into ``stats`` once
    at the end; the whole evaluation runs under a
    ``deduction.evaluate`` span with one ``deduction.round`` child per
    semi-naive iteration.
    """
    local = new_stats()
    rules = list(rules)
    active_tracer = tracer if tracer is not None else get_tracer()
    with active_tracer.span("deduction.evaluate", rules=len(rules),
                            optimise=optimise) as evaluate_span:
        full = edb.copy()
        for stratum_index, layer in enumerate(stratify(rules)):
            facts = [rule for rule in layer if rule.is_fact]
            proper = [rule for rule in layer if not rule.is_fact]
            compiled = [_CompiledRule(r) for r in proper] if optimise else []
            for fact in facts:
                full.add(fact.head.predicate, ground_tuple(fact.head, {}))
            delta: Optional[Database] = None
            while True:
                local["iterations"] += 1
                derived = Database()
                with active_tracer.span(
                    "deduction.round", stratum=stratum_index,
                    seminaive=delta is not None,
                ) as round_span:
                    if optimise:
                        for crule in compiled:
                            local["derived_facts"] += len(
                                _evaluate_compiled(crule, full, delta,
                                                   derived, local)
                            )
                    else:
                        for rule in proper:
                            local["derived_facts"] += len(
                                _evaluate_rule(rule, full, delta, derived,
                                               local)
                            )
                    round_span.set(derived=len(derived))
                if len(derived) == 0:
                    break
                full.merge(derived)
                delta = derived
            # First round after facts: run once naive, then semi-naive
            # rounds (handled above: delta None = naive round).
        evaluate_span.set(**local)
    if stats is not None:
        for key, value in local.items():
            stats[key] = stats.get(key, 0) + value
    return full
