"""Bottom-up semi-naive Datalog evaluation with stratified negation.

The object processor's "deductive relational database" view (section
3.1) materialises rule conclusions set-at-a-time.  Semi-naive evaluation
only joins against the *delta* of the previous iteration, which is the
standard optimisation over naive iteration; negation is handled by
stratification (a rule may only negate predicates fully computed in
earlier strata).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import DeductionError
from repro.deduction.terms import (
    Constant,
    Literal,
    Rule,
    Substitution,
    ground_tuple,
    unify,
)

Fact = Tuple[Any, ...]


class Database:
    """Predicate-indexed fact storage."""

    def __init__(self, facts: Optional[Dict[str, Set[Fact]]] = None) -> None:
        self._facts: Dict[str, Set[Fact]] = defaultdict(set)
        for pred, rows in (facts or {}).items():
            self._facts[pred] = set(rows)

    def add(self, predicate: str, row: Fact) -> bool:
        """Insert; return True when the fact is new."""
        rows = self._facts[predicate]
        if row in rows:
            return False
        rows.add(row)
        return True

    def rows(self, predicate: str) -> Set[Fact]:
        """The fact set of one predicate."""
        return self._facts.get(predicate, set())

    def contains(self, predicate: str, row: Fact) -> bool:
        """Membership test for one fact."""
        return row in self._facts.get(predicate, set())

    def predicates(self) -> List[str]:
        """Predicates with at least one fact."""
        return list(self._facts)

    def copy(self) -> "Database":
        """Independent deep copy."""
        return Database({p: set(rows) for p, rows in self._facts.items()})

    def merge(self, other: "Database") -> None:
        """Union another database in, in place."""
        for pred in other.predicates():
            self._facts[pred] |= other.rows(pred)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._facts.values())


def stratify(rules: Iterable[Rule]) -> List[List[Rule]]:
    """Partition rules into strata; negation may only reach lower strata.

    Raises :class:`DeductionError` when the program is not stratifiable
    (a negative dependency cycle exists).
    """
    rules = list(rules)
    heads = {rule.head.predicate for rule in rules}
    stratum: Dict[str, int] = {pred: 0 for pred in heads}
    changed = True
    iterations = 0
    bound = len(heads) + 1
    while changed:
        changed = False
        iterations += 1
        if iterations > bound * max(1, len(rules)):
            raise DeductionError("program is not stratifiable (negative cycle)")
        for rule in rules:
            head = rule.head.predicate
            for lit in rule.body:
                if lit.predicate not in heads:
                    continue  # EDB predicate: stratum 0 by definition
                required = stratum[lit.predicate] + (1 if lit.negated else 0)
                if stratum[head] < required:
                    stratum[head] = required
                    if stratum[head] > len(heads):
                        raise DeductionError(
                            "program is not stratifiable (negative cycle "
                            f"through {head!r})"
                        )
                    changed = True
    layers: Dict[int, List[Rule]] = defaultdict(list)
    for rule in rules:
        layers[stratum[rule.head.predicate]].append(rule)
    return [layers[level] for level in sorted(layers)]


def _match_literal(
    literal: Literal, rows: Set[Fact], theta: Substitution
) -> Iterable[Substitution]:
    """All extensions of ``theta`` matching ``literal`` against ``rows``."""
    bound = literal.substitute(theta)
    for row in rows:
        candidate = Literal(
            literal.predicate, tuple(Constant(v) for v in row)
        )
        out = unify(
            Literal(bound.predicate, bound.args), candidate, theta
        )
        if out is not None:
            yield out


def _evaluate_rule(
    rule: Rule,
    full: Database,
    delta: Optional[Database],
    derived: Database,
) -> List[Fact]:
    """One semi-naive pass of ``rule``; ``delta`` focuses one positive
    literal on the last iteration's new facts (None = naive first round)."""
    new_facts: List[Fact] = []
    positive = [lit for lit in rule.body if not lit.negated]
    negative = [lit for lit in rule.body if lit.negated]

    def lookup(lit: Literal, use_delta: bool) -> Set[Fact]:
        if use_delta and delta is not None:
            return delta.rows(lit.predicate)
        return full.rows(lit.predicate)

    focus_positions: List[Optional[int]]
    if delta is None or not positive:
        focus_positions = [None]
    else:
        focus_positions = list(range(len(positive)))

    for focus in focus_positions:
        substitutions: List[Substitution] = [{}]
        for index, lit in enumerate(positive):
            rows = lookup(lit, use_delta=(focus == index))
            next_subs: List[Substitution] = []
            for theta in substitutions:
                next_subs.extend(_match_literal(lit, rows, theta))
            substitutions = next_subs
            if not substitutions:
                break
        for theta in substitutions:
            blocked = False
            for lit in negative:
                row = ground_tuple(lit, theta)
                if full.contains(lit.predicate, row):
                    blocked = True
                    break
            if blocked:
                continue
            row = ground_tuple(rule.head, theta)
            if not full.contains(rule.head.predicate, row) and not derived.contains(
                rule.head.predicate, row
            ):
                derived.add(rule.head.predicate, row)
                new_facts.append(row)
    return new_facts


def evaluate(rules: Iterable[Rule], edb: Database) -> Database:
    """Compute the full IDB: ``edb`` plus everything the rules derive."""
    full = edb.copy()
    for layer in stratify(rules):
        facts = [rule for rule in layer if rule.is_fact]
        proper = [rule for rule in layer if not rule.is_fact]
        for fact in facts:
            full.add(fact.head.predicate, ground_tuple(fact.head, {}))
        delta: Optional[Database] = None
        while True:
            derived = Database()
            for rule in proper:
                _evaluate_rule(rule, full, delta, derived)
            if len(derived) == 0:
                break
            full.merge(derived)
            delta = derived
        # First round after facts: run once naive, then semi-naive rounds.
        # (handled above: delta None = naive round.)
    return full
