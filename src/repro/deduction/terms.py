"""Terms, literals, Horn rules and unification.

The vocabulary is deliberately small — the knowledge-base bridge
(:mod:`repro.deduction.kb`) exposes the proposition base through four
predicates, and user rules compose them:

- ``prop(P, X, L, Y)`` — stored proposition quadruples;
- ``in(X, C)`` — classification (transitive over isa);
- ``isa(C, D)`` — specialization (transitive, reflexive);
- ``attr(X, L, Y)`` — attribute links (explicit and deduced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.errors import DeductionError


@dataclass(frozen=True)
class Variable:
    """A logic variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A ground value (proposition name, label, number, ...)."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Variable, Constant]

#: A substitution maps variable names to terms.
Substitution = Dict[str, Term]


@dataclass(frozen=True)
class Literal:
    """``pred(arg1, ..., argN)``, possibly negated."""

    predicate: str
    args: Tuple[Term, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        for arg in self.args:
            if not isinstance(arg, (Variable, Constant)):
                raise DeductionError(f"bad term {arg!r} in literal {self.predicate}")

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    def negate(self) -> "Literal":
        """The literal with its negation flipped."""
        return Literal(self.predicate, self.args, negated=not self.negated)

    def variables(self) -> Tuple[Variable, ...]:
        """The variable arguments, in order."""
        return tuple(a for a in self.args if isinstance(a, Variable))

    def is_ground(self) -> bool:
        """Are all arguments constants?"""
        return all(isinstance(a, Constant) for a in self.args)

    def substitute(self, theta: Substitution) -> "Literal":
        """Apply a substitution to the arguments."""
        return Literal(
            self.predicate,
            tuple(resolve(arg, theta) for arg in self.args),
            negated=self.negated,
        )

    def rename(self, suffix: str) -> "Literal":
        """Suffix every variable (capture avoidance)."""
        return Literal(
            self.predicate,
            tuple(
                Variable(f"{a.name}#{suffix}") if isinstance(a, Variable) else a
                for a in self.args
            ),
            negated=self.negated,
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.predicate}({inner})"


@dataclass(frozen=True)
class SafetyIssue:
    """One range-restriction problem found in a ``head :- body`` pair.

    ``kind`` is one of ``negated-head``, ``unbound-head`` or
    ``unbound-negation``; ``variables`` names the offending variables
    (empty for ``negated-head``).
    """

    kind: str
    message: str
    variables: Tuple[str, ...] = ()


def safety_issues(head: Literal, body: Tuple[Literal, ...]) -> Tuple[SafetyIssue, ...]:
    """Range-restriction violations of a prospective rule.

    This is the single source of truth for rule safety: the
    :class:`Rule` constructor raises on the first issue, while the
    static analyzer reports all of them as diagnostics.
    """
    issues = []
    if head.negated:
        issues.append(
            SafetyIssue("negated-head", f"rule head may not be negated: {head!r}")
        )
    head_vars = {v.name for v in head.variables()}
    positive_vars = {
        v.name
        for lit in body
        if not lit.negated
        for v in lit.variables()
    }
    unsafe = head_vars - positive_vars
    if body and unsafe:
        issues.append(
            SafetyIssue(
                "unbound-head",
                f"unsafe rule: head variables {sorted(unsafe)} not bound "
                "by a positive body literal",
                tuple(sorted(unsafe)),
            )
        )
    for lit in body:
        if lit.negated:
            loose = {v.name for v in lit.variables()} - positive_vars
            if loose:
                issues.append(
                    SafetyIssue(
                        "unbound-negation",
                        f"unsafe negation: {lit!r} uses variables not bound "
                        "positively",
                        tuple(sorted(loose)),
                    )
                )
    return tuple(issues)


@dataclass(frozen=True)
class Rule:
    """A Horn rule ``head :- body``; facts have an empty body."""

    head: Literal
    body: Tuple[Literal, ...] = ()
    name: Optional[str] = None

    def __post_init__(self) -> None:
        for issue in safety_issues(self.head, self.body):
            raise DeductionError(f"{issue.message} in {self!r}")

    @property
    def is_fact(self) -> bool:
        """Rules without a body are facts."""
        return not self.body

    def rename(self, suffix: str) -> "Rule":
        """Rename all variables consistently."""
        return Rule(
            self.head.rename(suffix),
            tuple(lit.rename(suffix) for lit in self.body),
            name=self.name,
        )

    def __repr__(self) -> str:
        if self.is_fact:
            return f"{self.head!r}."
        body = ", ".join(repr(lit) for lit in self.body)
        return f"{self.head!r} :- {body}."


def resolve(term: Term, theta: Substitution) -> Term:
    """Follow variable bindings to a fixpoint."""
    seen = set()
    while isinstance(term, Variable) and term.name in theta:
        if term.name in seen:
            raise DeductionError(f"cyclic substitution at {term.name}")
        seen.add(term.name)
        term = theta[term.name]
    return term


def unify(a: Literal, b: Literal, theta: Optional[Substitution] = None) -> Optional[Substitution]:
    """Most general unifier of two literals (or ``None``).

    Negation flags must match; occurs-check is unnecessary because terms
    are flat (no function symbols).
    """
    if a.predicate != b.predicate or a.arity != b.arity or a.negated != b.negated:
        return None
    theta = dict(theta or {})
    for left, right in zip(a.args, b.args):
        left = resolve(left, theta)
        right = resolve(right, theta)
        if isinstance(left, Constant) and isinstance(right, Constant):
            if left.value != right.value:
                return None
        elif isinstance(left, Variable):
            if not (isinstance(right, Variable) and right.name == left.name):
                theta[left.name] = right
        else:  # left constant, right variable
            theta[right.name] = left
    return theta


def ground_tuple(literal: Literal, theta: Substitution) -> Tuple[Any, ...]:
    """The constant argument tuple of a (now ground) literal."""
    values = []
    for arg in literal.args:
        arg = resolve(arg, theta)
        if not isinstance(arg, Constant):
            raise DeductionError(f"literal {literal!r} not ground under {theta}")
        values.append(arg.value)
    return tuple(values)


def bind(literal: Literal, values: Iterable[Any]) -> Literal:
    """Replace the literal's arguments with the given constants."""
    consts = tuple(Constant(v) for v in values)
    if len(consts) != literal.arity:
        raise DeductionError(
            f"arity mismatch binding {literal.predicate}: {len(consts)} values"
        )
    return Literal(literal.predicate, consts, negated=literal.negated)
