"""Allen's interval algebra [ALLE83].

The paper cites Allen's "Maintaining knowledge about temporal intervals"
as one of the two time calculi supported by ConceptBase inference engines.
This module provides:

- the 13 basic relations (:data:`ALLEN_RELATIONS`);
- :func:`relation_between` to classify two concrete intervals;
- :func:`invert` and :func:`compose` implementing the algebra, with the
  full 13x13 composition table derived from endpoint semantics rather
  than transcribed by hand (so it is correct by construction);
- :class:`AllenNetwork`, a constraint network over symbolic intervals
  with Allen's path-consistency propagation algorithm.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.errors import TimeError
from repro.timecalc.interval import Interval


class AllenRelation(enum.Enum):
    """The thirteen basic Allen relations between intervals A and B."""

    BEFORE = "b"          # A ends before B starts
    AFTER = "bi"
    MEETS = "m"           # A's end == B's start
    MET_BY = "mi"
    OVERLAPS = "o"
    OVERLAPPED_BY = "oi"
    STARTS = "s"
    STARTED_BY = "si"
    DURING = "d"
    CONTAINS = "di"
    FINISHES = "f"
    FINISHED_BY = "fi"
    EQUAL = "eq"

    def __repr__(self) -> str:  # compact in sets
        return self.value


ALLEN_RELATIONS: Tuple[AllenRelation, ...] = tuple(AllenRelation)

_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.AFTER: AllenRelation.BEFORE,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.EQUAL: AllenRelation.EQUAL,
}


def invert(relation: AllenRelation) -> AllenRelation:
    """Return the converse relation (A r B  <=>  B invert(r) A)."""
    return _INVERSES[relation]


def relation_between(a: Interval, b: Interval) -> AllenRelation:
    """Classify the relation of concrete intervals ``a`` and ``b``."""
    if a.start == b.start and a.end == b.end:
        return AllenRelation.EQUAL
    if a.end < b.start:
        return AllenRelation.BEFORE
    if b.end < a.start:
        return AllenRelation.AFTER
    if a.end == b.start:
        return AllenRelation.MEETS
    if b.end == a.start:
        return AllenRelation.MET_BY
    if a.start == b.start:
        return AllenRelation.STARTS if a.end < b.end else AllenRelation.STARTED_BY
    if a.end == b.end:
        return AllenRelation.FINISHES if a.start > b.start else AllenRelation.FINISHED_BY
    if b.start < a.start and a.end < b.end:
        return AllenRelation.DURING
    if a.start < b.start and b.end < a.end:
        return AllenRelation.CONTAINS
    if a.start < b.start:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY


# ---------------------------------------------------------------------------
# Composition table, derived from endpoint witnesses.
#
# Each basic relation corresponds to a unique ordering pattern of four
# endpoints.  We pick small integer witnesses for A-relative-to-B per
# relation, then compute compose(r1, r2) = { relation_between(A, C) } over
# all witness pairs (A r1 B, B r2 C) realisable with rational endpoints.
# Exhaustive enumeration over a small grid is sound and complete for the
# interval algebra because each basic relation is order-invariant.
# ---------------------------------------------------------------------------

def _classify(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> AllenRelation:
    """Pure-integer version of :func:`relation_between` (endpoints only)."""
    if a_lo == b_lo and a_hi == b_hi:
        return AllenRelation.EQUAL
    if a_hi < b_lo:
        return AllenRelation.BEFORE
    if b_hi < a_lo:
        return AllenRelation.AFTER
    if a_hi == b_lo:
        return AllenRelation.MEETS
    if b_hi == a_lo:
        return AllenRelation.MET_BY
    if a_lo == b_lo:
        return AllenRelation.STARTS if a_hi < b_hi else AllenRelation.STARTED_BY
    if a_hi == b_hi:
        return AllenRelation.FINISHES if a_lo > b_lo else AllenRelation.FINISHED_BY
    if b_lo < a_lo and a_hi < b_hi:
        return AllenRelation.DURING
    if a_lo < b_lo and b_hi < a_hi:
        return AllenRelation.CONTAINS
    return AllenRelation.OVERLAPS if a_lo < b_lo else AllenRelation.OVERLAPPED_BY


def _build_composition_table() -> Dict[Tuple[AllenRelation, AllenRelation], FrozenSet[AllenRelation]]:
    # Enumerate all interval pairs on a 0..8 grid; the grid is dense enough
    # to realise every consistent endpoint ordering of three intervals, so
    # composing through a shared middle interval is sound and complete.
    span = list(itertools.combinations(range(9), 2))
    left_by_b: Dict[Tuple[int, int], list] = {}
    right_by_b: Dict[Tuple[int, int], list] = {}
    for lo, hi in span:
        left_by_b[(lo, hi)] = []
        right_by_b[(lo, hi)] = []
    for a in span:
        for b in span:
            rel = _classify(a[0], a[1], b[0], b[1])
            left_by_b[b].append((rel, a))
            right_by_b[a].append((rel, b))  # here ``a`` plays the middle role
    table: Dict[Tuple[AllenRelation, AllenRelation], set] = {
        (r1, r2): set() for r1 in ALLEN_RELATIONS for r2 in ALLEN_RELATIONS
    }
    for mid in span:
        lefts = left_by_b[mid]
        rights = right_by_b[mid]
        for r1, a in lefts:
            for r2, c in rights:
                table[(r1, r2)].add(_classify(a[0], a[1], c[0], c[1]))
    return {key: frozenset(value) for key, value in table.items()}


_COMPOSITION: Dict[Tuple[AllenRelation, AllenRelation], FrozenSet[AllenRelation]] | None = None


def _composition_table() -> Dict[Tuple[AllenRelation, AllenRelation], FrozenSet[AllenRelation]]:
    global _COMPOSITION
    if _COMPOSITION is None:
        _COMPOSITION = _build_composition_table()
    return _COMPOSITION


def compose(r1: AllenRelation, r2: AllenRelation) -> FrozenSet[AllenRelation]:
    """Relations possible between A and C given ``A r1 B`` and ``B r2 C``."""
    return _composition_table()[(r1, r2)]


FULL = frozenset(ALLEN_RELATIONS)


class AllenNetwork:
    """A qualitative constraint network over named symbolic intervals.

    Edges hold disjunctive relation sets; :meth:`propagate` runs Allen's
    path-consistency algorithm, tightening edges through composition until
    a fixpoint.  An empty edge set signals temporal inconsistency, which
    surfaces as :class:`~repro.errors.TimeError`.
    """

    def __init__(self) -> None:
        self._nodes: list[str] = []
        self._edges: Dict[Tuple[str, str], FrozenSet[AllenRelation]] = {}

    @property
    def nodes(self) -> Tuple[str, ...]:
        """The named intervals."""
        return tuple(self._nodes)

    def add_interval(self, name: str) -> None:
        """Register a named interval."""
        if name not in self._nodes:
            self._nodes.append(name)

    def constrain(self, a: str, b: str, relations: Iterable[AllenRelation]) -> None:
        """Assert that ``a`` relates to ``b`` by one of ``relations``."""
        self.add_interval(a)
        self.add_interval(b)
        new = frozenset(relations)
        if not new:
            raise TimeError(f"empty constraint between {a!r} and {b!r}")
        current = self.relations(a, b)
        tightened = current & new
        if not tightened:
            raise TimeError(f"inconsistent constraint {a!r} -> {b!r}: {new} vs {current}")
        self._set(a, b, tightened)

    def relations(self, a: str, b: str) -> FrozenSet[AllenRelation]:
        """Possible relations between two intervals."""
        if a == b:
            return frozenset({AllenRelation.EQUAL})
        return self._edges.get((a, b), FULL)

    def _set(self, a: str, b: str, relations: FrozenSet[AllenRelation]) -> None:
        self._edges[(a, b)] = relations
        self._edges[(b, a)] = frozenset(invert(r) for r in relations)

    def propagate(self) -> None:
        """Run path consistency to a fixpoint; raise on inconsistency."""
        queue = [(a, b) for a in self._nodes for b in self._nodes if a != b]
        while queue:
            i, j = queue.pop()
            rel_ij = self.relations(i, j)
            for k in self._nodes:
                if k in (i, j):
                    continue
                self._tighten(i, k, rel_ij, self.relations(j, k), queue)
                self._tighten(k, j, self.relations(k, i), rel_ij, queue)

    def _tighten(
        self,
        a: str,
        c: str,
        rel_ab: FrozenSet[AllenRelation],
        rel_bc: FrozenSet[AllenRelation],
        queue: list,
    ) -> None:
        allowed: set[AllenRelation] = set()
        for r1 in rel_ab:
            for r2 in rel_bc:
                allowed |= compose(r1, r2)
        tightened = self.relations(a, c) & frozenset(allowed)
        if not tightened:
            raise TimeError(f"temporal network inconsistent at {a!r} -> {c!r}")
        if tightened != self.relations(a, c):
            self._set(a, c, tightened)
            queue.append((a, c))

    def is_consistent(self) -> bool:
        """Convenience wrapper: propagate and report instead of raising."""
        try:
            self.propagate()
        except TimeError:
            return False
        return True
