"""A logic-based event calculus after Kowalski & Sergot [KS86].

The paper names the event calculus as the second time model supported by
ConceptBase inference engines.  The calculus here follows the classical
formulation: *events* occur at time points and *initiate* or *terminate*
*fluents*; a fluent holds at time ``t`` if some earlier event initiated it
and no event in between terminated it.  From the event history we can also
derive the maximal validity intervals of each fluent, which is exactly what
the proposition processor needs to stamp derived propositions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import TimeError
from repro.timecalc.interval import Interval, POSITIVE_INFINITY, TimePoint


@dataclass(frozen=True)
class Fluent:
    """A time-varying property, identified by name and arguments."""

    name: str
    args: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        if not self.args:
            return self.name
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class Event:
    """An event occurrence with its effects on fluents."""

    name: str
    time: Any
    initiates: Tuple[Fluent, ...] = ()
    terminates: Tuple[Fluent, ...] = ()


@dataclass
class EventCalculus:
    """An event history with ``holds_at`` and interval derivation.

    Events are kept sorted by time; simultaneous events are ordered by
    arrival, with terminations applied before initiations at the same
    instant so that an event both terminating and re-initiating a fluent
    leaves it holding (the standard reading).
    """

    _events: List[Event] = field(default_factory=list)

    def record(self, event: Event) -> None:
        """Insert ``event`` keeping the history sorted by time."""
        index = len(self._events)
        while index > 0 and self._key(self._events[index - 1]) > self._key(event):
            index -= 1
        self._events.insert(index, event)

    def happens(
        self,
        name: str,
        time: Any,
        initiates: Iterable[Fluent] = (),
        terminates: Iterable[Fluent] = (),
    ) -> Event:
        """Convenience constructor + :meth:`record`."""
        event = Event(name, time, tuple(initiates), tuple(terminates))
        self.record(event)
        return event

    @staticmethod
    def _key(event: Event):
        return event.time

    @property
    def events(self) -> Tuple[Event, ...]:
        """The history, sorted by time."""
        return tuple(self._events)

    # -- queries ----------------------------------------------------------

    def holds_at(self, fluent: Fluent, time: Any) -> bool:
        """True if ``fluent`` holds at ``time``: the state after folding
        every event up to *and including* that instant (terminations
        before initiations at the same instant).  This makes the holding
        span exactly the half-open ``[initiation, termination)`` interval
        :meth:`intervals` derives."""
        holding = False
        for event in self._events:
            if time < event.time:
                break
            if fluent in event.terminates:
                holding = False
            if fluent in event.initiates:
                holding = True
        return holding

    def initiated_at(self, fluent: Fluent) -> List[Any]:
        """Times at which the fluent was initiated."""
        return [e.time for e in self._events if fluent in e.initiates]

    def terminated_at(self, fluent: Fluent) -> List[Any]:
        """Times at which the fluent was terminated."""
        return [e.time for e in self._events if fluent in e.terminates]

    def intervals(self, fluent: Fluent) -> List[Interval]:
        """Maximal validity intervals of ``fluent`` over the history."""
        spans: List[Interval] = []
        open_since: Any = None
        for event in self._events:
            if fluent in event.terminates and open_since is not None:
                if event.time == open_since:
                    # initiated and terminated at the same instant: skip the
                    # degenerate span but stay consistent with holds_at.
                    open_since = None
                else:
                    spans.append(Interval.from_ticks(open_since, event.time))
                    open_since = None
            if fluent in event.initiates and open_since is None:
                open_since = event.time
        if open_since is not None:
            spans.append(Interval(TimePoint(0, open_since), POSITIVE_INFINITY))
        return spans

    def fluents(self) -> List[Fluent]:
        """All fluents mentioned anywhere in the history."""
        seen: Dict[Fluent, None] = {}
        for event in self._events:
            for fluent in event.initiates + event.terminates:
                seen.setdefault(fluent, None)
        return list(seen)

    def snapshot(self, time: Any) -> List[Fluent]:
        """All fluents holding at ``time``."""
        return [f for f in self.fluents() if self.holds_at(f, time)]

    def clipped(self, fluent: Fluent, start: Any, end: Any) -> bool:
        """True if ``fluent`` is terminated somewhere in ``(start, end)``
        — Kowalski/Sergot's ``clipped`` predicate."""
        if not start < end:
            raise TimeError(f"empty clipping window ({start!r}, {end!r})")
        for event in self._events:
            if start < event.time < end and fluent in event.terminates:
                return True
        return False
